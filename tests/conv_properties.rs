//! Property-based integration tests of sparse convolution invariants:
//! linearity, engine-order independence, kernel-size-1 degeneracy, and
//! stride/transpose round trips.

use proptest::prelude::*;
use torchsparse::coords::Coord;
use torchsparse::core::{Engine, EnginePreset, Precision, SparseConv3d, SparseTensor};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::tensor::{gemm, Matrix};

fn tensor_from(sites: &[(i32, i32, i32)], c: usize, seed: u64) -> SparseTensor {
    let mut dedup: Vec<(i32, i32, i32)> = sites.to_vec();
    dedup.sort_unstable();
    dedup.dedup();
    let coords: Vec<Coord> = dedup.iter().map(|&(x, y, z)| Coord::new(0, x, y, z)).collect();
    let feats = Matrix::from_fn(coords.len(), c, |r, ch| {
        let v = (r as u64).wrapping_mul(0x9E37_79B9).wrapping_add(ch as u64).wrapping_mul(seed | 1);
        ((v % 1000) as f32 - 500.0) / 250.0
    });
    SparseTensor::new(coords, feats).expect("valid tensor")
}

fn fp32_engine() -> Engine {
    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.precision = Precision::Fp32;
    Engine::with_config(cfg, DeviceProfile::rtx_2080ti())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// conv(a*x) == a*conv(x): convolution is linear in its input.
    #[test]
    fn prop_conv_is_homogeneous(
        sites in proptest::collection::vec((-5i32..5, -5i32..5, -5i32..5), 4..40),
        alpha in -3.0f32..3.0,
        seed in 1u64..300,
    ) {
        let c = 4;
        let x = tensor_from(&sites, c, seed);
        let conv = SparseConv3d::with_random_weights("c", c, c, 3, 1, seed);
        let mut engine = fp32_engine();
        let y = engine.run(&conv, &x).expect("conv x");
        let scaled_x = x.with_feats(&(x.feats().clone()) * alpha).expect("scale");
        let y2 = engine.run(&conv, &scaled_x).expect("conv ax");
        let expect = y.feats() * alpha;
        let diff = y2.feats().max_abs_diff(&expect).expect("shape");
        prop_assert!(diff < 1e-2, "homogeneity violated by {diff}");
    }

    /// conv(x + z) == conv(x) + conv(z) on the same coordinates.
    #[test]
    fn prop_conv_is_additive(
        sites in proptest::collection::vec((-5i32..5, -5i32..5, -5i32..5), 4..30),
        seed in 1u64..300,
    ) {
        let c = 3;
        let x = tensor_from(&sites, c, seed);
        let z = x.with_feats(Matrix::from_fn(x.len(), c, |r, ch| {
            ((r + 2 * ch) % 5) as f32 - 2.0
        })).expect("z");
        let sum = x.with_feats(x.feats() + z.feats()).expect("sum");
        let conv = SparseConv3d::with_random_weights("c", c, c, 3, 1, seed ^ 42);
        let mut engine = fp32_engine();
        let yx = engine.run(&conv, &x).expect("conv x");
        let yz = engine.run(&conv, &z).expect("conv z");
        let ys = engine.run(&conv, &sum).expect("conv sum");
        let expect = yx.feats() + yz.feats();
        let diff = ys.feats().max_abs_diff(&expect).expect("shape");
        prop_assert!(diff < 1e-2, "additivity violated by {diff}");
    }

    /// A kernel-size-1 convolution is exactly a per-point linear layer.
    #[test]
    fn prop_k1_conv_is_pointwise_linear(
        sites in proptest::collection::vec((-6i32..6, -6i32..6, -6i32..6), 2..30),
        seed in 1u64..300,
    ) {
        let (c_in, c_out) = (3, 5);
        let x = tensor_from(&sites, c_in, seed);
        let conv = SparseConv3d::with_random_weights("c", c_in, c_out, 1, 1, seed);
        let mut engine = fp32_engine();
        let y = engine.run(&conv, &x).expect("conv");
        let expect = gemm::mm(x.feats(), &conv.weights()[0]).expect("mm");
        let diff = y.feats().max_abs_diff(&expect).expect("shape");
        prop_assert!(diff < 1e-3, "k1 conv differs from linear by {diff}");
    }

    /// Down then transposed-up restores the coordinate set exactly.
    #[test]
    fn prop_down_up_roundtrip_restores_coords(
        sites in proptest::collection::vec((0i32..10, 0i32..10, 0i32..10), 8..60),
        seed in 1u64..300,
    ) {
        let c = 2;
        let x = tensor_from(&sites, c, seed);
        let down = SparseConv3d::with_random_weights("d", c, c, 2, 2, seed);
        let up = SparseConv3d::with_random_weights("u", c, c, 2, 2, seed ^ 1).into_transposed();
        let mut engine = fp32_engine();
        // Engine::run resets the map cache per call, so run both layers in
        // one pass through a sequential container.
        let net = torchsparse::core::Sequential::new("roundtrip").push(down).push(up);
        let y = engine.run(&net, &x).expect("down-up");
        prop_assert_eq!(y.coords(), x.coords());
        prop_assert_eq!(y.stride(), 1);
    }

    /// Coordinate order must not change the multiset of (coord, feature)
    /// outputs — engines sort/hash internally.
    #[test]
    fn prop_input_permutation_invariance(
        sites in proptest::collection::vec((-4i32..4, -4i32..4, -4i32..4), 4..25),
        seed in 1u64..200,
    ) {
        let c = 3;
        let x = tensor_from(&sites, c, seed);
        // Reverse the point order.
        let rev_coords: Vec<Coord> = x.coords().iter().rev().copied().collect();
        let rev_feats = Matrix::from_fn(x.len(), c, |r, ch| x.feats()[(x.len() - 1 - r, ch)]);
        let xr = SparseTensor::new(rev_coords, rev_feats).expect("reversed");

        let conv = SparseConv3d::with_random_weights("c", c, c, 3, 1, seed);
        let mut engine = fp32_engine();
        let y = engine.run(&conv, &x).expect("conv");
        let yr = engine.run(&conv, &xr).expect("conv reversed");

        // Compare as maps from coordinate to feature row.
        use std::collections::HashMap;
        let collect = |t: &SparseTensor| -> HashMap<Coord, Vec<i64>> {
            t.coords()
                .iter()
                .enumerate()
                .map(|(i, &co)| {
                    // Quantize to tolerate float reassociation.
                    let row = t.feats().row(i).iter().map(|v| (v * 1e4).round() as i64).collect();
                    (co, row)
                })
                .collect()
        };
        prop_assert_eq!(collect(&y), collect(&yr));
    }
}
