//! Deterministic fault injection: for every injectable site the engine must
//! complete through its documented fallback, leave evidence in the
//! degradation report, and — where the fallback is exact — produce the same
//! output as a fault-free run.

use torchsparse::coords::Coord;
use torchsparse::core::tuning::tune_engine;
use torchsparse::core::{
    Engine, EnginePreset, FaultSite, Precision, ReLU, Sequential, SparseConv3d, SparseTensor,
    ValidationConfig,
};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::tensor::Matrix;

fn scene(seed: i32) -> SparseTensor {
    let coords: Vec<Coord> = (0..64)
        .map(|i| Coord::new(0, (i * 7 + seed) % 9, (i * 3) % 8, (i * 5 + seed) % 7))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let n = coords.len();
    SparseTensor::new(coords, Matrix::from_fn(n, 4, |r, c| ((r + 2 * c) % 5) as f32 - 1.5))
        .expect("valid scene")
}

fn model() -> Sequential {
    Sequential::new("net")
        .push(SparseConv3d::with_random_weights("conv1", 4, 8, 3, 1, 21))
        .push(ReLU::new("act"))
        .push(SparseConv3d::with_random_weights("conv2", 8, 4, 3, 1, 22))
}

/// The `TORCHSPARSE_COORD_INDEX` override wins over every preset's map
/// search; forcing any non-grid index means no grid build ever runs, so
/// the grid-fault tests below would have nothing to fire on.
fn grid_builds_suppressed() -> bool {
    matches!(std::env::var("TORCHSPARSE_COORD_INDEX").ok().as_deref(), Some(v) if v != "grid")
}

#[test]
fn grid_table_fault_falls_back_to_hashmap_with_identical_output() {
    if grid_builds_suppressed() {
        return;
    }
    let input = scene(0);
    let m = model();

    let mut clean = Engine::new(EnginePreset::SpConv, DeviceProfile::rtx_2080ti());
    let expected = clean.run(&m, &input).expect("clean run");
    assert!(clean.degradation_report().is_empty());

    let mut faulty = Engine::new(EnginePreset::SpConv, DeviceProfile::rtx_2080ti());
    faulty.context_mut().faults.arm_count(FaultSite::GridTableBuild, 8);
    let out = faulty.run(&m, &input).expect("fallback run completes");

    assert!(faulty.degradation_report().count(FaultSite::GridTableBuild) >= 1);
    // The hashmap fallback builds the identical kernel map, so the output
    // is bit-exact.
    assert_eq!(expected.coords(), out.coords());
    assert_eq!(expected.feats().max_abs_diff(out.feats()).expect("same shape"), 0.0);
}

#[test]
fn fp16_overflow_fault_reruns_layer_in_fp32() {
    let input = scene(1);
    let m = model();

    let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    assert_eq!(e.context().config.precision, Precision::Fp16);
    e.context_mut().faults.arm(FaultSite::Fp16Overflow);
    let out = e.run(&m, &input).expect("degraded run completes");

    assert!(e.degradation_report().count(FaultSite::Fp16Overflow) >= 1);
    assert!(out.feats().is_finite(), "FP32 re-run must remove the injected infinity");
    // The engine's configured precision is restored after the re-run.
    assert_eq!(e.context().config.precision, Precision::Fp16);
}

#[test]
fn kernel_map_cache_fault_forces_rebuild_with_identical_output() {
    let input = scene(2);
    let m = model();

    let mut clean = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    let expected = clean.run(&m, &input).expect("clean run");

    // conv2 reuses conv1's submanifold map; the armed fault invalidates
    // that cache hit and forces a rebuild.
    let mut faulty = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    faulty.context_mut().faults.arm(FaultSite::KernelMapCache);
    let out = faulty.run(&m, &input).expect("rebuild run completes");

    assert!(faulty.degradation_report().count(FaultSite::KernelMapCache) >= 1);
    assert_eq!(expected.coords(), out.coords());
    let diff = expected.feats().max_abs_diff(out.feats()).expect("same shape");
    assert!(diff < 1e-6, "rebuilt map changed the result by {diff}");
}

#[test]
fn resource_budget_fault_sheds_points_under_sanitize() {
    let input = scene(3);
    let m = model();

    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.precision = Precision::Fp32;
    cfg.validation = ValidationConfig::sanitize();
    let mut e = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
    e.context_mut().faults.arm(FaultSite::ResourceBudget);
    let out = e.run(&m, &input).expect("shed run completes");

    assert!(e.degradation_report().count(FaultSite::ResourceBudget) >= 1);
    // Half the input was treated as the available budget.
    assert_eq!(out.len(), input.len() / 2);
    assert!(out.feats().is_finite());
}

#[test]
fn group_tuning_fault_degrades_engine_but_inference_continues() {
    let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    e.context_mut().faults.arm(FaultSite::GroupTuning);
    let report =
        tune_engine(&mut e, &model(), &[scene(4)], None).expect("tuning degrades, not errors");

    assert!(report.degraded);
    assert!(report.selected.is_empty());
    assert!(e.degradation_report().count(FaultSite::GroupTuning) >= 1);
    assert!(e.context().grouping_fallback);

    let out = e.run(&model(), &scene(5)).expect("fixed-grouping inference");
    assert!(!out.is_empty());
}

#[test]
fn armed_faults_fire_exactly_once_and_report_survives_inspection() {
    if grid_builds_suppressed() {
        return;
    }
    let input = scene(6);
    let m = model();
    let mut e = Engine::new(EnginePreset::SpConv, DeviceProfile::rtx_2080ti());
    e.context_mut().faults.arm(FaultSite::GridTableBuild);

    e.run(&m, &input).expect("first run");
    let first = e.degradation_report().count(FaultSite::GridTableBuild);
    assert!(first >= 1);

    // The armed count is consumed: a second run is fault-free and its
    // fresh report is empty again.
    e.run(&m, &input).expect("second run");
    assert_eq!(e.degradation_report().count(FaultSite::GridTableBuild), 0);
    assert!(!e.context().faults.is_armed());
}

#[test]
fn probabilistic_injection_is_deterministic_across_engines() {
    let input = scene(7);
    let m = model();
    let run = |seed: u64| {
        let mut e = Engine::new(EnginePreset::SpConv, DeviceProfile::rtx_2080ti());
        e.context_mut().faults.seed(seed);
        e.context_mut().faults.with_probability(FaultSite::GridTableBuild, 0.5);
        e.run(&m, &input).expect("run completes regardless of injection");
        (
            e.context().faults.injected().to_vec(),
            e.degradation_report().count(FaultSite::GridTableBuild),
        )
    };
    let (log_a, count_a) = run(1234);
    let (log_b, count_b) = run(1234);
    assert_eq!(log_a, log_b, "same seed must inject identically");
    assert_eq!(count_a, count_b);
    let (log_c, _) = run(99);
    // A different seed is allowed to differ (and with several probe points
    // at p=0.5 it almost surely does — but we only assert determinism).
    let _ = log_c;
}
