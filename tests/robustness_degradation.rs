//! Adversarial-input robustness: seeded degenerate point clouds (empty,
//! single-point, all-duplicate, huge-extent, NaN-laced) driven through all
//! three dataflows. The engine must never panic — malformed inputs either
//! produce a typed error (Reject) or a sanitized run with a populated
//! degradation report (Sanitize) — and on well-defined inputs all dataflows
//! must agree bit-exactly in FP32.

use torchsparse::coords::Coord;
use torchsparse::core::{
    Engine, EnginePreset, FaultSite, OptimizationConfig, Precision, ReLU, Sequential, SparseConv3d,
    SparseTensor, ValidationConfig,
};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::tensor::Matrix;

/// Minimal multiplicative congruential generator (Park–Miller style) so the
/// adversarial clouds are seeded and reproducible without any RNG crate.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 11
    }
    fn next_i32(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.next_u64() % (hi - lo) as u64) as i32
    }
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() % 4096) as f32 / 2048.0 - 1.0
    }
}

const CHANNELS: usize = 4;

/// The degenerate shapes the generator can produce.
#[derive(Clone, Copy, Debug)]
enum CloudKind {
    Empty,
    SinglePoint,
    AllDuplicate,
    HugeExtent,
    NanLaced,
    WellFormed,
}

const ALL_KINDS: [CloudKind; 6] = [
    CloudKind::Empty,
    CloudKind::SinglePoint,
    CloudKind::AllDuplicate,
    CloudKind::HugeExtent,
    CloudKind::NanLaced,
    CloudKind::WellFormed,
];

fn adversarial_cloud(kind: CloudKind, seed: u64) -> SparseTensor {
    let mut rng = Lcg::new(seed);
    let (coords, mut feats): (Vec<Coord>, Vec<f32>) = match kind {
        CloudKind::Empty => (Vec::new(), Vec::new()),
        CloudKind::SinglePoint => {
            (vec![Coord::new(0, 0, 0, 0)], (0..CHANNELS).map(|_| rng.next_f32()).collect())
        }
        CloudKind::AllDuplicate => {
            let c = Coord::new(0, rng.next_i32(-4, 4), rng.next_i32(-4, 4), rng.next_i32(-4, 4));
            let n = 12;
            (vec![c; n], (0..n * CHANNELS).map(|_| rng.next_f32()).collect())
        }
        CloudKind::HugeExtent => {
            // Two clusters pushed to opposite corners of the i32 range: any
            // dense grid over this bounding box is unbuildable.
            let mut cs = vec![Coord::new(0, i32::MIN + 1, 0, 0), Coord::new(0, i32::MAX - 1, 0, 0)];
            for _ in 0..10 {
                cs.push(Coord::new(
                    0,
                    rng.next_i32(-5, 5),
                    rng.next_i32(-5, 5),
                    rng.next_i32(-5, 5),
                ));
            }
            cs.sort_unstable();
            cs.dedup();
            let n = cs.len();
            (cs, (0..n * CHANNELS).map(|_| rng.next_f32()).collect())
        }
        CloudKind::NanLaced | CloudKind::WellFormed => {
            let mut cs: Vec<Coord> = (0..50)
                .map(|_| Coord::new(0, rng.next_i32(0, 8), rng.next_i32(0, 8), rng.next_i32(0, 8)))
                .collect();
            cs.sort_unstable();
            cs.dedup();
            let n = cs.len();
            (cs, (0..n * CHANNELS).map(|_| rng.next_f32()).collect())
        }
    };
    if matches!(kind, CloudKind::NanLaced) {
        for (i, v) in feats.iter_mut().enumerate() {
            match i % 7 {
                0 => *v = f32::NAN,
                3 => *v = f32::INFINITY,
                _ => {}
            }
        }
    }
    let rows = coords.len();
    let matrix = Matrix::from_vec(rows, CHANNELS, feats).expect("consistent rows");
    SparseTensor::new(coords, matrix).expect("lengths agree")
}

fn model() -> Sequential {
    Sequential::new("net")
        .push(SparseConv3d::with_random_weights("conv1", CHANNELS, 8, 3, 1, 11))
        .push(ReLU::new("act"))
        .push(SparseConv3d::with_random_weights("conv2", 8, CHANNELS, 3, 1, 12))
}

/// The three dataflows of the engine, all forced to FP32 and Sanitize so
/// outputs are comparable and malformed inputs are repaired, not trusted.
fn dataflow_configs() -> Vec<(&'static str, OptimizationConfig)> {
    let mut fused = EnginePreset::TorchSparse.config();
    fused.precision = Precision::Fp32;
    let mut unfused = EnginePreset::BaselineFp32.config();
    unfused.fused_gather_scatter = false;
    let mut fod = EnginePreset::MinkowskiEngine.config();
    fod.fetch_on_demand_below = Some(usize::MAX);
    let mut out = vec![("fused-gms", fused), ("unfused-gms", unfused), ("fetch-on-demand", fod)];
    for (_, cfg) in &mut out {
        cfg.validation = ValidationConfig::sanitize();
    }
    out
}

#[test]
fn no_dataflow_panics_on_any_degenerate_cloud() {
    for kind in ALL_KINDS {
        for seed in 0..4u64 {
            let input = adversarial_cloud(kind, seed);
            for (name, cfg) in dataflow_configs() {
                let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
                // Malformed inputs may yield a typed error (e.g. empty
                // clouds); what they must never do is panic or return
                // non-finite features from a sanitized run.
                match engine.run(&model(), &input) {
                    Ok(out) => assert!(
                        out.feats().is_finite(),
                        "{name} produced non-finite output on {kind:?} seed {seed}"
                    ),
                    Err(e) => assert!(
                        input.is_empty(),
                        "{name} errored on non-empty {kind:?} seed {seed}: {e}"
                    ),
                }
            }
        }
    }
}

#[test]
fn dataflows_agree_on_well_formed_clouds() {
    for seed in 0..5u64 {
        let input = adversarial_cloud(CloudKind::WellFormed, seed);
        let m = model();
        let mut reference: Option<SparseTensor> = None;
        for (name, cfg) in dataflow_configs() {
            let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
            let out = engine.run(&m, &input).expect("well-formed input");
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    assert_eq!(r.coords(), out.coords(), "{name} coords differ, seed {seed}");
                    let diff = r.feats().max_abs_diff(out.feats()).expect("same shape");
                    assert!(diff < 1e-4, "{name} differs by {diff} on seed {seed}");
                }
            }
        }
    }
}

#[test]
fn sanitize_equals_running_on_pre_cleaned_input() {
    // A NaN-laced cloud run under Sanitize must match the same cloud with
    // the non-finite features zeroed by hand — sanitization is observable,
    // not approximate.
    let dirty = adversarial_cloud(CloudKind::NanLaced, 7);
    let cleaned_feats = Matrix::from_fn(dirty.len(), CHANNELS, |r, c| {
        let v = dirty.feats()[(r, c)];
        if v.is_finite() {
            v
        } else {
            0.0
        }
    });
    let clean = SparseTensor::new(dirty.coords().to_vec(), cleaned_feats).expect("same shape");

    let m = model();
    let mut cfg = EnginePreset::BaselineFp32.config();
    cfg.validation = ValidationConfig::sanitize();
    let mut sanitizing = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
    let a = sanitizing.run(&m, &dirty).expect("sanitized run");
    assert!(
        sanitizing.degradation_report().count(FaultSite::InputValidation) >= 1,
        "sanitization must be recorded"
    );

    let mut trusting = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
    let b = trusting.run(&m, &clean).expect("clean run");
    assert_eq!(a.coords(), b.coords());
    assert_eq!(a.feats().max_abs_diff(b.feats()).expect("same shape"), 0.0);
}

#[test]
fn reject_mode_returns_typed_errors_never_panics() {
    use torchsparse::core::CoreError;
    let m = model();

    let nan = adversarial_cloud(CloudKind::NanLaced, 3);
    let mut cfg = EnginePreset::BaselineFp32.config();
    cfg.validation = ValidationConfig::reject();
    let mut e = Engine::with_config(cfg.clone(), DeviceProfile::rtx_2080ti());
    assert!(matches!(e.run(&m, &nan), Err(CoreError::NonFiniteFeatures { .. })));

    let dup = adversarial_cloud(CloudKind::AllDuplicate, 3);
    let mut e = Engine::with_config(cfg.clone(), DeviceProfile::rtx_2080ti());
    assert!(matches!(e.run(&m, &dup), Err(CoreError::Coords(_))));

    let wide = adversarial_cloud(CloudKind::HugeExtent, 3);
    cfg.validation = ValidationConfig::reject().with_max_grid_cells(1 << 24);
    let mut e = Engine::with_config(cfg.clone(), DeviceProfile::rtx_2080ti());
    assert!(matches!(e.run(&m, &wide), Err(CoreError::ExtentOverflow { .. })));

    let ok = adversarial_cloud(CloudKind::WellFormed, 3);
    cfg.validation = ValidationConfig::reject().with_max_points(5);
    let mut e = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
    assert!(matches!(e.run(&m, &ok), Err(CoreError::BudgetExceeded { .. })));
}

#[test]
fn sanitized_duplicates_match_deduplicated_input() {
    let dup = adversarial_cloud(CloudKind::AllDuplicate, 9);
    let m = model();
    let mut cfg = EnginePreset::BaselineFp32.config();
    cfg.validation = ValidationConfig::sanitize();
    let mut e = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
    let out = e.run(&m, &dup).expect("sanitized duplicates run");
    // All twelve copies collapse onto the first occurrence.
    assert_eq!(out.len(), 1);
    assert!(e.degradation_report().count(FaultSite::InputValidation) >= 1);
}

#[test]
fn huge_extent_degrades_grid_to_hashmap_under_sanitize() {
    // The `TORCHSPARSE_COORD_INDEX` override wins over the preset's map
    // search; forcing a non-grid index removes the organic grid fallback
    // this test observes.
    if matches!(std::env::var("TORCHSPARSE_COORD_INDEX").ok().as_deref(), Some(v) if v != "grid") {
        return;
    }
    let wide = adversarial_cloud(CloudKind::HugeExtent, 5);
    let m = model();
    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.precision = Precision::Fp32;
    cfg.validation = ValidationConfig::sanitize().with_max_grid_cells(1 << 24);
    let mut e = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
    let out = e.run(&m, &wide).expect("degraded run completes");
    assert!(out.feats().is_finite());
    // Both the validator's pre-warning and the mapping layer's organic
    // fallback are visible in the report.
    assert!(e.degradation_report().count(FaultSite::InputValidation) >= 1);
    assert!(e.degradation_report().count(FaultSite::GridTableBuild) >= 1);
}
