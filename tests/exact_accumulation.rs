//! The order-independent accumulation contract, end to end and at the
//! arithmetic layer.
//!
//! With `exact_accumulation` on (the default), every output element is the
//! single correctly rounded sum of its partial products, so the engine's
//! bits are reproducible across thread counts, chunk partitionings, and
//! the fused/unfused executors *by arithmetic* — no ordering discipline
//! required. With it off, the engine must reproduce the historical
//! serial-order bits (the pre-superaccumulator contract) at every thread
//! count. The property tests at the bottom pin the accumulator itself:
//! permutation invariance, split/merge invariance, and correct rounding
//! against an exact integer reference, including NaN/±0/overflow edges.

use proptest::prelude::*;
use torchsparse::coords::Coord;
use torchsparse::core::{
    BatchNorm, Engine, EnginePreset, Module, OptimizationConfig, Precision, ReLU, Sequential,
    SparseConv3d, SparseTensor,
};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::tensor::accum::{exact_sum, ExactAccumulator};
use torchsparse::tensor::Matrix;

/// Worker counts every configuration is checked at.
const THREADS: [usize; 3] = [1, 2, 8];

fn tensor_from(sites: &[(i32, i32, i32)], c: usize, seed: u64) -> SparseTensor {
    let mut dedup: Vec<(i32, i32, i32)> = sites.to_vec();
    dedup.sort_unstable();
    dedup.dedup();
    let coords: Vec<Coord> = dedup.iter().map(|&(x, y, z)| Coord::new(0, x, y, z)).collect();
    let feats = Matrix::from_fn(coords.len(), c, |r, ch| {
        let v = (r as u64).wrapping_mul(0x9E37_79B9).wrapping_add(ch as u64).wrapping_mul(seed | 1);
        ((v % 1000) as f32 - 500.0) / 250.0
    });
    SparseTensor::new(coords, feats).expect("valid tensor")
}

/// A small net covering submanifold, strided, and channel-changing convs.
fn model(c: usize, seed: u64) -> Sequential {
    Sequential::new("net")
        .push(SparseConv3d::with_random_weights("conv1", c, 8, 3, 1, seed))
        .push(BatchNorm::identity("bn", 8))
        .push(ReLU::new("act"))
        .push(SparseConv3d::with_random_weights("down", 8, 8, 2, 2, seed + 1))
        .push(SparseConv3d::with_random_weights("conv2", 8, c, 3, 1, seed + 2))
}

/// The three dataflow configurations of the engine: grouped
/// gather-matmul-scatter (TorchSparse), ungrouped per-offset baseline, and
/// fetch-on-demand (forced by an infinite threshold).
fn dataflow_configs() -> Vec<(&'static str, OptimizationConfig)> {
    let grouped = EnginePreset::TorchSparse.config();
    let separate = EnginePreset::BaselineFp32.config();
    let mut fod = EnginePreset::BaselineFp32.config();
    fod.fetch_on_demand_below = Some(usize::MAX);
    vec![("grouped", grouped), ("separate", separate), ("fetch-on-demand", fod)]
}

fn output_bits<M: Module>(
    mut cfg: OptimizationConfig,
    threads: usize,
    m: &M,
    x: &SparseTensor,
) -> (Vec<Coord>, Vec<u32>) {
    cfg.threads = Some(threads);
    let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
    let y = engine.run(m, x).expect("run succeeds");
    let bits = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
    (y.coords().to_vec(), bits)
}

/// The `TORCHSPARSE_EXACT_ACCUM` override, when set, wins over the
/// `exact_accumulation` field these tests pin — the mode a test targets is
/// only actually running when the variable agrees or is unset.
fn forced_exact_mode() -> Option<bool> {
    let raw = std::env::var("TORCHSPARSE_EXACT_ACCUM").ok()?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" => Some(false),
        "on" | "1" | "true" => Some(true),
        _ => None,
    }
}

/// Exact accumulation on: 1/2/8 threads x 3 dataflows x 3 precisions x
/// fused/unfused all produce identical bits — the acceptance sweep of the
/// order-independent determinism contract.
#[test]
fn exact_on_bitwise_identical_across_threads_dataflows_precisions_routes() {
    if forced_exact_mode() == Some(false) {
        return; // this suite run is explicitly exercising the serial-order path
    }
    let sites: Vec<(i32, i32, i32)> =
        (0..300).map(|i| ((i * 7) % 21 - 10, (i * 13) % 17 - 8, (i * 5) % 15 - 7)).collect();
    let x = tensor_from(&sites, 4, 61);
    let m = model(4, 61);
    for (dataflow, cfg) in dataflow_configs() {
        for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            let mut reference: Option<(Vec<Coord>, Vec<u32>)> = None;
            for fused in [false, true] {
                for threads in THREADS {
                    let mut cfg = cfg.clone();
                    cfg.precision = precision;
                    cfg.fused_execution = fused;
                    cfg.exact_accumulation = true;
                    let out = output_bits(cfg, threads, &m, &x);
                    match &reference {
                        None => reference = Some(out),
                        Some(r) => assert_eq!(
                            r, &out,
                            "{dataflow} @ {precision:?} diverges with fused={fused} at \
                             {threads} threads under exact accumulation"
                        ),
                    }
                }
            }
        }
    }
}

/// Exact accumulation off: every thread count and route reproduces the
/// historical serial-order bits — the 1-thread unfused engine runs the
/// byte-for-byte pre-superaccumulator scatter, and everything else must
/// match it exactly as it did before this layer existed.
#[test]
fn exact_off_reproduces_historical_serial_order_bits() {
    if forced_exact_mode() == Some(true) {
        return; // this suite run is explicitly exercising the exact path
    }
    let sites: Vec<(i32, i32, i32)> =
        (0..300).map(|i| ((i * 11) % 21 - 10, (i * 3) % 17 - 8, (i * 9) % 15 - 7)).collect();
    let x = tensor_from(&sites, 4, 67);
    let m = model(4, 67);
    for (dataflow, cfg) in dataflow_configs() {
        for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            // The 1-thread unfused run takes the historical serial
            // offset-major scatter loop, untouched by this PR.
            let mut serial_cfg = cfg.clone();
            serial_cfg.precision = precision;
            serial_cfg.fused_execution = false;
            serial_cfg.exact_accumulation = false;
            let reference = output_bits(serial_cfg.clone(), 1, &m, &x);
            for fused in [false, true] {
                for threads in THREADS {
                    let mut cfg = cfg.clone();
                    cfg.precision = precision;
                    cfg.fused_execution = fused;
                    cfg.exact_accumulation = false;
                    let out = output_bits(cfg, threads, &m, &x);
                    assert_eq!(
                        reference, out,
                        "{dataflow} @ {precision:?} with fused={fused} at {threads} threads \
                         must reproduce the historical serial-order bits"
                    );
                }
            }
        }
    }
}

/// Exact and serial-order accumulation agree to tight tolerance (they
/// differ only by re-association error of the serial FP32 sum), so the A/B
/// switch never masks a numerical bug.
#[test]
fn exact_and_serial_accumulation_agree_closely() {
    if forced_exact_mode().is_some() {
        return; // the override pins both runs to one mode
    }
    let sites: Vec<(i32, i32, i32)> =
        (0..300).map(|i| ((i * 5) % 21 - 10, (i * 7) % 17 - 8, (i * 13) % 15 - 7)).collect();
    let x = tensor_from(&sites, 4, 71);
    let m = model(4, 71);
    let run = |exact: bool| {
        let mut cfg = EnginePreset::BaselineFp32.config();
        cfg.exact_accumulation = exact;
        let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
        engine.run(&m, &x).expect("run succeeds")
    };
    let exact = run(true);
    let serial = run(false);
    assert_eq!(exact.coords(), serial.coords());
    let diff = exact.feats().max_abs_diff(serial.feats()).expect("same shape");
    let scale = serial.feats().frobenius_norm().max(1.0);
    assert!(diff / scale < 1e-5, "exact vs serial accumulation diverged: {diff} (scale {scale})");
}

// ---------------------------------------------------------------------------
// Accumulator-level properties.
// ---------------------------------------------------------------------------

/// Deterministic in-place shuffle (no rand dependency in the root crate's
/// integration tests beyond the proptest shim).
fn shuffle<T>(values: &mut [T], mut seed: u64) {
    for i in (1..values.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        values.swap(i, (seed % (i as u64 + 1)) as usize);
    }
}

/// Decodes `(bits, selector)` pairs into addends: mostly arbitrary raw bit
/// patterns (which already cover every magnitude, subnormals, and — at
/// ~1/256 per value — NaNs and infinities), with one in five values forced
/// to a hand-picked special so signed zeros and boundary values appear in
/// nearly every case.
fn decode_addends(raw: &[(u32, u8)]) -> Vec<f32> {
    const SPECIALS: [f32; 8] = [
        0.0,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MAX,
        f32::MIN,
        f32::MIN_POSITIVE,
    ];
    raw.iter()
        .map(|&(bits, sel)| {
            if sel == 0 {
                SPECIALS[(bits % SPECIALS.len() as u32) as usize]
            } else {
                f32::from_bits(bits)
            }
        })
        .collect()
}

/// Strategy for the raw `(bits, selector)` pairs [`decode_addends`] maps.
fn addend_bits(
    max_len: usize,
) -> proptest::collection::VecStrategy<(std::ops::Range<u32>, std::ops::Range<u8>)> {
    proptest::collection::vec((0u32..u32::MAX, 0u8..5), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any permutation of any addend multiset — including NaN, infinities,
    /// and signed zeros — rounds to identical bits.
    #[test]
    fn prop_permutation_invariance(
        raw in addend_bits(40),
        seed in 0u64..u64::MAX,
    ) {
        let mut vals = decode_addends(&raw);
        let forward = exact_sum(&vals);
        shuffle(&mut vals, seed | 1);
        let shuffled = exact_sum(&vals);
        prop_assert_eq!(forward.to_bits(), shuffled.to_bits());
    }

    /// Splitting the addends at any point into two accumulators and
    /// merging gives the same bits as one pass — the chunk-partition
    /// invariance the parallel scatter relies on.
    #[test]
    fn prop_chunk_split_invariance(
        raw in addend_bits(40),
        split_frac in 0.0f64..1.0,
    ) {
        let vals = decode_addends(&raw);
        let whole = exact_sum(&vals);
        let split = (vals.len() as f64 * split_frac) as usize;
        let mut a = ExactAccumulator::new();
        let mut b = ExactAccumulator::new();
        for &v in &vals[..split] {
            a.add(v);
        }
        for &v in &vals[split..] {
            b.add(v);
        }
        a.merge(&b);
        prop_assert!(a.round().to_bits() == whole.to_bits(), "split at {split}");
    }

    /// Against an exact integer reference: the accumulator returns the
    /// correctly rounded f32 of the true sum. Addends are `k * 2^off` with
    /// `|k| < 2^24`, `off` in `0..20` — every one is exactly representable
    /// in f32, the true sum (an integer below 2^51) is exact in i128 *and*
    /// in f64, and f64 -> f32 of an exactly held value is correctly rounded
    /// by IEEE definition.
    #[test]
    fn prop_correctly_rounded_vs_integer_reference(
        scaled in proptest::collection::vec(
            ((-(1i64 << 24) + 1)..(1i64 << 24), 0u32..20),
            1..60,
        ),
    ) {
        let vals: Vec<f32> = scaled
            .iter()
            .map(|&(k, off)| {
                let v = (k as f64) * f64::from(2.0f32.powi(off as i32));
                v as f32
            })
            .collect();
        // Every addend is exactly representable, so the true sum is the
        // integer sum of the scaled values.
        let true_sum: i128 = scaled.iter().map(|&(k, off)| (k as i128) << off).sum();
        // |true_sum| < 60 * 2^24 * 2^19 < 2^50: exact in f64, and
        // f64 -> f32 of an exactly held value is correctly rounded.
        let reference = (true_sum as f64) as f32;
        prop_assert!(
            exact_sum(&vals).to_bits() == reference.to_bits(),
            "true sum {true_sum}: got {} want {reference}",
            exact_sum(&vals)
        );
    }

    /// Adding values one at a time equals adding them via arbitrary
    /// nested merges of single-value accumulators (full associativity).
    #[test]
    fn prop_merge_tree_equals_sequential(raw in addend_bits(32)) {
        let vals = decode_addends(&raw);
        if vals.is_empty() {
            return Ok(());
        }
        let sequential = exact_sum(&vals);
        let mut accs: Vec<ExactAccumulator> = vals
            .iter()
            .map(|&v| {
                let mut a = ExactAccumulator::new();
                a.add(v);
                a
            })
            .collect();
        while accs.len() > 1 {
            let mut next = Vec::with_capacity(accs.len().div_ceil(2));
            for pair in accs.chunks(2) {
                let mut merged = pair[0];
                if let Some(rhs) = pair.get(1) {
                    merged.merge(rhs);
                }
                next.push(merged);
            }
            accs = next;
        }
        prop_assert_eq!(accs[0].round().to_bits(), sequential.to_bits());
    }
}

/// Hand-picked edges the property generators hit only rarely.
#[test]
fn accumulator_edge_cases() {
    // Catastrophic cancellation recovers the small addend.
    assert_eq!(exact_sum(&[1.0e30, 1.0, -1.0e30]), 1.0);
    // Signed-zero rules: -0 only when every addend is -0.
    assert_eq!(exact_sum(&[-0.0, -0.0]).to_bits(), (-0.0f32).to_bits());
    assert_eq!(exact_sum(&[-0.0, 0.0]).to_bits(), 0.0f32.to_bits());
    assert_eq!(exact_sum(&[7.5, -7.5]).to_bits(), 0.0f32.to_bits());
    // Overflow of the exact sum rounds to infinity; cancellation back under
    // the limit does not.
    assert_eq!(exact_sum(&[f32::MAX, f32::MAX]), f32::INFINITY);
    assert_eq!(exact_sum(&[f32::MAX, f32::MAX, -f32::MAX]), f32::MAX);
    // NaN and mixed-infinity inputs poison the sum in any order.
    assert!(exact_sum(&[1.0, f32::NAN, 2.0]).is_nan());
    assert!(exact_sum(&[f32::INFINITY, f32::NEG_INFINITY]).is_nan());
    assert_eq!(exact_sum(&[f32::NEG_INFINITY, f32::MAX, f32::MAX]), f32::NEG_INFINITY);
}
