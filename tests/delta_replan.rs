//! Incremental delta re-planning must be invisible: a compiled session fed a
//! temporally churning stream patches its frozen plan in place, and every
//! patched frame must be bitwise identical to compiling the model from
//! scratch on that frame — across dataflow presets, fused/unfused execution,
//! thread counts, and exact-accumulation modes. Above the churn threshold the
//! session falls back to a full re-plan, still bitwise identical.

use std::sync::Arc;

use proptest::prelude::*;
use torchsparse::coords::{
    diff_coords, Coord, CoordHashMap, CoordIndex, DeltaIndex, MphfIndex, REMOVED_ROW,
};
use torchsparse::core::{
    BatchNorm, Engine, Module, OptimizationConfig, PlanCacheStats, Precision, ReLU, Sequential,
    SparseConv3d, SparseMaxPool3d, SparseTensor,
};
use torchsparse::data::{
    dynamic_actors_stream, ego_drift_stream, multi_sweep_stream, temporal_churn_stream,
};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::models::{MinkUNet, ResidualBlock};
use torchsparse::tensor::Matrix;

/// A dense-ish blob that survives two stride-2 downsamples.
fn scene(channels: usize) -> SparseTensor {
    let mut coords = std::collections::BTreeSet::new();
    for i in 0..420i32 {
        coords.insert(Coord::new(0, (i * 7) % 22, ((i * 13) / 3) % 18, (i * 3) % 14));
    }
    let coords: Vec<Coord> = coords.into_iter().collect();
    let n = coords.len();
    SparseTensor::new(
        coords,
        Matrix::from_fn(n, channels, |r, c| ((r + 3 * c) % 9) as f32 * 0.25 - 1.0),
    )
    .expect("valid scene")
}

fn bits(t: &SparseTensor) -> Vec<u32> {
    t.feats().as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Counter assertions are only meaningful when the `TORCHSPARSE_DELTA_REPLAN`
/// env override is not forcing the path on or off underneath the config.
fn delta_env_forced() -> bool {
    std::env::var_os("TORCHSPARSE_DELTA_REPLAN").is_some()
}

/// A model exercising every structure the delta walk patches: submanifold
/// and dilated convs, a residual block with a projection branch, max
/// pooling, a strided downsample, and a transposed conv that re-enters the
/// downsample's shared kernel map.
fn temporal_model(seed: u64) -> Sequential {
    Sequential::new("temporal")
        .push(SparseConv3d::with_random_weights("stem", 4, 8, 3, 1, seed))
        .push(BatchNorm::identity("bn", 8))
        .push(ReLU::new("act"))
        .push(SparseConv3d::with_random_weights("dil", 8, 8, 3, 1, seed ^ 1).with_dilation(2))
        .push(SparseMaxPool3d::new("pool", 2, 2))
        .push(ResidualBlock::new("res", 8, 16, seed ^ 2))
        .push(SparseConv3d::with_random_weights("down", 16, 16, 2, 2, seed ^ 3))
        .push(SparseConv3d::with_random_weights("up", 16, 8, 2, 2, seed ^ 4).into_transposed())
        .push(SparseConv3d::with_random_weights("head", 8, 4, 3, 1, seed ^ 5))
}

/// Runs `frames` through one long-lived session and, per frame, through a
/// freshly compiled engine; asserts bitwise identity and returns the
/// session's plan-cache stats.
fn assert_stream_matches_cold(
    model: &impl Module,
    frames: &[SparseTensor],
    cfg: &OptimizationConfig,
    label: &str,
) -> PlanCacheStats {
    let mut session = Engine::with_config(cfg.clone(), DeviceProfile::rtx_2080ti())
        .compile(model, &frames[0])
        .expect("session compile");
    for (f, frame) in frames.iter().enumerate() {
        let got = session.execute(frame).expect("session execute");
        let mut cold = Engine::with_config(cfg.clone(), DeviceProfile::rtx_2080ti())
            .compile(model, frame)
            .expect("cold compile");
        let want = cold.execute(frame).expect("cold execute");
        assert_eq!(want.coords(), got.coords(), "{label} frame {f}: output coords diverged");
        assert_eq!(
            bits(&want),
            bits(&got),
            "{label} frame {f}: patched plan must be bitwise identical to a cold re-plan"
        );
    }
    session.stats()
}

fn fp32_config(preset: torchsparse::core::EnginePreset) -> OptimizationConfig {
    let mut cfg = preset.config();
    cfg.precision = Precision::Fp32;
    cfg
}

/// `misses` must partition exactly into the three re-plan outcomes.
fn assert_partition(stats: &PlanCacheStats, label: &str) {
    assert_eq!(
        stats.misses,
        stats.full_replans + stats.delta_patches + stats.delta_fallbacks,
        "{label}: misses must partition into full/patched/fallback ({stats:?})"
    );
}

#[test]
fn mixed_churn_matches_cold_replan_across_presets_threads_fusion() {
    use torchsparse::core::EnginePreset;
    let base = scene(4);
    let frames = temporal_churn_stream(&base, 4, 0.08, 11).expect("stream");
    let model = temporal_model(21);
    for preset in
        [EnginePreset::BaselineFp32, EnginePreset::TorchSparse, EnginePreset::MinkowskiEngine]
    {
        for fused in [false, true] {
            for threads in [1usize, 8] {
                let mut cfg = fp32_config(preset);
                cfg.fused_execution = fused;
                cfg.threads = Some(threads);
                let label = format!("{preset:?}/fused={fused}/threads={threads}");
                let stats = assert_stream_matches_cold(&model, &frames, &cfg, &label);
                assert_partition(&stats, &label);
                // 1 miss for the initial compile + 3 geometry changes.
                assert_eq!(stats.misses, 4, "{label}: compile plus 3 geometry changes");
                if !delta_env_forced() {
                    assert_eq!(
                        stats.delta_patches, 3,
                        "{label}: every low-churn frame should take the delta patch path ({stats:?})"
                    );
                    assert_eq!(
                        stats.delta_fallbacks, 0,
                        "{label}: churn 8% is under the 15% threshold"
                    );
                }
            }
        }
    }
}

#[test]
fn insert_only_stream_is_patched_bitwise() {
    let base = scene(4);
    // Window covers the whole stream: sweeps only accumulate, never expire.
    let frames = multi_sweep_stream(&base, 4, 8, 30, 5).expect("stream");
    for f in 1..frames.len() {
        assert!(frames[f].len() > frames[f - 1].len(), "sweeps must only insert");
    }
    let cfg = fp32_config(torchsparse::core::EnginePreset::TorchSparse);
    let stats = assert_stream_matches_cold(&temporal_model(7), &frames, &cfg, "insert-only");
    assert_partition(&stats, "insert-only");
    if !delta_env_forced() {
        assert_eq!(stats.delta_patches, 3, "insert-only churn stays under threshold");
    }
}

#[test]
fn remove_only_stream_is_patched_bitwise() {
    let base = scene(4);
    let channels = base.channels();
    let mut frames = vec![base.clone()];
    for f in 1..4usize {
        // Drop a trailing slice of the sorted coords, carrying features.
        let keep = base.len() - f * 12;
        let coords: Vec<Coord> = base.coords()[..keep].to_vec();
        let feats =
            Matrix::from_fn(keep, channels, |r, c| base.feats().as_slice()[r * channels + c]);
        frames.push(SparseTensor::new(coords, feats).expect("shrunk frame"));
    }
    let cfg = fp32_config(torchsparse::core::EnginePreset::TorchSparse);
    let stats = assert_stream_matches_cold(&temporal_model(9), &frames, &cfg, "remove-only");
    assert_partition(&stats, "remove-only");
    if !delta_env_forced() {
        assert_eq!(stats.delta_patches, 3, "remove-only churn stays under threshold");
    }
}

#[test]
fn above_threshold_churn_falls_back_to_full_replan() {
    let base = scene(4);
    let frames = temporal_churn_stream(&base, 3, 0.5, 13).expect("stream");
    let cfg = fp32_config(torchsparse::core::EnginePreset::TorchSparse);
    assert!(cfg.delta_replan_max_churn < 0.4, "test assumes churn 50% exceeds the threshold");
    let stats = assert_stream_matches_cold(&temporal_model(3), &frames, &cfg, "high-churn");
    assert_partition(&stats, "high-churn");
    if !delta_env_forced() {
        assert!(
            stats.delta_fallbacks >= 1,
            "churn 50% must trip the delta_replan_max_churn fallback ({stats:?})"
        );
        assert_eq!(stats.delta_patches, 0, "no frame under 50% churn should be patched");
    }
}

#[test]
fn delta_disabled_by_config_takes_full_replans_only() {
    let base = scene(4);
    let frames = temporal_churn_stream(&base, 3, 0.08, 17).expect("stream");
    let mut cfg = fp32_config(torchsparse::core::EnginePreset::TorchSparse);
    cfg.delta_replan = false;
    let stats = assert_stream_matches_cold(&temporal_model(5), &frames, &cfg, "delta-off");
    assert_partition(&stats, "delta-off");
    if !delta_env_forced() {
        assert_eq!(stats.delta_patches, 0);
        assert_eq!(stats.delta_fallbacks, 0);
        assert_eq!(stats.full_replans, stats.misses);
    }
}

#[test]
fn unet_with_skips_and_transposed_convs_is_patched_bitwise() {
    let base = scene(4);
    let frames = ego_drift_stream(&base, 3, 0.04, 19).expect("stream");
    let model = MinkUNet::with_width(0.25, 4, 3, 31);
    for threads in [1usize, 8] {
        let mut cfg = fp32_config(torchsparse::core::EnginePreset::TorchSparse);
        cfg.threads = Some(threads);
        let label = format!("unet/threads={threads}");
        let stats = assert_stream_matches_cold(&model, &frames, &cfg, &label);
        assert_partition(&stats, &label);
        if !delta_env_forced() {
            assert!(stats.delta_patches >= 1, "{label}: ego drift should be patchable ({stats:?})");
        }
    }
}

#[test]
fn exact_accumulation_on_and_off_both_match_cold() {
    let base = scene(4);
    let frames = dynamic_actors_stream(&base, 3, 2, 1, 23).expect("stream");
    for exact in [true, false] {
        let mut cfg = fp32_config(torchsparse::core::EnginePreset::TorchSparse);
        cfg.exact_accumulation = exact;
        cfg.threads = Some(8);
        let label = format!("exact={exact}");
        let stats = assert_stream_matches_cold(&temporal_model(13), &frames, &cfg, &label);
        assert_partition(&stats, &label);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random coordinate diff must round-trip: the layered
    /// [`DeltaIndex`] built from `diff_coords` answers every query exactly
    /// like a compacted from-scratch index over the new coordinates.
    #[test]
    fn prop_diff_patch_compact_roundtrip(
        old_sites in proptest::collection::vec((0i32..7, 0i32..7, 0i32..7), 4..40),
        new_sites in proptest::collection::vec((0i32..7, 0i32..7, 0i32..7), 4..40),
    ) {
        let dedup = |sites: &[(i32, i32, i32)]| {
            let mut v: Vec<(i32, i32, i32)> = sites.to_vec();
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(|(x, y, z)| Coord::new(0, x, y, z)).collect::<Vec<Coord>>()
        };
        let old = dedup(&old_sites);
        let new = dedup(&new_sites);
        let (old_idx, _) = CoordHashMap::build(&old);
        let delta = diff_coords(&old_idx, old.len(), &new).expect("diff");
        // The remap classifies every old row as kept (with its new row) or
        // removed.
        for (i, c) in old.iter().enumerate() {
            match new.iter().position(|n| n == c) {
                Some(p) => prop_assert_eq!(delta.remap[i], p as u32),
                None => prop_assert_eq!(delta.remap[i], REMOVED_ROW),
            }
        }
        let (layered, _) =
            DeltaIndex::build(Arc::new(old_idx), &delta, &new).expect("layered index");
        let (compacted, _) = MphfIndex::build(&new).expect("compacted index");
        for (r, c) in new.iter().enumerate() {
            prop_assert_eq!(layered.query(*c).0, Some(r as u32));
            prop_assert_eq!(compacted.query(*c).0, Some(r as u32));
        }
        for c in &old {
            if !new.contains(c) {
                prop_assert_eq!(layered.query(*c).0, None);
                prop_assert_eq!(compacted.query(*c).0, None);
            }
        }
    }
}
