//! The serving runtime's isolation contract, end to end: N streams share
//! one frozen plan, and nothing one stream does — re-planning, panicking,
//! missing deadlines, getting shed — may perturb a neighbor's outputs by
//! even one bit.

use std::sync::Arc;
use std::time::Duration;
use torchsparse::coords::Coord;
use torchsparse::core::{
    CompiledModel, CoreError, Engine, EnginePreset, FaultSite, SparseTensor, StreamState,
    ValidationConfig, ValidationPolicy,
};
use torchsparse::data::geometry_static_stream;
use torchsparse::gpusim::DeviceProfile;
use torchsparse::models::MinkUNet;
use torchsparse::serve::{serve, ServeError, ServiceConfig};
use torchsparse::tensor::Matrix;

/// A dense-ish blob so that stride-2 downsamples keep points.
fn scene(channels: usize, shift: i32) -> SparseTensor {
    let mut coords = std::collections::BTreeSet::new();
    for i in 0..400 {
        coords.insert(Coord::new(0, (i * 7 + shift) % 20, ((i * 13) / 3) % 18, (i * 3) % 14));
    }
    let coords: Vec<Coord> = coords.into_iter().collect();
    let n = coords.len();
    SparseTensor::new(
        coords,
        Matrix::from_fn(n, channels, |r, c| ((r + 3 * c) % 9) as f32 * 0.25 - 1.0),
    )
    .expect("valid scene")
}

fn bits(t: &SparseTensor) -> Vec<u32> {
    t.feats().as_slice().iter().map(|v| v.to_bits()).collect()
}

fn net() -> MinkUNet {
    MinkUNet::with_width(0.25, 4, 3, 17)
}

fn compile<'m>(net: &'m MinkUNet, x: &SparseTensor) -> (CompiledModel<'m>, StreamState) {
    Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti())
        .compile(net, x)
        .expect("compile")
        .into_parts()
}

fn solo_bits(model: &CompiledModel<'_>, frames: &[SparseTensor]) -> Vec<Vec<u32>> {
    let mut state = model.new_stream().expect("solo stream");
    frames.iter().map(|f| bits(&model.execute_on(&mut state, f).expect("solo frame"))).collect()
}

/// The acceptance-criterion storm: 8 streams, faults injected on three of
/// them (worker panics and deadline overruns), and:
/// - no panic escapes the serving layer (the test completing *is* the
///   assertion — `thread::scope` would repropagate an uncontained panic);
/// - every contained panic quarantines and rebuilds its stream;
/// - every successful frame — on faulted and clean streams alike — is
///   bitwise identical to a solo single-stream replay;
/// - the five non-faulted streams complete every frame.
#[test]
fn eight_stream_fault_storm_isolates_and_stays_bitwise_exact() {
    let net = net();
    let base = scene(4, 0);
    let (model, _) = compile(&net, &base);

    let streams = 8;
    let frames_n = 3;
    let frames: Vec<Vec<SparseTensor>> = (0..streams)
        .map(|s| geometry_static_stream(&base, frames_n, 0.02, 90 + s as u64).expect("stream"))
        .collect();
    let expected: Vec<Vec<Vec<u32>>> = frames.iter().map(|f| solo_bits(&model, f)).collect();

    let faulted = vec![0usize, 3, 5];
    let cfg = ServiceConfig {
        faults: vec![(FaultSite::WorkerPanic, 0.5), (FaultSite::DeadlineOverrun, 0.01)],
        fault_seed: 4242,
        fault_streams: Some(faulted.clone()),
        queue_capacity: frames_n,
        ..ServiceConfig::default()
    };
    let ((), outcome) = serve(&model, streams, &cfg, |svc| {
        for (stream, stream_frames) in frames.iter().enumerate() {
            for (frame, f) in stream_frames.iter().enumerate() {
                svc.submit(stream, frame as u64, Arc::new(f.clone())).expect("admit");
            }
        }
    })
    .expect("serve");

    let h = &outcome.health;
    assert!(h.quarantined > 0, "a 50% panic rate over 9 faulted frames must quarantine: {h}");
    assert_eq!(h.quarantined, h.rebuilt, "every quarantine must rebuild from the shared plan");
    assert!(
        h.degradation.count(FaultSite::WorkerPanic) as u64 == h.quarantined,
        "each contained panic must be recorded in the degradation window: {h}"
    );

    let mut ok_frames = 0;
    for c in &outcome.completions {
        if let Ok(Some(out)) = &c.result {
            assert_eq!(
                bits(out),
                expected[c.stream][c.frame as usize],
                "stream {} frame {} must be bitwise identical to its solo replay",
                c.stream,
                c.frame
            );
            ok_frames += 1;
        }
    }
    assert!(ok_frames > 0, "the storm must still complete frames: {h}");

    for s in &h.streams {
        if !faulted.contains(&s.stream) {
            assert_eq!(
                s.completed, frames_n as u64,
                "non-faulted stream {} must complete every frame untouched: {h}",
                s.stream
            );
            assert_eq!(s.quarantined, 0, "faults were scoped away from stream {}", s.stream);
            assert!(s.degradation.is_empty(), "stream {} saw no degradation", s.stream);
        }
    }
}

/// Stream A alternates between two geometries every frame — invalidating
/// and re-planning its slot each time — while stream B serves a static
/// geometry concurrently. B's outputs must be bitwise identical to a solo
/// replay: one stream's plan churn never touches a neighbor's slot.
#[test]
fn replanning_stream_never_perturbs_neighbor_in_flight() {
    let net = net();
    let a = scene(4, 0);
    let b = scene(4, 5);
    assert_ne!(a.coords(), b.coords(), "the two geometries must differ");
    let (model, _) = compile(&net, &a);

    // Stream 0 thrashes its slot: a, b, a, b. Stream 1 stays on `a`-shaped
    // frames with jittered features.
    let thrash: Vec<SparseTensor> = vec![a.clone(), b.clone(), a.clone(), b.clone()];
    let steady = geometry_static_stream(&a, 4, 0.02, 7).expect("steady stream");
    let expected_thrash = solo_bits(&model, &thrash);
    let expected_steady = solo_bits(&model, &steady);

    let cfg = ServiceConfig { queue_capacity: 4, ..ServiceConfig::default() };
    let ((), outcome) = serve(&model, 2, &cfg, |svc| {
        // Interleave submissions so both workers run concurrently.
        for i in 0..4 {
            svc.submit(0, i as u64, Arc::new(thrash[i].clone())).expect("admit thrash");
            svc.submit(1, i as u64, Arc::new(steady[i].clone())).expect("admit steady");
        }
    })
    .expect("serve");

    assert_eq!(outcome.health.completed, 8, "all frames complete: {}", outcome.health);
    for (stream, expected) in [(0usize, &expected_thrash), (1usize, &expected_steady)] {
        for c in outcome.stream_completions(stream) {
            let out = c.result.as_ref().expect("ok").as_ref().expect("kept output");
            assert_eq!(
                bits(out),
                expected[c.frame as usize],
                "stream {stream} frame {} must match its solo replay even while the \
                 neighbor re-plans",
                c.frame
            );
        }
    }
}

/// An unmeetable wall-clock deadline fails with the typed
/// `DeadlineExceeded` error after exhausting its retries; the miss and
/// every retry attempt are counted.
#[test]
fn deadline_budget_exhausts_retries_with_typed_error() {
    let net = net();
    let x = scene(4, 0);
    let (model, _) = compile(&net, &x);

    let cfg = ServiceConfig {
        deadline: Some(Duration::from_nanos(1)),
        max_retries: 2,
        base_backoff_us: 10,
        ..ServiceConfig::default()
    };
    let ((), outcome) = serve(&model, 1, &cfg, |svc| {
        svc.submit(0, 0, Arc::new(x.clone())).expect("admit");
    })
    .expect("serve");

    let h = &outcome.health;
    assert_eq!(h.failed, 1, "{h}");
    assert_eq!(h.retried, 2, "both retries spent: {h}");
    assert_eq!(h.deadline_missed, 3, "each of the three attempts missed: {h}");
    let c = &outcome.completions[0];
    assert_eq!(c.attempts, 3);
    match &c.result {
        Err(ServeError::Failed { error: CoreError::DeadlineExceeded { stage, .. }, attempts }) => {
            assert_eq!(*attempts, 3);
            assert!(
                ["mapping", "gather-gemm-scatter", "epilogue"].contains(stage),
                "stage must name a pipeline boundary, got {stage}"
            );
        }
        other => panic!("expected a typed deadline failure, got {other:?}"),
    }
}

/// Injected transient overruns retry and then succeed — and the retried
/// frames' outputs are still bitwise identical to an untouched solo run.
#[test]
fn retried_frames_stay_bitwise_exact() {
    let net = net();
    let base = scene(4, 0);
    let (model, _) = compile(&net, &base);
    let frames = geometry_static_stream(&base, 6, 0.02, 11).expect("stream");
    let expected = solo_bits(&model, &frames);

    // Low per-check probability: a handful of the ~6 x num_ops stage
    // checks trip, each retried with a fresh attempt. Deterministic in the
    // seed, verified by the retried counter below.
    let cfg = ServiceConfig {
        faults: vec![(FaultSite::DeadlineOverrun, 0.5 / model.num_ops().max(1) as f64)],
        fault_seed: 5,
        max_retries: 3,
        base_backoff_us: 10,
        queue_capacity: 6,
        ..ServiceConfig::default()
    };
    let run = || {
        serve(&model, 1, &cfg, |svc| {
            for (i, f) in frames.iter().enumerate() {
                svc.submit(0, i as u64, Arc::new(f.clone())).expect("admit");
            }
        })
        .expect("serve")
        .1
    };
    let outcome = run();

    let h = &outcome.health;
    assert!(h.retried > 0, "the seed must inject at least one overrun: {h}");
    assert_eq!(h.completed, 6, "every frame recovers within its retry budget: {h}");
    for c in &outcome.completions {
        let out = c.result.as_ref().expect("ok").as_ref().expect("kept output");
        assert_eq!(
            bits(out),
            expected[c.frame as usize],
            "frame {} (attempts {}) must match solo bitwise",
            c.frame,
            c.attempts
        );
    }
    assert!(outcome.completions.iter().any(|c| c.attempts > 1), "some frame retried");

    // The whole schedule — injections, retries, backoffs — replays exactly.
    let again = run();
    let key = |o: &torchsparse::serve::ServiceOutcome| -> Vec<(usize, u64, u32)> {
        o.completions.iter().map(|c| (c.stream, c.frame, c.attempts)).collect()
    };
    assert_eq!(key(&outcome), key(&again), "same seed must replay the same retry schedule");
    assert_eq!(outcome.health.retried, again.health.retried);
}

/// Admission control and load shedding return typed errors synchronously
/// and count into the health window; the queue bound holds.
#[test]
fn admission_and_shedding_are_typed_and_counted() {
    let net = net();
    let x = scene(4, 0);
    let (model, _) = compile(&net, &x);

    let cfg = ServiceConfig {
        admission: ValidationConfig {
            policy: ValidationPolicy::Reject,
            max_points: Some(10),
            max_grid_cells: u64::MAX,
        },
        queue_capacity: 2,
        ..ServiceConfig::default()
    };
    let ((), outcome) = serve(&model, 1, &cfg, |svc| {
        assert!(matches!(
            svc.submit(0, 0, Arc::new(x.clone())),
            Err(ServeError::Rejected(CoreError::BudgetExceeded { .. }))
        ));
        assert!(matches!(
            svc.submit(7, 0, Arc::new(x.clone())),
            Err(ServeError::UnknownStream { stream: 7 })
        ));
    })
    .expect("serve");
    assert_eq!(outcome.health.rejected, 1, "{}", outcome.health);
    assert_eq!(outcome.health.admitted, 0);

    // A service-wide point budget smaller than one frame sheds at submit,
    // independent of worker timing.
    let cfg = ServiceConfig {
        service_point_budget: Some(x.len() - 1),
        queue_capacity: 2,
        ..ServiceConfig::default()
    };
    let ((), outcome) = serve(&model, 1, &cfg, |svc| {
        assert!(matches!(
            svc.submit(0, 0, Arc::new(x.clone())),
            Err(ServeError::Shed(CoreError::BudgetExceeded { .. }))
        ));
    })
    .expect("serve");
    assert_eq!(outcome.health.shed, 1, "{}", outcome.health);
    assert!(outcome.health.max_queue_depth <= 2);

    // An unusable config is a typed service-level error, not a panic.
    let cfg = ServiceConfig { queue_capacity: 0, ..ServiceConfig::default() };
    assert!(matches!(serve(&model, 1, &cfg, |_| ()), Err(CoreError::InvalidConfig { .. })));
}

/// Each `serve` call is its own health window: faults from one call never
/// leak into the next call's report over the same shared model.
#[test]
fn health_windows_do_not_leak_across_serve_calls() {
    let net = net();
    let x = scene(4, 0);
    let (model, _) = compile(&net, &x);

    let storm = ServiceConfig {
        faults: vec![(FaultSite::WorkerPanic, 1.0)],
        fault_seed: 1,
        ..ServiceConfig::default()
    };
    let ((), first) = serve(&model, 1, &storm, |svc| {
        svc.submit(0, 0, Arc::new(x.clone())).expect("admit");
    })
    .expect("serve");
    assert_eq!(first.health.quarantined, 1, "{}", first.health);
    assert!(!first.health.degradation.is_empty());

    let clean = ServiceConfig::default();
    let ((), second) = serve(&model, 1, &clean, |svc| {
        svc.submit(0, 0, Arc::new(x.clone())).expect("admit");
    })
    .expect("serve");
    let h = &second.health;
    assert_eq!(h.quarantined, 0, "the storm window must not leak: {h}");
    assert_eq!(h.completed, 1, "{h}");
    assert!(h.degradation.is_empty(), "{h}");
}
