//! Integration tests of the full data pipeline: LiDAR generation →
//! voxelization → multi-frame fusion → model inference → tuning.

use torchsparse::core::tuning::tune_engine;
use torchsparse::core::{Engine, EnginePreset, Module};
use torchsparse::data::{aggregate_frames, voxelize_scan, LidarConfig, SyntheticDataset};
use torchsparse::gpusim::{DeviceProfile, Stage};
use torchsparse::models::{BenchmarkModel, CenterPoint, MinkUNet};

#[test]
fn lidar_to_inference_pipeline() {
    // The full path a user takes: raw scan -> voxels -> segmentation.
    let scan = LidarConfig::semantic_kitti().scaled(0.02).generate(1);
    assert!(scan.len() > 200);
    let input = voxelize_scan(&scan, 0.1, 4).expect("voxelize");
    input.validate_unique().expect("unique voxels");
    let model = MinkUNet::with_width(0.25, 4, 19, 0);
    let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
    let out = engine.run(&model, &input).expect("inference");
    assert_eq!(out.len(), input.len());
    assert_eq!(out.channels(), 19);
}

#[test]
fn multiframe_detection_pipeline() {
    let cfg = LidarConfig::waymo().scaled(0.02);
    let frames: Vec<_> = (0..3).map(|i| cfg.generate(i)).collect();
    let merged = aggregate_frames(&frames, 0.5);
    let input = voxelize_scan(&merged, 0.1, 5).expect("voxelize");
    let model = CenterPoint::with_widths(5, &[8, 16], 3);
    let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    let out = engine.run(&model, &input).expect("inference");
    assert_eq!(out.stride(), 2);
    assert!(!out.is_empty());
    // The detection head surcharge must appear in Other.
    assert!(engine.last_timeline().stage(Stage::Other).as_f64() > 0.0);
}

#[test]
fn tuning_transfers_to_unseen_scenes() {
    let ds = SyntheticDataset::nuscenes(0.05, 4, 1);
    let calibration: Vec<_> = (0..2).map(|i| ds.scene(i).expect("scene")).collect();
    let unseen = ds.scene(50).expect("scene");
    let model = MinkUNet::with_width(0.25, 4, 8, 4);

    let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    engine.context_mut().simulate_only = true;

    engine.run(&model, &unseen).expect("untuned run");
    let untuned = engine.last_timeline().stage(Stage::MatMul);

    tune_engine(&mut engine, &model, &calibration, None).expect("tuning");
    engine.run(&model, &unseen).expect("tuned run");
    let tuned = engine.last_timeline().stage(Stage::MatMul);

    assert!(
        tuned.as_f64() <= untuned.as_f64() * 1.02,
        "tuned matmul {tuned} should not regress vs untuned {untuned}"
    );
}

#[test]
fn every_benchmark_model_runs_on_every_device() {
    for bm in BenchmarkModel::ALL {
        let ds = match bm {
            BenchmarkModel::MinkUNetHalfSemanticKitti
            | BenchmarkModel::MinkUNetFullSemanticKitti => {
                SyntheticDataset::semantic_kitti(0.01, 4)
            }
            BenchmarkModel::MinkUNetNuScenes1 => SyntheticDataset::nuscenes(0.02, 4, 1),
            BenchmarkModel::MinkUNetNuScenes3 => SyntheticDataset::nuscenes(0.02, 4, 3),
            BenchmarkModel::CenterPointNuScenes10 => SyntheticDataset::nuscenes(0.02, 5, 10),
            BenchmarkModel::CenterPointWaymo1 => SyntheticDataset::waymo(0.01, 5, 1),
            BenchmarkModel::CenterPointWaymo3 => SyntheticDataset::waymo(0.01, 5, 3),
        };
        let input = ds.scene(0).expect("scene");
        let model: Box<dyn Module> = if bm.is_segmentation() {
            Box::new(MinkUNet::with_width(0.25, 4, 8, 1))
        } else {
            Box::new(CenterPoint::with_widths(5, &[8, 16], 1))
        };
        for device in DeviceProfile::evaluation_devices() {
            let mut engine = Engine::new(EnginePreset::TorchSparse, device);
            engine.context_mut().simulate_only = true;
            engine.run(model.as_ref(), &input).unwrap_or_else(|e| {
                panic!("{} failed: {e}", bm.name());
            });
            assert!(engine.last_latency().as_f64() > 0.0);
        }
    }
}

#[test]
fn faster_devices_are_faster() {
    let input = SyntheticDataset::semantic_kitti(0.03, 4).scene(3).expect("scene");
    let model = MinkUNet::with_width(0.5, 4, 19, 2);
    let mut latencies = Vec::new();
    for device in DeviceProfile::evaluation_devices() {
        let mut engine = Engine::new(EnginePreset::TorchSparse, device.clone());
        engine.context_mut().simulate_only = true;
        engine.run(&model, &input).expect("run");
        latencies.push((device.name.clone(), engine.last_latency().as_f64()));
    }
    // Devices are returned oldest first; latency must decrease.
    assert!(
        latencies[0].1 > latencies[1].1 && latencies[1].1 > latencies[2].1,
        "generation ordering violated: {latencies:?}"
    );
}
