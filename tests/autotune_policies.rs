//! The compile-time policy autotuner must be invisible in the outputs:
//! every selectable execution policy is bitwise-neutral, a warm-started
//! session reproduces a cold search (and an autotune-off run) exactly with
//! zero candidate measurements, and a corrupt or stale tuning database
//! degrades to a fresh search instead of failing the compile.

use torchsparse::coords::Coord;
use torchsparse::core::{
    Engine, EnginePreset, ExecPolicy, GroupingStrategy, OptimizationConfig, SparseConv3d,
    SparseTensor,
};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::models::MinkUNet;
use torchsparse::tensor::Matrix;
use torchsparse_core::Sequential;

/// The suite may run with `TORCHSPARSE_AUTOTUNE` / `TORCHSPARSE_TUNE_DB`
/// pinned (the verify recipe does); those overrides beat the per-test
/// configuration, so tests asserting search counters or database paths
/// skip themselves.
fn env_pins_autotune() -> bool {
    std::env::var_os("TORCHSPARSE_AUTOTUNE").is_some()
        || std::env::var_os("TORCHSPARSE_TUNE_DB").is_some()
}

fn temp_db(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ts-autotune-it-{}-{name}.json", std::process::id()))
}

/// A fully dense 12x12x12 block: the first stride-1 3^3 convolution's
/// kernel map carries ~39k entries, comfortably above the autotuner's
/// measurement floor, so compiles against it really search.
fn dense_scene(channels: usize) -> SparseTensor {
    let mut coords = Vec::new();
    for x in 0..12 {
        for y in 0..12 {
            for z in 0..12 {
                coords.push(Coord::new(0, x, y, z));
            }
        }
    }
    let n = coords.len();
    SparseTensor::new(
        coords,
        Matrix::from_fn(n, channels, |r, c| ((r * 31 + c * 7) % 11) as f32 * 0.2 - 1.0),
    )
    .expect("valid scene")
}

/// A small irregular scene for the policy-neutrality sweep (compiles are
/// cheap enough to run the whole product space).
fn small_scene(channels: usize) -> SparseTensor {
    let coords: Vec<Coord> = (0..120)
        .map(|i| Coord::new(0, (i * 7) % 13, (i * 3) % 11, (i * 5) % 9))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let n = coords.len();
    SparseTensor::new(coords, Matrix::from_fn(n, channels, |r, c| ((r + 2 * c) % 7) as f32 - 3.0))
        .expect("valid scene")
}

fn two_conv_model() -> Sequential {
    Sequential::new("net")
        .push(SparseConv3d::with_random_weights("c1", 4, 8, 3, 1, 11))
        .push(SparseConv3d::with_random_weights("c2", 8, 4, 3, 1, 13))
}

fn bits(t: &SparseTensor) -> Vec<u32> {
    t.feats().as_slice().iter().map(|v| v.to_bits()).collect()
}

fn config_with_db(path: &std::path::Path, autotune: bool) -> OptimizationConfig {
    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.tune_db = Some(path.to_path_buf());
    cfg.autotune_policies = autotune;
    cfg
}

#[test]
fn warm_start_transfers_within_a_device_family_but_not_across() {
    if env_pins_autotune() {
        return;
    }
    let db = temp_db("family-transfer");
    let _ = std::fs::remove_file(&db);
    let model = two_conv_model();
    let x = dense_scene(4);

    // Tune on an RTX 2080 Ti and persist the database.
    let cold = Engine::with_config(config_with_db(&db, true), DeviceProfile::rtx_2080ti())
        .compile(&model, &x)
        .expect("cold compile");
    assert!(cold.tuning_report().expect("autotune ran").candidates_measured > 0);

    // Another Turing board warm-starts from the same entries: policies are
    // keyed by architecture family, not by board name.
    let sibling =
        DeviceProfile { name: "RTX 2070 Super".to_owned(), ..DeviceProfile::rtx_2080ti() };
    let warm = Engine::with_config(config_with_db(&db, true), sibling)
        .compile(&model, &x)
        .expect("sibling compile");
    let report = warm.tuning_report().expect("autotune ran");
    assert_eq!(report.candidates_measured, 0, "Turing sibling must warm-start: {report:?}");
    assert!(report.warm_started > 0, "{report:?}");

    // An Ampere board shares nothing with the Turing entries.
    let cross = Engine::with_config(config_with_db(&db, true), DeviceProfile::rtx_3090())
        .compile(&model, &x)
        .expect("cross-family compile");
    let cross_report = cross.tuning_report().expect("autotune ran");
    assert_eq!(cross_report.warm_started, 0, "families must not share entries: {cross_report:?}");
    let _ = std::fs::remove_file(&db);
}

#[test]
fn warm_start_measures_nothing_and_matches_cold_and_off_bitwise() {
    if env_pins_autotune() {
        return;
    }
    let db = temp_db("warm-start");
    let _ = std::fs::remove_file(&db);
    let m = two_conv_model();
    let x = dense_scene(4);

    // Cold compile: no database yet, so measurable layers really search.
    let mut cold = Engine::with_config(config_with_db(&db, true), DeviceProfile::rtx_2080ti())
        .compile(&m, &x)
        .expect("cold compile");
    let report = cold.tuning_report().expect("autotune ran").clone();
    assert!(!report.degraded, "a missing database is an empty one, not a corrupt one");
    assert_eq!(report.warm_started, 0, "nothing to warm-start from");
    assert!(
        report.candidates_measured > 0,
        "a dense scene is above the measurement floor: {report:?}"
    );
    assert!(report.policies.contains_key("c1") && report.policies.contains_key("c2"));
    assert!(db.exists(), "measured winners must persist");
    let cold_bits = bits(&cold.execute(&x).expect("cold execute"));

    // Warm compile: every layer's geometry class is in the database now —
    // zero candidate measurements, bitwise-identical outputs.
    let mut warm = Engine::with_config(config_with_db(&db, true), DeviceProfile::rtx_2080ti())
        .compile(&m, &x)
        .expect("warm compile");
    let warm_report = warm.tuning_report().expect("autotune ran").clone();
    assert_eq!(
        warm_report.candidates_measured, 0,
        "a warm-started session must perform zero measurements: {warm_report:?}"
    );
    assert!(warm_report.warm_started > 0, "{warm_report:?}");
    assert!(!warm_report.degraded);
    assert_eq!(
        warm_report.policies, report.policies,
        "warm start must reproduce the cold search's selections"
    );
    assert_eq!(bits(&warm.execute(&x).expect("warm execute")), cold_bits);

    // Autotune off: same bits again, and no report at all.
    let mut off = Engine::with_config(config_with_db(&db, false), DeviceProfile::rtx_2080ti())
        .compile(&m, &x)
        .expect("autotune-off compile");
    assert!(off.tuning_report().is_none());
    assert_eq!(bits(&off.execute(&x).expect("off execute")), cold_bits);

    // And dynamic execution agrees with all three.
    let mut dynamic = Engine::with_config(config_with_db(&db, false), DeviceProfile::rtx_2080ti());
    assert_eq!(bits(&dynamic.run(&m, &x).expect("dynamic run")), cold_bits);

    std::fs::remove_file(&db).expect("cleanup");
}

#[test]
fn corrupt_or_stale_db_degrades_gracefully_and_heals() {
    if env_pins_autotune() {
        return;
    }
    let m = two_conv_model();
    let x = dense_scene(4);

    for (name, text) in
        [("corrupt", "{this is not json"), ("stale", "{\"version\":99,\"entries\":[]}")]
    {
        let db = temp_db(name);
        std::fs::write(&db, text).expect("seed bad db");

        let mut session =
            Engine::with_config(config_with_db(&db, true), DeviceProfile::rtx_2080ti())
                .compile(&m, &x)
                .expect("compile must survive a bad database");
        let report = session.tuning_report().expect("autotune ran").clone();
        assert!(report.degraded, "{name}: a bad database must be reported");
        assert_eq!(report.warm_started, 0, "{name}: nothing usable to warm-start from");
        assert!(report.candidates_measured > 0, "{name}: a fresh search must run");
        let degraded_bits = bits(&session.execute(&x).expect("execute"));

        // The fresh search overwrote the bad file: the next compile
        // warm-starts cleanly.
        let mut healed =
            Engine::with_config(config_with_db(&db, true), DeviceProfile::rtx_2080ti())
                .compile(&m, &x)
                .expect("healed compile");
        let healed_report = healed.tuning_report().expect("autotune ran").clone();
        assert!(!healed_report.degraded, "{name}: the rewritten database must load");
        assert_eq!(healed_report.candidates_measured, 0, "{name}");
        assert_eq!(bits(&healed.execute(&x).expect("execute")), degraded_bits, "{name}");

        std::fs::remove_file(&db).expect("cleanup");
    }
}

#[test]
fn every_selectable_policy_is_bitwise_neutral() {
    // The autotuner's entire product space — grouping, fused route,
    // chunk and panel widths — must not change a single output bit; the
    // search is free to pick anything. SIMD stays pinned to the config
    // (the kernels are bit-exact among themselves, which
    // `dataflow::tests` covers at the unit level).
    let m = two_conv_model();
    let x = small_scene(4);
    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.autotune_policies = false;
    let device = DeviceProfile::rtx_2080ti;

    let mut baseline_engine = Engine::with_config(cfg.clone(), device());
    let expected = bits(&baseline_engine.run(&m, &x).expect("baseline dynamic run"));

    let groupings = [
        GroupingStrategy::Separate,
        GroupingStrategy::Symmetric,
        GroupingStrategy::Fixed,
        GroupingStrategy::Adaptive { epsilon: 0.0, s_threshold: usize::MAX },
        GroupingStrategy::Adaptive { epsilon: 1.0, s_threshold: 0 },
        GroupingStrategy::Adaptive { epsilon: 0.3, s_threshold: 150_000 },
    ];
    let widths = [32usize, 64, 128, 256];
    let mut swept = 0;
    for grouping in groupings {
        for fused in [true, false] {
            for &chunk_rows in &widths {
                for &panel_rows in &widths {
                    let policy =
                        ExecPolicy { grouping, fused, simd: cfg.simd, chunk_rows, panel_rows };
                    let mut engine = Engine::with_config(cfg.clone(), device());
                    let ctx = engine.context_mut();
                    ctx.tuned_policies.insert("c1".to_owned(), policy);
                    ctx.tuned_policies.insert("c2".to_owned(), policy);
                    let mut session = engine.compile(&m, &x).expect("compile with pinned policy");
                    let got = bits(&session.execute(&x).expect("execute"));
                    assert_eq!(got, expected, "policy {policy:?} must be bitwise-neutral");
                    swept += 1;
                }
            }
        }
    }
    assert_eq!(swept, groupings.len() * 2 * widths.len() * widths.len());
}

#[test]
fn autotuned_minkunet_matches_untuned_bitwise() {
    if env_pins_autotune() {
        return;
    }
    // End-to-end on a real network: tuned and untuned compiles agree
    // bit-for-bit, through pooling, residuals, and transposed convs.
    let db = temp_db("minkunet");
    let _ = std::fs::remove_file(&db);
    let net = MinkUNet::with_width(0.25, 4, 3, 17);
    let x = dense_scene(4);

    let mut tuned = Engine::with_config(config_with_db(&db, true), DeviceProfile::rtx_2080ti())
        .compile(&net, &x)
        .expect("tuned compile");
    let tuned_bits = bits(&tuned.execute(&x).expect("tuned execute"));
    assert!(tuned.tuning_report().is_some());

    let mut plain = Engine::with_config(config_with_db(&db, false), DeviceProfile::rtx_2080ti())
        .compile(&net, &x)
        .expect("untuned compile");
    assert_eq!(bits(&plain.execute(&x).expect("untuned execute")), tuned_bits);

    let _ = std::fs::remove_file(&db);
}
