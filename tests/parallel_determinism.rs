//! The parallel execution runtime must be invisible in the results: for
//! every dataflow and storage precision, the engine's output is bitwise
//! identical at any worker count, workspace buffers are recycled across
//! forward passes, and fault-injection fallbacks behave exactly as they do
//! on the serial engine.

use proptest::prelude::*;
use torchsparse::coords::Coord;
use torchsparse::core::{
    BatchNorm, Engine, EnginePreset, FaultSite, Module, OptimizationConfig, Precision, ReLU,
    Sequential, SimdPolicy, SparseConv3d, SparseTensor,
};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::tensor::Matrix;

/// Thread counts every configuration is checked at; `1` is the exact
/// serial engine the others must match bit for bit.
const THREADS: [usize; 3] = [1, 2, 8];

fn tensor_from(sites: &[(i32, i32, i32)], c: usize, seed: u64) -> SparseTensor {
    let mut dedup: Vec<(i32, i32, i32)> = sites.to_vec();
    dedup.sort_unstable();
    dedup.dedup();
    let coords: Vec<Coord> = dedup.iter().map(|&(x, y, z)| Coord::new(0, x, y, z)).collect();
    let feats = Matrix::from_fn(coords.len(), c, |r, ch| {
        let v = (r as u64).wrapping_mul(0x9E37_79B9).wrapping_add(ch as u64).wrapping_mul(seed | 1);
        ((v % 1000) as f32 - 500.0) / 250.0
    });
    SparseTensor::new(coords, feats).expect("valid tensor")
}

fn model(c: usize, seed: u64) -> Sequential {
    Sequential::new("net")
        .push(SparseConv3d::with_random_weights("conv1", c, 8, 3, 1, seed))
        .push(BatchNorm::identity("bn", 8))
        .push(ReLU::new("act"))
        .push(SparseConv3d::with_random_weights("down", 8, 8, 2, 2, seed + 1))
        .push(SparseConv3d::with_random_weights("conv2", 8, c, 3, 1, seed + 2))
}

/// The three dataflow configurations of the engine: fused
/// gather-matmul-scatter (TorchSparse), unfused per-offset baseline, and
/// fetch-on-demand (forced by an infinite threshold).
fn dataflow_configs() -> Vec<(&'static str, OptimizationConfig)> {
    let fused = EnginePreset::TorchSparse.config();
    let unfused = EnginePreset::BaselineFp32.config();
    let mut fod = EnginePreset::BaselineFp32.config();
    fod.fetch_on_demand_below = Some(usize::MAX);
    vec![("fused", fused), ("unfused", unfused), ("fetch-on-demand", fod)]
}

fn output_bits<M: Module>(
    mut cfg: OptimizationConfig,
    threads: usize,
    m: &M,
    x: &SparseTensor,
) -> (Vec<Coord>, Vec<u32>) {
    cfg.threads = Some(threads);
    let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
    let y = engine.run(m, x).expect("run succeeds");
    let bits = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
    (y.coords().to_vec(), bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every (dataflow, precision) pair produces bitwise identical outputs
    /// at 1, 2, and 8 worker threads.
    #[test]
    fn prop_outputs_bitwise_identical_across_thread_counts(
        sites in proptest::collection::vec((-5i32..5, -5i32..5, -5i32..5), 8..40),
        seed in 1u64..300,
    ) {
        let c = 4;
        let x = tensor_from(&sites, c, seed);
        let m = model(c, seed);
        for (dataflow, cfg) in dataflow_configs() {
            for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
                let mut cfg = cfg.clone();
                cfg.precision = precision;
                let reference = output_bits(cfg.clone(), 1, &m, &x);
                for threads in &THREADS[1..] {
                    let parallel = output_bits(cfg.clone(), *threads, &m, &x);
                    prop_assert!(
                        reference == parallel,
                        "{dataflow} @ {precision:?} diverges at {threads} threads"
                    );
                }
            }
        }
    }
}

/// A fixed larger scene, checked across thread counts for every dataflow at
/// the preset's native precision — a fast-failing smoke companion to the
/// property test above.
#[test]
fn fixed_scene_bitwise_identical_across_thread_counts() {
    let sites: Vec<(i32, i32, i32)> =
        (0..400).map(|i| ((i * 7) % 23 - 11, (i * 13) % 19 - 9, (i * 5) % 17 - 8)).collect();
    let x = tensor_from(&sites, 4, 99);
    let m = model(4, 99);
    for (dataflow, cfg) in dataflow_configs() {
        let reference = output_bits(cfg.clone(), 1, &m, &x);
        for threads in &THREADS[1..] {
            let parallel = output_bits(cfg.clone(), *threads, &m, &x);
            assert_eq!(reference, parallel, "{dataflow} diverges at {threads} threads");
        }
    }
}

/// The SIMD microkernels must be as invisible as the thread count: for
/// every dataflow and storage precision, forcing the SIMD policy to
/// `Scalar` (the pre-SIMD loops), `Portable` (fixed-width arrays), or
/// leaving it on `Auto` (AVX2 where detected) yields bitwise identical
/// outputs at every worker count. The non-FMA kernels preserve the scalar
/// k-major mul-then-add accumulation order exactly, so this holds with no
/// tolerance.
#[test]
fn simd_policy_bitwise_identical_across_dataflows_and_precisions() {
    let sites: Vec<(i32, i32, i32)> =
        (0..300).map(|i| ((i * 7) % 21 - 10, (i * 13) % 17 - 8, (i * 5) % 15 - 7)).collect();
    let x = tensor_from(&sites, 4, 123);
    let m = model(4, 123);
    for (dataflow, cfg) in dataflow_configs() {
        for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            let mut reference: Option<(Vec<Coord>, Vec<u32>)> = None;
            for policy in [SimdPolicy::Scalar, SimdPolicy::Portable, SimdPolicy::Auto] {
                for threads in THREADS {
                    let mut cfg = cfg.clone();
                    cfg.precision = precision;
                    cfg.simd = policy;
                    let out = output_bits(cfg, threads, &m, &x);
                    match &reference {
                        None => reference = Some(out),
                        Some(r) => assert_eq!(
                            r, &out,
                            "{dataflow} @ {precision:?} diverges with {policy:?} at {threads} threads"
                        ),
                    }
                }
            }
        }
    }
}

/// After the first forward pass has sized the workspace arena, later passes
/// of the same scene allocate no fresh buffers — every `take` is served
/// from the recycled pool.
#[test]
fn workspace_buffers_recycled_across_forward_passes() {
    let sites: Vec<(i32, i32, i32)> =
        (0..200).map(|i| ((i * 3) % 13 - 6, (i * 11) % 15 - 7, (i * 7) % 11 - 5)).collect();
    let x = tensor_from(&sites, 4, 7);
    let m = model(4, 7);
    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.threads = Some(2);
    // This test exercises the workspace arena itself; fused execution
    // bypasses the gather/psum buffers entirely (see tests/fused_dataflow.rs
    // for that property), so pin the buffered path here.
    cfg.fused_execution = false;
    let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());

    engine.run(&m, &x).expect("first pass");
    let fresh_after_first = engine.context().runtime.workspaces.fresh_allocations;
    let reuses_after_first = engine.context().runtime.workspaces.reuses;
    assert!(fresh_after_first > 0, "first pass must populate the arena");

    engine.run(&m, &x).expect("second pass");
    let fresh_after_second = engine.context().runtime.workspaces.fresh_allocations;
    let reuses_after_second = engine.context().runtime.workspaces.reuses;

    assert_eq!(
        fresh_after_second, fresh_after_first,
        "steady-state forward passes must not allocate fresh workspace buffers"
    );
    assert!(
        reuses_after_second > reuses_after_first,
        "second pass must serve takes from recycled buffers"
    );
}

/// Graceful degradation decisions are identical under the parallel
/// runtime: an armed grid-table fault falls back to the hashmap with
/// bit-exact output at 1 and 4 threads.
#[test]
fn grid_table_fault_fallback_identical_under_parallel_runtime() {
    // The `TORCHSPARSE_COORD_INDEX` override wins over the preset's map
    // search; forcing a non-grid index leaves the armed grid faults
    // nothing to fire on.
    if matches!(std::env::var("TORCHSPARSE_COORD_INDEX").ok().as_deref(), Some(v) if v != "grid") {
        return;
    }
    let sites: Vec<(i32, i32, i32)> =
        (0..150).map(|i| ((i * 7) % 9, (i * 3) % 8, (i * 5) % 7)).collect();
    let x = tensor_from(&sites, 4, 3);
    let m = model(4, 3);

    let run_with = |threads: usize| {
        let mut cfg = EnginePreset::SpConv.config();
        cfg.threads = Some(threads);
        let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
        engine.context_mut().faults.arm_count(FaultSite::GridTableBuild, 8);
        let y = engine.run(&m, &x).expect("fallback run completes");
        let degradations = engine.degradation_report().count(FaultSite::GridTableBuild);
        let bits: Vec<u32> = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        (degradations, y.coords().to_vec(), bits)
    };

    let serial = run_with(1);
    assert!(serial.0 >= 1, "fault must trigger at least one fallback");
    let parallel = run_with(4);
    assert_eq!(serial, parallel, "degradation path diverges under parallel runtime");
}

/// An injected FP16 overflow forces the same FP32 re-run — with bit-exact
/// output — at 1 and 4 threads.
#[test]
fn fp16_overflow_rerun_identical_under_parallel_runtime() {
    let sites: Vec<(i32, i32, i32)> =
        (0..150).map(|i| ((i * 7) % 9, (i * 3) % 8, (i * 5) % 7)).collect();
    let x = tensor_from(&sites, 4, 5);
    let m = model(4, 5);

    let run_with = |threads: usize| {
        let mut cfg = EnginePreset::TorchSparse.config();
        cfg.threads = Some(threads);
        let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
        engine.context_mut().faults.arm_count(FaultSite::Fp16Overflow, 1);
        let y = engine.run(&m, &x).expect("FP32 re-run completes");
        let degradations = engine.degradation_report().count(FaultSite::Fp16Overflow);
        let bits: Vec<u32> = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        (degradations, y.coords().to_vec(), bits)
    };

    let serial = run_with(1);
    assert!(serial.0 >= 1, "fault must trigger the FP32 re-run");
    let parallel = run_with(4);
    assert_eq!(serial, parallel, "overflow re-run diverges under parallel runtime");
}
