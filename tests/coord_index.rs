//! The coordinate-index determinism contract: the index structure a plan
//! uses to resolve coordinates (legacy hashmap, dense grid, or the succinct
//! MPHF cascade) is a pure representation choice. Every choice must produce
//! bitwise-identical outputs across dataflows, fused/unfused routes, and
//! thread counts — only `MappingStats` and simulated latency may differ.

use torchsparse::coords::Coord;
use torchsparse::core::{
    CoordIndexChoice, Engine, EnginePreset, Module, OptimizationConfig, Precision, SparseTensor,
};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::models::MinkUNet;
use torchsparse::tensor::Matrix;

/// Worker counts the sweep is checked at: the serial path and a heavily
/// chunked parallel one.
const THREADS: [usize; 2] = [1, 8];

/// Every selectable index. `Auto` rides along to pin that the dynamic
/// default resolves to one of the other three, never to fresh bits.
const CHOICES: [CoordIndexChoice; 4] = [
    CoordIndexChoice::Hashmap,
    CoordIndexChoice::Grid,
    CoordIndexChoice::Mphf,
    CoordIndexChoice::Auto,
];

fn scene(channels: usize, seed: i32) -> SparseTensor {
    let mut coords = std::collections::BTreeSet::new();
    for i in 0..400 {
        coords.insert(Coord::new(
            i % 2,
            (i * 7 + seed) % 23 - 11,
            ((i * 13) / 3) % 19 - 9,
            (i * 3) % 17 - 8,
        ));
    }
    let coords: Vec<Coord> = coords.into_iter().collect();
    let n = coords.len();
    SparseTensor::new(
        coords,
        Matrix::from_fn(n, channels, |r, c| ((r + 5 * c) % 11) as f32 * 0.2 - 1.0),
    )
    .expect("valid scene")
}

/// The three dataflow configurations of the engine: grouped
/// gather-matmul-scatter (TorchSparse), ungrouped per-offset baseline, and
/// fetch-on-demand (forced by an infinite threshold).
fn dataflow_configs() -> Vec<(&'static str, OptimizationConfig)> {
    let grouped = EnginePreset::TorchSparse.config();
    let separate = EnginePreset::BaselineFp32.config();
    let mut fod = EnginePreset::BaselineFp32.config();
    fod.fetch_on_demand_below = Some(usize::MAX);
    vec![("grouped", grouped), ("separate", separate), ("fetch-on-demand", fod)]
}

fn output_bits<M: Module>(
    cfg: OptimizationConfig,
    m: &M,
    x: &SparseTensor,
) -> (Vec<Coord>, Vec<u32>) {
    let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
    let y = engine.run(m, x).expect("run succeeds");
    let bits = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
    (y.coords().to_vec(), bits)
}

/// The acceptance sweep: 4 index choices x 3 dataflows x fused/unfused x
/// 1/8 threads, all bitwise identical within each dataflow. A model with
/// strided downsamples and a decoder exercises forward, downsample, and
/// transposed kernel maps — the CSR slice-view, the resort path, and the
/// MPHF query path all run.
#[test]
fn coord_index_choice_is_bitwise_invisible_across_dataflows_routes_threads() {
    let x = scene(4, 0);
    let m = MinkUNet::with_width(0.25, 4, 3, 43);
    for (dataflow, cfg) in dataflow_configs() {
        let mut reference: Option<(Vec<Coord>, Vec<u32>)> = None;
        for choice in CHOICES {
            for fused in [false, true] {
                for threads in THREADS {
                    let mut cfg = cfg.clone();
                    cfg.coord_index = choice;
                    cfg.fused_execution = fused;
                    cfg.threads = Some(threads);
                    let out = output_bits(cfg, &m, &x);
                    match &reference {
                        None => reference = Some(out),
                        Some(r) => assert_eq!(
                            r, &out,
                            "{dataflow} diverges with coord_index={choice:?} fused={fused} \
                             at {threads} threads"
                        ),
                    }
                }
            }
        }
    }
}

/// Precision paths route accumulation differently (FP16 re-quantizes
/// per-layer, INT8 runs the integer microkernel); the index must stay
/// invisible on each of them too.
#[test]
fn coord_index_choice_is_bitwise_invisible_across_precisions() {
    let x = scene(4, 3);
    let m = MinkUNet::with_width(0.25, 4, 3, 47);
    for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
        let mut reference: Option<(Vec<Coord>, Vec<u32>)> = None;
        for choice in CHOICES {
            let mut cfg = EnginePreset::TorchSparse.config();
            cfg.precision = precision;
            cfg.coord_index = choice;
            let out = output_bits(cfg, &m, &x);
            match &reference {
                None => reference = Some(out),
                Some(r) => {
                    assert_eq!(r, &out, "{precision:?} diverges with coord_index={choice:?}")
                }
            }
        }
    }
}

/// Compiled sessions resolve `Auto` to the MPHF index; a session compiled
/// under each *explicit* choice must still match the dynamic hashmap
/// reference bit for bit — freezing the plan changes when the index is
/// built, never what the features become.
#[test]
fn compiled_sessions_match_dynamic_bits_under_every_index() {
    let x = scene(4, 5);
    let m = MinkUNet::with_width(0.25, 4, 3, 53);

    let mut reference_cfg = EnginePreset::TorchSparse.config();
    reference_cfg.coord_index = CoordIndexChoice::Hashmap;
    let expected = output_bits(reference_cfg, &m, &x);

    for choice in CHOICES {
        let mut cfg = EnginePreset::TorchSparse.config();
        cfg.coord_index = choice;
        let mut session =
            Engine::with_config(cfg, DeviceProfile::rtx_2080ti()).compile(&m, &x).expect("compile");
        let y = session.execute(&x).expect("compiled execute");
        let got: (Vec<Coord>, Vec<u32>) =
            (y.coords().to_vec(), y.feats().as_slice().iter().map(|v| v.to_bits()).collect());
        assert_eq!(
            expected, got,
            "compiled session with coord_index={choice:?} must match dynamic hashmap bits"
        );
        assert!(session.stats().plan_bytes > 0, "frozen plans report a resident footprint");
    }
}
