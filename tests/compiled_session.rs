//! Compiled sessions must be indistinguishable from dynamic execution:
//! bitwise-identical outputs across every dataflow and precision, identical
//! fault-degradation behavior, and transparent re-planning when the input
//! geometry changes.

use torchsparse::coords::Coord;
use torchsparse::core::{
    CompiledSession, CoordIndexChoice, CoreError, Engine, EnginePreset, FaultSite, Module,
    Precision, SparseTensor, Tracer,
};
use torchsparse::gpusim::{DeviceProfile, Stage};
use torchsparse::models::{CenterPoint, MinkUNet, Spvcnn};
use torchsparse::tensor::Matrix;

/// A dense-ish blob so that four stride-2 downsamples keep points.
fn scene(channels: usize, shift: i32) -> SparseTensor {
    let mut coords = std::collections::BTreeSet::new();
    for i in 0..500 {
        coords.insert(Coord::new(0, (i * 7 + shift) % 24, ((i * 13) / 3) % 20, (i * 3) % 16));
    }
    let coords: Vec<Coord> = coords.into_iter().collect();
    let n = coords.len();
    SparseTensor::new(
        coords,
        Matrix::from_fn(n, channels, |r, c| ((r + 3 * c) % 9) as f32 * 0.25 - 1.0),
    )
    .expect("valid scene")
}

fn bits(t: &SparseTensor) -> Vec<u32> {
    t.feats().as_slice().iter().map(|v| v.to_bits()).collect()
}

fn engine(preset: EnginePreset, precision: Precision) -> Engine {
    let mut cfg = preset.config();
    cfg.precision = precision;
    Engine::with_config(cfg, DeviceProfile::rtx_2080ti())
}

fn assert_compiled_matches_dynamic<M: Module>(model: &M, x: &SparseTensor, label: &str) {
    for preset in
        [EnginePreset::BaselineFp32, EnginePreset::TorchSparse, EnginePreset::MinkowskiEngine]
    {
        for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            let mut dynamic = engine(preset, precision);
            let expected = dynamic.run(model, x).expect("dynamic run");
            let mut session = engine(preset, precision).compile(model, x).expect("compile");
            let got = session.execute(x).expect("compiled execute");
            assert_eq!(expected.coords(), got.coords(), "{label} {preset:?}/{precision:?}");
            assert_eq!(
                bits(&expected),
                bits(&got),
                "{label} {preset:?}/{precision:?}: compiled output must be bitwise identical"
            );
            assert!(
                session.last_latency() < dynamic.last_latency(),
                "{label} {preset:?}/{precision:?}: plan reuse must beat dynamic"
            );
        }
    }
}

#[test]
fn minkunet_bitwise_identical_across_dataflows_and_precisions() {
    let net = MinkUNet::with_width(0.25, 4, 3, 17);
    assert_compiled_matches_dynamic(&net, &scene(4, 0), "MinkUNet");
}

#[test]
fn spvcnn_voxel_branch_bitwise_identical_across_dataflows_and_precisions() {
    let net = Spvcnn::new(0.25, 4, 8, 0.1, 23);
    let branch = net.voxel_branch();
    assert_compiled_matches_dynamic(branch, &scene(net.hidden(), 0), "SPVCNN voxel branch");
}

#[test]
fn geometry_change_invalidates_plan_and_replans_correctly() {
    let net = MinkUNet::with_width(0.25, 4, 3, 29);
    let a = scene(4, 0);
    let b = scene(4, 5);
    assert_ne!(a.coords(), b.coords(), "scenes must differ geometrically");

    let mut session =
        engine(EnginePreset::TorchSparse, Precision::Fp16).compile(&net, &a).expect("compile");
    session.execute(&a).expect("hit");
    assert_eq!(
        session.last_timeline().stage(Stage::Mapping).as_f64(),
        0.0,
        "plan hit must not rebuild maps"
    );

    let y = session.execute(&b).expect("replan");
    let s = session.stats();
    assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
    assert!(s.plan_bytes > 0, "a frozen plan has a resident footprint");
    assert!(
        session.last_timeline().stage(Stage::Mapping).as_f64() > 0.0,
        "the invalidated frame pays mapping again"
    );

    let mut dynamic = engine(EnginePreset::TorchSparse, Precision::Fp16);
    let expected = dynamic.run(&net, &b).expect("dynamic on b");
    assert_eq!(bits(&expected), bits(&y), "replanned output must match dynamic");

    // Back to the original geometry: the stream's slot (holding `b`) is
    // invalidated, but the immutable base plan still matches `a`, so the
    // session re-attaches to it — a hit, not a rebuild (misses count
    // plan *builds* only). Then a plain hit.
    session.execute(&a).expect("re-attach to base plan");
    session.execute(&a).expect("hit again");
    let s = session.stats();
    assert_eq!((s.hits, s.misses, s.invalidations), (3, 2, 2));
}

#[test]
fn planning_faults_degrade_identically_to_dynamic() {
    // Mapping-path faults fire at plan time in a session and mid-forward in
    // a dynamic run; the fallback (hashmap rebuild) is exact either way.
    // The `TORCHSPARSE_COORD_INDEX` override wins over the `coord_index`
    // field pinned below; forcing any non-grid index means no grid build
    // ever runs, so the armed grid faults this test is about never fire.
    match std::env::var("TORCHSPARSE_COORD_INDEX").ok().as_deref() {
        None | Some("grid") => {}
        Some(_) => return,
    }
    let net = MinkUNet::with_width(0.25, 4, 3, 31);
    let x = scene(4, 0);

    let mut dynamic = Engine::new(EnginePreset::SpConv, DeviceProfile::rtx_2080ti());
    dynamic.context_mut().faults.arm_count(FaultSite::GridTableBuild, 4);
    dynamic.context_mut().faults.arm(FaultSite::KernelMapCache);
    let expected = dynamic.run(&net, &x).expect("degraded dynamic run");
    assert!(dynamic.degradation_report().count(FaultSite::GridTableBuild) >= 1);

    let mut clean_engine = Engine::new(EnginePreset::SpConv, DeviceProfile::rtx_2080ti());
    // Pin the legacy grid index: compiled sessions otherwise resolve
    // `Auto` to the MPHF index, which never attempts a grid build, so the
    // armed grid faults would have nothing to fire on at plan time.
    clean_engine.context_mut().config.coord_index = CoordIndexChoice::Grid;
    clean_engine.context_mut().faults.arm_count(FaultSite::GridTableBuild, 4);
    clean_engine.context_mut().faults.arm(FaultSite::KernelMapCache);
    let mut session = clean_engine.compile(&net, &x).expect("degraded compile");
    assert_eq!(
        dynamic.degradation_report().events(),
        session.planning_degradation().events(),
        "planning must take the same degradation decisions as dynamic"
    );

    let got = session.execute(&x).expect("execute after degraded planning");
    assert_eq!(bits(&expected), bits(&got), "degraded planning must stay exact");
    assert!(session.degradation_report().is_empty(), "no fault fires on the pure feature path");
}

#[test]
fn fp16_overflow_fault_degrades_identically_at_execute() {
    let net = MinkUNet::with_width(0.25, 4, 3, 37);
    let x = scene(4, 0);

    let mut dynamic = engine(EnginePreset::TorchSparse, Precision::Fp16);
    dynamic.context_mut().faults.arm(FaultSite::Fp16Overflow);
    let expected = dynamic.run(&net, &x).expect("dynamic with overflow");
    assert_eq!(dynamic.degradation_report().count(FaultSite::Fp16Overflow), 1);

    let mut session =
        engine(EnginePreset::TorchSparse, Precision::Fp16).compile(&net, &x).expect("compile");
    assert!(
        session.planning_degradation().is_empty(),
        "overflow is a feature-path fault; planning must not trip it"
    );
    session.engine_mut().context_mut().faults.arm(FaultSite::Fp16Overflow);
    let got = session.execute(&x).expect("execute with overflow");
    assert_eq!(session.degradation_report().count(FaultSite::Fp16Overflow), 1);
    assert_eq!(
        bits(&expected),
        bits(&got),
        "the FP32 re-run fallback must behave identically under a frozen plan"
    );
}

#[test]
fn centerpoint_is_untraceable_by_design() {
    // CenterPoint's detection head slices dense feature maps with
    // data-dependent shapes; it cannot be expressed in the layer-op IR.
    let net = CenterPoint::new(5, 3);
    let mut tracer = Tracer::new();
    let err = net.trace(&mut tracer).expect_err("must refuse to trace");
    assert!(matches!(err, CoreError::Untraceable { .. }));

    let x = scene(5, 0);
    let engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    assert!(matches!(engine.compile(&net, &x), Err(CoreError::Untraceable { .. })));
}

#[test]
fn compiled_session_profiles_match_dynamic_layer_for_layer() {
    let net = MinkUNet::with_width(0.25, 4, 3, 41);
    let x = scene(4, 0);

    let mut dynamic = engine(EnginePreset::TorchSparse, Precision::Fp16);
    dynamic.context_mut().profile_layers = true;
    dynamic.run(&net, &x).expect("dynamic run");
    let dyn_profiles: Vec<(String, usize)> =
        dynamic.context().layer_profiles.iter().map(|p| (p.name.clone(), p.input_points)).collect();

    let mut session: CompiledSession<'_> =
        engine(EnginePreset::TorchSparse, Precision::Fp16).compile(&net, &x).expect("compile");
    session.engine_mut().context_mut().profile_layers = true;
    session.execute(&x).expect("execute");
    let ses_profiles: Vec<(String, usize)> = session
        .engine()
        .context()
        .layer_profiles
        .iter()
        .map(|p| (p.name.clone(), p.input_points))
        .collect();
    assert_eq!(dyn_profiles, ses_profiles, "same layers, same order, same input sizes");
}
