//! Integration tests for quantized inference paths and pooling layers.

use proptest::prelude::*;
use torchsparse::coords::Coord;
use torchsparse::core::{Engine, EnginePreset, Precision, SparseMaxPool3d, SparseTensor};
use torchsparse::data::SyntheticDataset;
use torchsparse::gpusim::DeviceProfile;
use torchsparse::models::{devoxelize_trilinear, voxelize_features, MinkUNet, PointScene};
use torchsparse::tensor::Matrix;

#[test]
fn int8_engine_runs_with_bounded_error() {
    let input = SyntheticDataset::nuscenes(0.02, 4, 1).scene(1).expect("scene");
    let model = MinkUNet::with_width(0.25, 4, 6, 8);

    let mut fp32 = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_3090());
    let a = fp32.run(&model, &input).expect("fp32");

    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.precision = Precision::Int8;
    let mut int8 = Engine::with_config(cfg, DeviceProfile::rtx_3090());
    let b = int8.run(&model, &input).expect("int8");

    // INT8 is lossy but the network must stay in the same regime.
    let rel =
        a.feats().max_abs_diff(b.feats()).expect("shape") / a.feats().frobenius_norm().max(1e-9);
    assert!(rel < 0.25, "int8 relative deviation {rel} too large");
    // And it must be cheaper to run than FP32.
    assert!(int8.last_latency() < fp32.last_latency());
}

#[test]
fn strided_max_pool_equals_bruteforce() {
    // Compare the engine's pooling against a direct window-max computation.
    let coords: Vec<Coord> =
        (0..6).flat_map(|x| (0..4).map(move |y| Coord::new(0, x, y, 0))).collect();
    let n = coords.len();
    let feats = Matrix::from_fn(n, 2, |r, c| (r * 2 + c) as f32);
    let x = SparseTensor::new(coords.clone(), feats.clone()).expect("tensor");

    let pool = SparseMaxPool3d::new("p", 2, 2);
    let mut e = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
    let y = e.run(&pool, &x).expect("pool");

    for (k, out_coord) in y.coords().iter().enumerate() {
        for ch in 0..2 {
            // Brute force: max over inputs at 2*q + {0,1}^3.
            let mut best = f32::NEG_INFINITY;
            for dx in 0..2 {
                for dy in 0..2 {
                    for dz in 0..2 {
                        let probe = Coord::new(
                            0,
                            out_coord.x * 2 + dx,
                            out_coord.y * 2 + dy,
                            out_coord.z * 2 + dz,
                        );
                        if let Some(j) = coords.iter().position(|&c| c == probe) {
                            best = best.max(feats[(j, ch)]);
                        }
                    }
                }
            }
            assert_eq!(y.feats()[(k, ch)], best, "output {k} channel {ch}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Trilinear devoxelization is a partition of unity: interpolating the
    /// constant-one field gives one at every point that has any surrounding
    /// voxel.
    #[test]
    fn prop_devoxelize_partition_of_unity(
        raw_points in proptest::collection::vec((0.0f32..4.0, 0.0f32..4.0, 0.0f32..4.0), 5..60),
    ) {
        let n = raw_points.len();
        let positions: Vec<[f32; 3]> = raw_points.iter().map(|&(x, y, z)| [x, y, z]).collect();
        let scene = PointScene::new(positions, Matrix::filled(n, 3, 1.0)).expect("scene");
        let mut ctx = torchsparse::core::Context::new(
            EnginePreset::TorchSparse.config(),
            DeviceProfile::rtx_2080ti(),
        );
        let (voxels, _) = voxelize_features(&scene, 0.5, &mut ctx).expect("voxelize");
        let ones = voxels.with_feats(Matrix::filled(voxels.len(), 3, 1.0)).expect("ones");
        let out = devoxelize_trilinear(&scene, &ones, 0.5, &mut ctx).expect("devoxelize");
        for i in 0..n {
            // Every point's own voxel exists, so the weight mass is nonzero
            // and must renormalize to exactly one.
            for ch in 0..3 {
                prop_assert!((out[(i, ch)] - 1.0).abs() < 1e-5, "point {} got {}", i, out[(i, ch)]);
            }
        }
    }

    /// Mean pooling never exceeds max pooling, channelwise.
    #[test]
    fn prop_mean_pool_bounded_by_max_pool(
        sites in proptest::collection::vec((0i32..8, 0i32..8, 0i32..4), 4..40),
        seed in 0u64..100,
    ) {
        let mut dedup = sites.clone();
        dedup.sort_unstable();
        dedup.dedup();
        let coords: Vec<Coord> =
            dedup.iter().map(|&(x, y, z)| Coord::new(0, x, y, z)).collect();
        let n = coords.len();
        let feats = Matrix::from_fn(n, 2, |r, c| {
            (((r as u64 * 37 + c as u64 * 11 + seed) % 17) as f32) - 8.0
        });
        let x = SparseTensor::new(coords, feats).expect("tensor");
        let mut e1 = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
        let mut e2 = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
        let max = e1.run(&SparseMaxPool3d::new("m", 2, 2), &x).expect("max");
        let mean = e2.run(&SparseMaxPool3d::mean("a", 2, 2), &x).expect("mean");
        prop_assert_eq!(max.coords(), mean.coords());
        for i in 0..max.len() {
            for ch in 0..2 {
                prop_assert!(mean.feats()[(i, ch)] <= max.feats()[(i, ch)] + 1e-6);
            }
        }
    }
}
