//! Integration test: the sparse convolution engine agrees exactly with the
//! dense volumetric reference at every nonzero site — across engine presets
//! and random sparsity patterns (property-based).

use proptest::prelude::*;
use torchsparse::coords::offsets::kernel_offsets;
use torchsparse::coords::Coord;
use torchsparse::core::{Engine, EnginePreset, SparseConv3d, SparseTensor};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::tensor::dense::{submanifold_conv3d_reference, ConvWeights, DenseVolume};
use torchsparse::tensor::Matrix;

/// Builds matching sparse and dense representations of the same volume.
fn build_pair(
    sites: &[(usize, usize, usize)],
    dims: [usize; 3],
    c: usize,
) -> (SparseTensor, DenseVolume) {
    let mut dedup: Vec<(usize, usize, usize)> = sites.to_vec();
    dedup.sort_unstable();
    dedup.dedup();
    let coords: Vec<Coord> =
        dedup.iter().map(|&(x, y, z)| Coord::new(0, x as i32, y as i32, z as i32)).collect();
    let feats = Matrix::from_fn(coords.len(), c, |r, ch| {
        // Nonzero deterministic features.
        ((r * 7 + ch * 3) % 13) as f32 * 0.25 + 0.1
    });
    let mut dense = DenseVolume::zeros(dims, c);
    for (i, &(x, y, z)) in dedup.iter().enumerate() {
        dense.set([x, y, z], feats.row(i));
    }
    (SparseTensor::new(coords, feats).expect("valid tensor"), dense)
}

fn weights_for(conv: &SparseConv3d, c: usize) -> ConvWeights {
    ConvWeights::new(3, c, c, conv.weights().to_vec()).expect("consistent weights")
}

#[test]
fn sparse_matches_dense_oracle_fixed_scene() {
    let sites: Vec<(usize, usize, usize)> =
        (0..60).map(|i| ((i * 7) % 6 + 1, (i * 5) % 6 + 1, (i * 11) % 6 + 1)).collect();
    let c = 5;
    let (sparse, dense) = build_pair(&sites, [8, 8, 8], c);
    let conv = SparseConv3d::with_random_weights("c", c, c, 3, 1, 77);

    let mut engine = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
    let out = engine.run(&conv, &sparse).expect("sparse conv");

    let offsets = kernel_offsets(3).expect("kernel offsets");
    let expect = submanifold_conv3d_reference(&dense, &weights_for(&conv, c), &offsets);

    for (i, coord) in out.coords().iter().enumerate() {
        let d = expect.at([coord.x as usize, coord.y as usize, coord.z as usize]);
        for (ch, &v) in out.feats().row(i).iter().enumerate() {
            assert!(
                (v - d[ch]).abs() < 1e-3,
                "mismatch at {coord} channel {ch}: sparse {v} dense {}",
                d[ch]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn prop_sparse_matches_dense_oracle(
        sites in proptest::collection::vec((1usize..7, 1usize..7, 1usize..7), 5..50),
        seed in 0u64..500,
    ) {
        let c = 3;
        let (sparse, dense) = build_pair(&sites, [8, 8, 8], c);
        let conv = SparseConv3d::with_random_weights("c", c, c, 3, 1, seed);

        // Use the fully optimized engine (FP32 to keep exactness).
        let mut cfg = EnginePreset::TorchSparse.config();
        cfg.precision = torchsparse::core::Precision::Fp32;
        let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_3090());
        let out = engine.run(&conv, &sparse).expect("sparse conv");

        let offsets = kernel_offsets(3).expect("kernel offsets");
        let expect = submanifold_conv3d_reference(&dense, &weights_for(&conv, c), &offsets);

        for (i, coord) in out.coords().iter().enumerate() {
            let d = expect.at([coord.x as usize, coord.y as usize, coord.z as usize]);
            for (ch, &v) in out.feats().row(i).iter().enumerate() {
                prop_assert!(
                    (v - d[ch]).abs() < 1e-3,
                    "mismatch at {} channel {}: sparse {} dense {}", coord, ch, v, d[ch]
                );
            }
        }
    }
}
