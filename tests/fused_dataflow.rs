//! The fused gather–GEMM–scatter executor must be invisible in the
//! results: for every dataflow, storage precision, SIMD policy, and worker
//! count, running with `fused_execution` on is bitwise identical to the
//! materialized gather/psum buffer path — while taking no movement
//! workspace buffers at all.

use torchsparse::coords::Coord;
use torchsparse::core::{
    BatchNorm, Engine, EnginePreset, Module, OptimizationConfig, Precision, ReLU, Sequential,
    SimdPolicy, SparseConv3d, SparseTensor,
};
use torchsparse::gpusim::DeviceProfile;
use torchsparse::tensor::Matrix;

/// Worker counts every configuration is checked at; `1` is the exact
/// serial engine the others must match bit for bit.
const THREADS: [usize; 3] = [1, 2, 8];

fn tensor_from(sites: &[(i32, i32, i32)], c: usize, seed: u64) -> SparseTensor {
    let mut dedup: Vec<(i32, i32, i32)> = sites.to_vec();
    dedup.sort_unstable();
    dedup.dedup();
    let coords: Vec<Coord> = dedup.iter().map(|&(x, y, z)| Coord::new(0, x, y, z)).collect();
    let feats = Matrix::from_fn(coords.len(), c, |r, ch| {
        let v = (r as u64).wrapping_mul(0x9E37_79B9).wrapping_add(ch as u64).wrapping_mul(seed | 1);
        ((v % 1000) as f32 - 500.0) / 250.0
    });
    SparseTensor::new(coords, feats).expect("valid tensor")
}

/// A small net covering submanifold, strided, and channel-changing convs.
fn model(c: usize, seed: u64) -> Sequential {
    Sequential::new("net")
        .push(SparseConv3d::with_random_weights("conv1", c, 8, 3, 1, seed))
        .push(BatchNorm::identity("bn", 8))
        .push(ReLU::new("act"))
        .push(SparseConv3d::with_random_weights("down", 8, 8, 2, 2, seed + 1))
        .push(SparseConv3d::with_random_weights("conv2", 8, c, 3, 1, seed + 2))
}

/// The three dataflow configurations of the engine: grouped
/// gather-matmul-scatter (TorchSparse), ungrouped per-offset baseline, and
/// fetch-on-demand (forced by an infinite threshold).
fn dataflow_configs() -> Vec<(&'static str, OptimizationConfig)> {
    let grouped = EnginePreset::TorchSparse.config();
    let separate = EnginePreset::BaselineFp32.config();
    let mut fod = EnginePreset::BaselineFp32.config();
    fod.fetch_on_demand_below = Some(usize::MAX);
    vec![("grouped", grouped), ("separate", separate), ("fetch-on-demand", fod)]
}

fn output_bits<M: Module>(
    mut cfg: OptimizationConfig,
    threads: usize,
    m: &M,
    x: &SparseTensor,
) -> (Vec<Coord>, Vec<u32>) {
    cfg.threads = Some(threads);
    let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
    let y = engine.run(m, x).expect("run succeeds");
    let bits = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
    (y.coords().to_vec(), bits)
}

/// Whether the `TORCHSPARSE_FUSED` environment override is forcing the
/// unfused path (the verify recipe's A/B suite does this), which makes
/// workspace-avoidance assertions meaningless.
fn forced_unfused() -> bool {
    std::env::var("TORCHSPARSE_FUSED")
        .is_ok_and(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
}

/// 3 dataflows x 3 precisions x 3 SIMD policies: the fused and unfused
/// executors agree bit for bit at 1, 2, and 8 worker threads.
#[test]
fn fused_bitwise_identical_across_dataflows_precisions_kernels_threads() {
    let sites: Vec<(i32, i32, i32)> =
        (0..300).map(|i| ((i * 7) % 21 - 10, (i * 13) % 17 - 8, (i * 5) % 15 - 7)).collect();
    let x = tensor_from(&sites, 4, 41);
    let m = model(4, 41);
    for (dataflow, cfg) in dataflow_configs() {
        for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            for policy in [SimdPolicy::Scalar, SimdPolicy::Portable, SimdPolicy::Auto] {
                let mut reference: Option<(Vec<Coord>, Vec<u32>)> = None;
                for fused in [false, true] {
                    for threads in THREADS {
                        let mut cfg = cfg.clone();
                        cfg.precision = precision;
                        cfg.simd = policy;
                        cfg.fused_execution = fused;
                        let out = output_bits(cfg, threads, &m, &x);
                        match &reference {
                            None => reference = Some(out),
                            Some(r) => assert_eq!(
                                r, &out,
                                "{dataflow} @ {precision:?}/{policy:?} diverges with \
                                 fused={fused} at {threads} threads"
                            ),
                        }
                    }
                }
            }
        }
    }
}

/// Fused forward passes never touch the workspace arena: where the
/// buffered path takes gather/psum (and fetch-on-demand scratch) buffers
/// every layer, the fused executor streams map rows straight through
/// register tiles — fresh allocations *and* recycled takes both stay at
/// zero, first pass and steady state alike. Scatter metadata is equally
/// plan-time-only: the producer ordering lives in the frozen `FusedOrder`,
/// so no engine pass may fall back to an on-the-spot rebuild.
#[test]
fn fused_passes_take_no_movement_workspaces() {
    if forced_unfused() {
        return; // this suite run is explicitly exercising the unfused path
    }
    let sites: Vec<(i32, i32, i32)> =
        (0..200).map(|i| ((i * 3) % 13 - 6, (i * 11) % 15 - 7, (i * 7) % 11 - 5)).collect();
    let x = tensor_from(&sites, 4, 7);
    let m = model(4, 7);
    let fallbacks_before = torchsparse::core::dataflow::scatter_fallback_builds();
    for (dataflow, cfg) in dataflow_configs() {
        let mut cfg = cfg.clone();
        cfg.fused_execution = true;
        let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
        engine.run(&m, &x).expect("first pass");
        engine.run(&m, &x).expect("second pass");
        let ws = &engine.context().runtime.workspaces;
        assert_eq!(
            ws.fresh_allocations, 0,
            "{dataflow}: fused passes must not allocate gather/psum buffers"
        );
        assert_eq!(
            ws.total_takes(),
            0,
            "{dataflow}: fused passes must not take workspace buffers at all"
        );
    }
    assert_eq!(
        torchsparse::core::dataflow::scatter_fallback_builds(),
        fallbacks_before,
        "engine passes must reuse plan-time scatter metadata, not rebuild it per call"
    );
}

/// The unfused scatter also runs entirely on plan-time metadata: a parallel
/// buffered pass (which before this ordering existed rebuilt per-output
/// producer lists every call) triggers zero fallback builds.
#[test]
fn unfused_scatter_reuses_plan_time_metadata() {
    let sites: Vec<(i32, i32, i32)> =
        (0..200).map(|i| ((i * 5) % 13 - 6, (i * 9) % 15 - 7, (i * 7) % 11 - 5)).collect();
    let x = tensor_from(&sites, 4, 11);
    let m = model(4, 11);
    let fallbacks_before = torchsparse::core::dataflow::scatter_fallback_builds();
    for (_, cfg) in dataflow_configs() {
        let mut cfg = cfg.clone();
        cfg.fused_execution = false;
        cfg.threads = Some(4);
        let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
        engine.run(&m, &x).expect("first pass");
        engine.run(&m, &x).expect("second pass");
    }
    assert_eq!(
        torchsparse::core::dataflow::scatter_fallback_builds(),
        fallbacks_before,
        "unfused scatter must stream the frozen FusedOrder, not rebuild producer lists"
    );
}
