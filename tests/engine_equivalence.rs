//! Cross-crate integration: every engine preset computes the same FP32
//! result on real (synthetic-LiDAR) data, end to end through voxelization,
//! mapping, and both dataflows.

use torchsparse::core::{Engine, EnginePreset, Module, Precision};
use torchsparse::data::SyntheticDataset;
use torchsparse::gpusim::DeviceProfile;
use torchsparse::models::{CenterPoint, MinkUNet};

fn scene() -> torchsparse::core::SparseTensor {
    SyntheticDataset::semantic_kitti(0.02, 4).scene(5).expect("scene generation")
}

#[test]
fn all_fp32_presets_agree_on_minkunet() {
    let input = scene();
    let model = MinkUNet::with_width(0.25, 4, 7, 3);
    let mut reference: Option<torchsparse::tensor::Matrix> = None;
    for preset in [EnginePreset::BaselineFp32, EnginePreset::MinkowskiEngine, EnginePreset::SpConv]
    {
        let mut engine = Engine::new(preset, DeviceProfile::rtx_2080ti());
        let out = engine.run(&model, &input).expect("inference");
        match &reference {
            None => reference = Some(out.feats().clone()),
            Some(r) => {
                let diff = out.feats().max_abs_diff(r).expect("same shape");
                assert!(diff < 1e-3, "{preset:?} differs from baseline by {diff}");
            }
        }
    }
}

#[test]
fn torchsparse_fp32_matches_baseline_on_centerpoint() {
    let input = SyntheticDataset::waymo(0.02, 5, 1).scene(2).expect("scene");
    let model = CenterPoint::with_widths(5, &[8, 16], 1);
    let mut baseline = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::gtx_1080ti());
    let a = baseline.run(&model, &input).expect("baseline run");
    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.precision = Precision::Fp32;
    let mut optimized = Engine::with_config(cfg, DeviceProfile::gtx_1080ti());
    let b = optimized.run(&model, &input).expect("optimized run");
    assert_eq!(a.coords(), b.coords());
    let diff = a.feats().max_abs_diff(b.feats()).expect("same shape");
    assert!(diff < 1e-3, "optimized differs by {diff}");
}

#[test]
fn fp16_engine_is_close_to_fp32() {
    let input = scene();
    let model = MinkUNet::with_width(0.25, 4, 7, 3);
    let mut fp32 = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_3090());
    let a = fp32.run(&model, &input).expect("fp32 run");
    let mut fp16 = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
    let b = fp16.run(&model, &input).expect("fp16 run");
    let rel = a.feats().max_abs_diff(b.feats()).expect("same shape")
        / a.feats().frobenius_norm().max(1e-9);
    assert!(rel < 0.02, "fp16 relative deviation {rel}");
}

#[test]
fn torchsparse_is_fastest_preset_everywhere() {
    // The paper's headline: TorchSparse wins end-to-end on every model and
    // device. Verified here on a segmentation and a detection model across
    // all three simulated GPUs.
    let seg_input = scene();
    let seg = MinkUNet::with_width(0.25, 4, 7, 3);
    let det_input = SyntheticDataset::waymo(0.02, 5, 1).scene(1).expect("scene");
    let det = CenterPoint::with_widths(5, &[8, 16], 2);

    for device in DeviceProfile::evaluation_devices() {
        for (input, model) in [(&seg_input, &seg as &dyn Module), (&det_input, &det as &dyn Module)]
        {
            let mut ts = Engine::new(EnginePreset::TorchSparse, device.clone());
            ts.context_mut().simulate_only = true;
            ts.run(model, input).expect("torchsparse run");
            let ts_latency = ts.last_latency();
            for preset in [
                EnginePreset::BaselineFp32,
                EnginePreset::MinkowskiEngine,
                EnginePreset::SpConv,
                EnginePreset::SpConvFp16,
            ] {
                let mut other = Engine::new(preset, device.clone());
                other.context_mut().simulate_only = true;
                other.run(model, input).expect("competitor run");
                assert!(
                    other.last_latency() > ts_latency,
                    "{} should lose to TorchSparse on {} ({} vs {})",
                    preset.name(),
                    device.name,
                    other.last_latency(),
                    ts_latency
                );
            }
        }
    }
}

#[test]
fn determinism_across_runs_and_engines() {
    let input = scene();
    let model = MinkUNet::with_width(0.25, 4, 7, 9);
    let mut e1 = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    let a = e1.run(&model, &input).expect("first run");
    let lat_a = e1.last_latency();
    let mut e2 = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    let b = e2.run(&model, &input).expect("second run");
    assert_eq!(a, b, "outputs must be bit-identical");
    assert_eq!(lat_a, e2.last_latency(), "latencies must be bit-identical");
}
