//! Service configuration and the deterministic backoff schedule.

use std::time::Duration;
use torchsparse_core::{FaultSite, ValidationConfig, ValidationPolicy};

/// Configuration of one serving service: admission budgets, queue bounds,
/// deadlines, retry policy, and (for chaos testing) per-stream fault
/// injection.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bounded depth of each stream's request queue. A submit against a
    /// full queue is shed with [`ServeError::QueueFull`]
    /// (crate::ServeError::QueueFull) instead of queuing unboundedly.
    pub queue_capacity: usize,
    /// Per-frame admission checks, reusing the validation layer's
    /// [`ValidationConfig`]. The default uses [`ValidationPolicy::Reject`]
    /// with no point/extent bounds — set `max_points` /
    /// `max_grid_cells` to enforce real budgets. Under
    /// [`ValidationPolicy::Sanitize`] a repairable frame is admitted in
    /// its sanitized form.
    pub admission: ValidationConfig,
    /// Service-wide budget on total in-flight points across all stream
    /// queues; a frame that would exceed it is shed with a typed
    /// [`CoreError::BudgetExceeded`](torchsparse_core::CoreError::BudgetExceeded).
    /// `None` = unlimited.
    pub service_point_budget: Option<usize>,
    /// Per-request execution deadline, installed on the stream's context
    /// before each attempt and checked at stage boundaries. `None` = no
    /// deadline.
    pub deadline: Option<Duration>,
    /// Maximum retries after a transient failure (so a frame runs at most
    /// `1 + max_retries` times).
    pub max_retries: u32,
    /// Seed of the deterministic retry backoff schedule ([`backoff_us`]).
    pub retry_seed: u64,
    /// Base backoff before the first retry, microseconds; doubles per
    /// attempt, plus seeded jitter below one base unit.
    pub base_backoff_us: u64,
    /// Probabilistic fault injection applied to every stream's injector
    /// (chaos testing): each `(site, probability)` pair is installed via
    /// [`FaultInjector::with_probability`]
    /// (torchsparse_core::FaultInjector::with_probability). Streams are
    /// seeded independently from [`ServiceConfig::fault_seed`], so one
    /// stream's fault schedule never depends on another's traffic.
    pub faults: Vec<(FaultSite, f64)>,
    /// Base seed for per-stream fault injection; stream index and rebuild
    /// generation are mixed in so every stream (and every rebuilt
    /// incarnation) draws an independent, reproducible schedule.
    pub fault_seed: u64,
    /// Which streams [`ServiceConfig::faults`] applies to; `None` = all.
    /// Lets isolation tests fault one stream while proving its neighbors
    /// stay bitwise clean.
    pub fault_streams: Option<Vec<usize>>,
    /// Whether successful completions keep their output tensors. Bitwise
    /// verification needs them; throughput benchmarks at large stream
    /// counts turn this off to bound memory.
    pub keep_outputs: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            queue_capacity: 8,
            admission: ValidationConfig {
                policy: ValidationPolicy::Reject,
                max_points: None,
                max_grid_cells: u64::MAX,
            },
            service_point_budget: None,
            deadline: None,
            max_retries: 2,
            retry_seed: 0,
            base_backoff_us: 50,
            faults: Vec::new(),
            fault_seed: 0,
            fault_streams: None,
            keep_outputs: true,
        }
    }
}

/// splitmix64: the same scramble the fault injector and the synthetic
/// data generators use, so seeds 0/1/2… give unrelated streams.
pub(crate) fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed with per-stream coordinates into an independent
/// stream seed.
pub(crate) fn mix_seed(base: u64, stream: u64, generation: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_add(0x5397_9A1F)) ^ generation.rotate_left(32))
}

/// The deterministic retry backoff: exponential in `attempt` (doubling
/// from `base_us`, capped at 10 doublings) plus seeded jitter below one
/// base unit. A pure function of its arguments — no wall clock, no global
/// state — so a replay with the same seed sleeps the exact same schedule.
pub fn backoff_us(seed: u64, stream: u64, frame: u64, attempt: u32, base_us: u64) -> u64 {
    let base = base_us.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(10) as u64);
    let jitter = splitmix64(
        seed ^ stream.rotate_left(17) ^ frame.rotate_left(31) ^ u64::from(attempt).rotate_left(7),
    ) % base;
    exp.saturating_add(jitter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_permissive_but_bounded() {
        let cfg = ServiceConfig::default();
        assert!(cfg.queue_capacity > 0, "queues must be bounded but nonzero");
        assert_eq!(cfg.admission.policy, ValidationPolicy::Reject);
        assert!(cfg.deadline.is_none());
        assert!(cfg.faults.is_empty());
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let schedule =
            |seed| -> Vec<u64> { (0..4).map(|a| backoff_us(seed, 3, 17, a, 50)).collect() };
        assert_eq!(schedule(9), schedule(9), "same seed must replay exactly");
        assert_ne!(schedule(9), schedule(10));
        let s = schedule(9);
        for (a, pair) in s.windows(2).enumerate() {
            assert!(pair[1] > pair[0], "backoff must grow: attempt {a}: {s:?}");
        }
        // Exponential base with jitter strictly below one base unit.
        assert!(s[0] >= 50 && s[0] < 100, "{s:?}");
        assert!(s[3] >= 400 && s[3] < 450, "{s:?}");
    }

    #[test]
    fn backoff_caps_exponent_and_survives_extremes() {
        let b = backoff_us(0, 0, 0, u32::MAX, u64::MAX);
        assert_eq!(b, u64::MAX, "saturates instead of overflowing");
        assert!(backoff_us(1, 2, 3, 0, 0) < 2, "zero base degenerates to jitter < 1");
    }

    #[test]
    fn stream_seeds_are_independent() {
        let a = mix_seed(7, 0, 0);
        let b = mix_seed(7, 1, 0);
        let c = mix_seed(7, 0, 1);
        assert_ne!(a, b, "streams must draw unrelated schedules");
        assert_ne!(a, c, "a rebuilt stream must draw a fresh schedule");
    }
}
