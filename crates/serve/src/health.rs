//! Service- and stream-level health reporting.

use crate::error::ServeError;
use std::fmt;
use std::time::Duration;
use torchsparse_core::{DegradationReport, SparseTensor};

/// One frame's terminal record: what happened, after how many attempts,
/// and how long it took from dequeue to completion.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The stream that served the frame.
    pub stream: usize,
    /// Caller-assigned frame id (unique per stream).
    pub frame: u64,
    /// How many times the frame ran (`> 1` means retried).
    pub attempts: u32,
    /// Wall-clock submit-to-completion latency (queue wait + execution +
    /// retries).
    pub latency: Duration,
    /// The output on success (`None` when
    /// [`ServiceConfig::keep_outputs`](crate::ServiceConfig::keep_outputs)
    /// is off), or the typed failure.
    pub result: Result<Option<SparseTensor>, ServeError>,
}

/// One stream's contribution to a [`HealthReport`] window.
#[derive(Debug, Clone)]
pub struct StreamHealth {
    /// Stream index.
    pub stream: usize,
    /// Frames completed successfully.
    pub completed: u64,
    /// Frames that failed with a typed error (deadline overruns after
    /// retries, plan/layer errors).
    pub failed: u64,
    /// Panics contained on this stream (each one quarantined and rebuilt
    /// the stream).
    pub quarantined: u64,
    /// This stream's degradation window, taken with
    /// [`DegradationReport::snapshot`] at service shutdown — a per-window
    /// delta, not a process-lifetime counter.
    pub degradation: DegradationReport,
    /// Resident bytes of the frozen plan in this stream's slot at window
    /// close (`PlanCacheStats::plan_bytes`): the shared compile-time plan
    /// for streams that rode it, or the stream's private re-plan.
    pub plan_bytes: u64,
    /// Geometry misses this stream re-planned from scratch
    /// (`PlanCacheStats::full_replans`).
    pub full_replans: u64,
    /// Geometry misses this stream served by patching the previous frozen
    /// plan in place (`PlanCacheStats::delta_patches`).
    pub delta_patches: u64,
    /// Delta re-plans attempted but abandoned — churn above the configured
    /// threshold or an unpatchable structure — falling back to a full
    /// re-plan (`PlanCacheStats::delta_fallbacks`).
    pub delta_fallbacks: u64,
}

/// Service-wide health counters plus the per-stream rollup.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Frames accepted past admission control into a stream queue.
    pub admitted: u64,
    /// Frames shed by load control (full queue or service point budget).
    pub shed: u64,
    /// Frames rejected by per-frame admission validation.
    pub rejected: u64,
    /// Frames completed successfully.
    pub completed: u64,
    /// Frames that terminally failed with a typed error.
    pub failed: u64,
    /// Retry attempts across all frames (not frames-with-retries).
    pub retried: u64,
    /// Requests whose panic was contained, quarantining their stream.
    pub quarantined: u64,
    /// Stream states rebuilt from the shared plan after quarantine.
    pub rebuilt: u64,
    /// Attempts that exceeded their deadline budget (counted per attempt;
    /// a frame that misses twice and then succeeds contributes two).
    pub deadline_missed: u64,
    /// High-water mark of any single stream queue's depth.
    pub max_queue_depth: usize,
    /// Union of every stream's degradation window, merged by
    /// `(site, cause)`.
    pub degradation: DegradationReport,
    /// Total resident plan bytes across every stream's slot. Streams
    /// sharing the compile-time plan each count their view (the number a
    /// per-stream memory budget sees), so this is an upper bound on
    /// process-level plan memory.
    pub plan_bytes: u64,
    /// From-scratch re-plans across every stream (sum of
    /// [`StreamHealth::full_replans`]).
    pub full_replans: u64,
    /// In-place delta plan patches across every stream (sum of
    /// [`StreamHealth::delta_patches`]).
    pub delta_patches: u64,
    /// Abandoned delta attempts that fell back to full re-plans across
    /// every stream (sum of [`StreamHealth::delta_fallbacks`]).
    pub delta_fallbacks: u64,
    /// Layers whose execution policy was selected by the compile-time
    /// autotuner (zero when autotuning was disabled at compile time).
    pub tuned_layers: usize,
    /// Wall-clock candidate measurements the compile-time policy search
    /// performed. A replica warm-started from the tuning database reports
    /// zero.
    pub candidates_measured: usize,
    /// Layers whose policy came straight from the on-disk tuning database
    /// with no search.
    pub warm_started: usize,
    /// Whether the policy search ran degraded (unreadable or stale tuning
    /// database, or an injected tuning fault) — the service still runs,
    /// on freshly searched or default policies.
    pub autotune_degraded: bool,
    /// Per-stream health, indexed by stream.
    pub streams: Vec<StreamHealth>,
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admitted {} | shed {} | rejected {} | completed {} | failed {} | retried {} | \
             quarantined {} | rebuilt {} | deadline-missed {} | max-queue-depth {} | \
             plan-bytes {}",
            self.admitted,
            self.shed,
            self.rejected,
            self.completed,
            self.failed,
            self.retried,
            self.quarantined,
            self.rebuilt,
            self.deadline_missed,
            self.max_queue_depth,
            self.plan_bytes,
        )?;
        if self.full_replans + self.delta_patches + self.delta_fallbacks > 0 {
            write!(
                f,
                " | replans: full {} delta-patched {} delta-fallback {}",
                self.full_replans, self.delta_patches, self.delta_fallbacks,
            )?;
        }
        if self.tuned_layers > 0 {
            write!(
                f,
                " | tuned-layers {} (measured {}, warm-started {})",
                self.tuned_layers, self.candidates_measured, self.warm_started,
            )?;
        }
        if self.autotune_degraded {
            write!(f, " | autotune-degraded")?;
        }
        if !self.degradation.is_empty() {
            write!(f, " | degradation: {}", self.degradation)?;
        }
        Ok(())
    }
}

/// Everything [`serve`](crate::serve) returns: the health window plus
/// every frame's terminal record (in completion order per stream).
#[derive(Debug, Clone, Default)]
pub struct ServiceOutcome {
    /// The service-level health window for this `serve` call.
    pub health: HealthReport,
    /// Terminal record of every executed frame. Frames rejected or shed
    /// at submit time are *not* here — their error returned synchronously
    /// from `submit` — but they are counted in [`HealthReport`].
    pub completions: Vec<Completion>,
}

impl ServiceOutcome {
    /// The completions of one stream, in execution order.
    pub fn stream_completions(&self, stream: usize) -> Vec<&Completion> {
        self.completions.iter().filter(|c| c.stream == stream).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_core::FaultSite;

    #[test]
    fn health_display_includes_degradation_when_present() {
        let mut h = HealthReport { admitted: 3, completed: 2, ..HealthReport::default() };
        let plain = h.to_string();
        assert!(plain.contains("admitted 3"), "{plain}");
        assert!(!plain.contains("degradation:"), "{plain}");
        h.degradation.record(FaultSite::WorkerPanic, "contained");
        let with = h.to_string();
        assert!(with.contains("worker-panic"), "{with}");
    }

    #[test]
    fn stream_completions_filters_by_stream() {
        let mk = |stream, frame| Completion {
            stream,
            frame,
            attempts: 1,
            latency: Duration::ZERO,
            result: Ok(None),
        };
        let outcome = ServiceOutcome {
            health: HealthReport::default(),
            completions: vec![mk(0, 0), mk(1, 0), mk(0, 1)],
        };
        let s0 = outcome.stream_completions(0);
        assert_eq!(s0.len(), 2);
        assert_eq!(s0[1].frame, 1);
        assert_eq!(outcome.stream_completions(2).len(), 0);
    }
}
