//! Fault-isolated multi-stream serving over one compiled model.
//!
//! The engine's single-forward path (PRs 1-5) makes one stream fast; this
//! crate makes N streams *safe*. [`serve`] runs one worker thread per
//! LiDAR stream against a shared [`CompiledModel`]
//! (torchsparse_core::CompiledModel) — the frozen, `Sync` half of a
//! compiled session — while each worker owns a private
//! [`StreamState`](torchsparse_core::StreamState) (workspace arena,
//! degradation report, plan slot). Four robustness layers stack on top:
//!
//! - **Admission control and load shedding** ([`ServiceConfig::admission`],
//!   [`ServiceConfig::queue_capacity`],
//!   [`ServiceConfig::service_point_budget`]): over-budget frames are
//!   rejected with the same typed [`CoreError`]s the validation layer
//!   uses, and each stream's queue is bounded — excess load is shed at
//!   submit time instead of growing latency unboundedly.
//! - **Per-request deadlines** ([`ServiceConfig::deadline`]): installed on
//!   the stream's [`Context`](torchsparse_core::Context) before each
//!   frame and checked at stage boundaries (mapping /
//!   gather-GEMM-scatter / epilogue), surfacing as typed
//!   [`CoreError::DeadlineExceeded`] instead of hanging the stream.
//! - **Panic quarantine**: every request runs inside a `catch_unwind`
//!   boundary. A poisoned request quarantines only its own stream; the
//!   supervisor rebuilds that stream's state from the shared plan
//!   ([`CompiledModel::new_stream`](torchsparse_core::CompiledModel::new_stream))
//!   while every other stream keeps serving untouched.
//! - **Bounded deterministic retry** ([`ServiceConfig::max_retries`],
//!   [`backoff_us`]): transient failures (deadline overruns — see
//!   [`FaultSite::is_transient`](torchsparse_core::FaultSite::is_transient))
//!   are retried with a backoff schedule that is a pure function of
//!   `(seed, stream, frame, attempt)`, so tests replay exactly.
//!   Permanent failures (validation rejects) fail fast.
//!
//! Everything observable rolls up into a [`HealthReport`]:
//! admitted/shed/retried/quarantined/rebuilt/deadline-missed counters plus
//! a per-stream [`DegradationReport`](torchsparse_core::DegradationReport)
//! window (consumed via `DegradationReport::snapshot`).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use torchsparse_core::{Engine, EnginePreset, ReLU, Sequential, SparseConv3d, SparseTensor};
//! use torchsparse_coords::Coord;
//! use torchsparse_gpusim::DeviceProfile;
//! use torchsparse_serve::{serve, ServiceConfig};
//! use torchsparse_tensor::Matrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = Sequential::new("net")
//!     .push(SparseConv3d::with_random_weights("conv", 2, 4, 3, 1, 7))
//!     .push(ReLU::new("act"));
//! let frame = Arc::new(SparseTensor::new(
//!     vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)],
//!     Matrix::filled(2, 2, 1.0),
//! )?);
//! let engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
//! let session = engine.compile(&model, &frame)?;
//! let (shared, _) = session.into_parts();
//!
//! let (_, outcome) = serve(&shared, 2, &ServiceConfig::default(), |svc| {
//!     for stream in 0..2 {
//!         svc.submit(stream, 0, frame.clone()).unwrap();
//!     }
//! })?;
//! assert_eq!(outcome.health.admitted, 2);
//! assert_eq!(outcome.health.completed, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod config;
mod error;
mod health;
mod service;

pub use config::{backoff_us, ServiceConfig};
pub use error::ServeError;
pub use health::{Completion, HealthReport, ServiceOutcome, StreamHealth};
pub use service::{serve, ServiceHandle};
