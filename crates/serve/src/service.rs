//! The serving loop: per-stream workers, admission, quarantine, retry.

use crate::config::{backoff_us, mix_seed, ServiceConfig};
use crate::error::ServeError;
use crate::health::{Completion, HealthReport, ServiceOutcome, StreamHealth};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use torchsparse_core::{
    CompiledModel, CoreError, Deadline, DegradationReport, FaultInjector, FaultSite, SparseTensor,
    StreamState,
};

/// Locks a mutex, recovering the guard if a panicking thread poisoned it —
/// the serving layer's own invariant is that panics never propagate, so a
/// poisoned lock only means a request died mid-update of bookkeeping.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Error-level retry taxonomy, complementing the site-level
/// [`FaultSite::is_transient`]: the engine already self-heals site-level
/// transients (kernel-map invalidation rebuilds, FP16 overflow re-runs in
/// FP32) inside a single forward, so the only transient failure that
/// surfaces as a typed error is a deadline overrun. Validation rejects and
/// plan invariants deterministically fail again and are never retried.
pub(crate) fn is_transient_error(e: &CoreError) -> bool {
    matches!(e, CoreError::DeadlineExceeded { .. })
}

struct Request {
    frame: u64,
    tensor: Arc<SparseTensor>,
    submitted: Instant,
}

#[derive(Default)]
struct QueueInner {
    queue: VecDeque<Request>,
    closed: bool,
}

struct StreamQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
}

impl StreamQueue {
    fn new() -> StreamQueue {
        StreamQueue { inner: Mutex::new(QueueInner::default()), cv: Condvar::new() }
    }

    /// Blocks for the next request. Already-queued requests drain even
    /// after close; `None` means closed-and-empty.
    fn pop(&self) -> Option<Request> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(r) = inner.queue.pop_front() {
                return Some(r);
            }
            if inner.closed {
                return None;
            }
            inner = match self.cv.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn close(&self) {
        let mut inner = lock(&self.inner);
        inner.closed = true;
        self.cv.notify_all();
    }
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    retried: AtomicU64,
    quarantined: AtomicU64,
    rebuilt: AtomicU64,
    deadline_missed: AtomicU64,
    max_queue_depth: AtomicUsize,
    inflight_points: AtomicUsize,
}

struct SharedState {
    config: ServiceConfig,
    queues: Vec<StreamQueue>,
    counters: Counters,
    completions: Mutex<Vec<Completion>>,
    stream_health: Mutex<Vec<StreamHealth>>,
}

/// The driver's interface to a running service: submit frames, observe
/// queue depth. Handed to the closure passed to [`serve`]; when that
/// closure returns, the service drains and shuts down.
pub struct ServiceHandle<'s> {
    shared: &'s SharedState,
}

impl ServiceHandle<'_> {
    /// Offers one frame to `stream`'s queue. Admission control runs
    /// synchronously, so a rejected or shed frame costs the caller nothing
    /// downstream:
    ///
    /// # Errors
    ///
    /// - [`ServeError::Rejected`] — the frame failed the per-frame
    ///   admission checks ([`ServiceConfig::admission`]);
    /// - [`ServeError::Shed`] — admitting it would exceed the service-wide
    ///   in-flight point budget;
    /// - [`ServeError::QueueFull`] — the stream's bounded queue is full;
    /// - [`ServeError::UnknownStream`] / [`ServeError::StreamClosed`].
    pub fn submit(
        &self,
        stream: usize,
        frame: u64,
        tensor: Arc<SparseTensor>,
    ) -> Result<(), ServeError> {
        let shared = self.shared;
        let q = shared.queues.get(stream).ok_or(ServeError::UnknownStream { stream })?;

        // Per-frame admission: the validation layer's own checks, run
        // before the frame ever reaches a worker. Sanitize-policy repairs
        // admit the repaired frame.
        let mut faults = FaultInjector::disarmed();
        let mut scratch = DegradationReport::new();
        let tensor = match torchsparse_core::validate::validate_input(
            &tensor,
            &shared.config.admission,
            &mut faults,
            &mut scratch,
        ) {
            Ok(None) => tensor,
            Ok(Some(sanitized)) => Arc::new(sanitized),
            Err(e) => {
                shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Rejected(e));
            }
        };

        // Service-wide in-flight point budget: reserve before queuing,
        // released by the worker when the frame terminates.
        let points = tensor.len();
        if let Some(budget) = shared.config.service_point_budget {
            let prev = shared.counters.inflight_points.fetch_add(points, Ordering::SeqCst);
            if prev.saturating_add(points) > budget {
                shared.counters.inflight_points.fetch_sub(points, Ordering::SeqCst);
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Shed(CoreError::BudgetExceeded {
                    points: prev.saturating_add(points),
                    limit: budget,
                }));
            }
        }

        let mut inner = lock(&q.inner);
        if inner.closed {
            drop(inner);
            self.release_points(points);
            return Err(ServeError::StreamClosed);
        }
        if inner.queue.len() >= shared.config.queue_capacity {
            drop(inner);
            self.release_points(points);
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull { capacity: shared.config.queue_capacity });
        }
        inner.queue.push_back(Request { frame, tensor, submitted: Instant::now() });
        let depth = inner.queue.len();
        drop(inner);
        shared.counters.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
        q.cv.notify_one();
        Ok(())
    }

    /// Current depth of `stream`'s queue (`None` for unknown streams).
    pub fn queue_depth(&self, stream: usize) -> Option<usize> {
        self.shared.queues.get(stream).map(|q| lock(&q.inner).queue.len())
    }

    /// Frames that have reached a terminal state so far.
    pub fn completions_so_far(&self) -> usize {
        lock(&self.shared.completions).len()
    }

    fn release_points(&self, points: usize) {
        if self.shared.config.service_point_budget.is_some() {
            self.shared.counters.inflight_points.fetch_sub(points, Ordering::SeqCst);
        }
    }
}

/// Installs the configured probabilistic faults on a (re)built stream
/// state, seeded per `(stream, generation)` so every incarnation draws an
/// independent, reproducible schedule.
fn apply_faults(state: &mut StreamState, cfg: &ServiceConfig, stream: usize, generation: u64) {
    if cfg.faults.is_empty() {
        return;
    }
    if let Some(targets) = &cfg.fault_streams {
        if !targets.contains(&stream) {
            return;
        }
    }
    let ctx = state.engine_mut().context_mut();
    ctx.faults.seed(mix_seed(cfg.fault_seed, stream as u64, generation));
    for &(site, p) in &cfg.faults {
        ctx.faults.with_probability(site, p);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one frame with bounded deterministic retry. Returns the terminal
/// result plus how many attempts it took. A contained panic quarantines
/// the stream: `slot` is discarded wholesale and rebuilt from the shared
/// plan (which is what makes the `AssertUnwindSafe` below sound — no state
/// a panicking request may have half-updated ever serves another frame).
fn run_request(
    shared: &SharedState,
    model: &CompiledModel<'_>,
    slot: &mut Option<StreamState>,
    req: &Request,
    stream_idx: usize,
    generation: &mut u64,
    window: &mut DegradationReport,
) -> (Result<Option<SparseTensor>, ServeError>, u32) {
    let cfg = &shared.config;
    let mut attempts = 0u32;
    loop {
        let Some(state) = slot.as_mut() else {
            return (Err(ServeError::StreamClosed), attempts.max(1));
        };
        attempts += 1;
        state.engine_mut().context_mut().deadline = cfg.deadline.map(Deadline::starting_now);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if state.engine_mut().context_mut().faults.should_fail(FaultSite::WorkerPanic) {
                panic!("injected worker-panic fault");
            }
            model.execute_on(state, &req.tensor)
        }));
        match outcome {
            Err(payload) => {
                shared.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                window.record(FaultSite::WorkerPanic, "panic contained; stream quarantined");
                *generation += 1;
                match model.new_stream() {
                    Ok(mut fresh) => {
                        apply_faults(&mut fresh, cfg, stream_idx, *generation);
                        *slot = Some(fresh);
                        shared.counters.rebuilt.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        // Cannot rebuild (validated configs make this
                        // unreachable in practice): close the stream
                        // instead of serving from poisoned state.
                        *slot = None;
                        if let Some(q) = shared.queues.get(stream_idx) {
                            q.close();
                        }
                    }
                }
                let message = panic_message(&*payload);
                return (Err(ServeError::Poisoned { message }), attempts);
            }
            Ok(run) => {
                let ctx = state.engine_mut().context_mut();
                ctx.deadline = None;
                window.merge(&ctx.degradation);
                match run {
                    Ok(out) => {
                        let kept = if cfg.keep_outputs { Some(out) } else { None };
                        return (Ok(kept), attempts);
                    }
                    Err(e) => {
                        if matches!(e, CoreError::DeadlineExceeded { .. }) {
                            shared.counters.deadline_missed.fetch_add(1, Ordering::Relaxed);
                        }
                        if is_transient_error(&e) && attempts <= cfg.max_retries {
                            shared.counters.retried.fetch_add(1, Ordering::Relaxed);
                            let us = backoff_us(
                                cfg.retry_seed,
                                stream_idx as u64,
                                req.frame,
                                attempts - 1,
                                cfg.base_backoff_us,
                            );
                            std::thread::sleep(Duration::from_micros(us));
                            continue;
                        }
                        return (Err(ServeError::Failed { error: e, attempts }), attempts);
                    }
                }
            }
        }
    }
}

/// One stream's worker: builds its private [`StreamState`] from the
/// shared plan, then serves its queue until closed-and-drained.
fn worker(shared: &SharedState, model: &CompiledModel<'_>, stream_idx: usize) {
    let mut generation = 0u64;
    let mut slot = match model.new_stream() {
        Ok(mut s) => {
            apply_faults(&mut s, &shared.config, stream_idx, generation);
            Some(s)
        }
        Err(_) => {
            if let Some(q) = shared.queues.get(stream_idx) {
                q.close();
            }
            None
        }
    };
    let mut window = DegradationReport::new();
    let mut health = StreamHealth {
        stream: stream_idx,
        completed: 0,
        failed: 0,
        quarantined: 0,
        degradation: DegradationReport::new(),
        plan_bytes: 0,
        full_replans: 0,
        delta_patches: 0,
        delta_fallbacks: 0,
    };
    let Some(queue) = shared.queues.get(stream_idx) else { return };
    while let Some(req) = queue.pop() {
        let (result, attempts) =
            run_request(shared, model, &mut slot, &req, stream_idx, &mut generation, &mut window);
        if shared.config.service_point_budget.is_some() {
            shared.counters.inflight_points.fetch_sub(req.tensor.len(), Ordering::SeqCst);
        }
        match &result {
            Ok(_) => health.completed += 1,
            Err(ServeError::Poisoned { .. }) => health.quarantined += 1,
            Err(_) => health.failed += 1,
        }
        lock(&shared.completions).push(Completion {
            stream: stream_idx,
            frame: req.frame,
            attempts,
            latency: req.submitted.elapsed(),
            result,
        });
    }
    health.degradation = window.snapshot();
    if let Some(s) = slot.as_ref() {
        let stats = s.stats();
        health.plan_bytes = stats.plan_bytes;
        health.full_replans = stats.full_replans;
        health.delta_patches = stats.delta_patches;
        health.delta_fallbacks = stats.delta_fallbacks;
    }
    lock(&shared.stream_health).push(health);
}

/// Runs a multi-stream service over `model` for the lifetime of `driver`.
///
/// One worker thread per stream spins up (structured concurrency:
/// `std::thread::scope`, so the shared model needs no `'static` bound);
/// `driver` runs on the calling thread and submits frames through the
/// [`ServiceHandle`]. When `driver` returns, every queue is closed, the
/// already-admitted frames drain, workers join, and the call returns the
/// driver's result plus the [`ServiceOutcome`] — the service-level
/// [`HealthReport`] window and every frame's terminal [`Completion`].
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] for an unusable [`ServiceConfig`]
/// (`queue_capacity == 0`). Per-frame failures never fail the service —
/// they are typed into each frame's completion.
pub fn serve<R>(
    model: &CompiledModel<'_>,
    streams: usize,
    config: &ServiceConfig,
    driver: impl FnOnce(&ServiceHandle<'_>) -> R,
) -> Result<(R, ServiceOutcome), CoreError> {
    if config.queue_capacity == 0 {
        return Err(CoreError::InvalidConfig {
            reason: "serving queue_capacity of 0 sheds every frame".to_owned(),
        });
    }
    let shared = SharedState {
        config: config.clone(),
        queues: (0..streams).map(|_| StreamQueue::new()).collect(),
        counters: Counters::default(),
        completions: Mutex::new(Vec::new()),
        stream_health: Mutex::new(Vec::new()),
    };

    let driver_result = std::thread::scope(|scope| {
        let shared = &shared;
        for idx in 0..streams {
            scope.spawn(move || worker(shared, model, idx));
        }
        let handle = ServiceHandle { shared };
        let r = driver(&handle);
        for q in &shared.queues {
            q.close();
        }
        r
    });

    let c = &shared.counters;
    let mut streams_health = std::mem::take(&mut *lock(&shared.stream_health));
    streams_health.sort_by_key(|s| s.stream);
    let completions = std::mem::take(&mut *lock(&shared.completions));
    let mut health = HealthReport {
        admitted: c.admitted.load(Ordering::Relaxed),
        shed: c.shed.load(Ordering::Relaxed),
        rejected: c.rejected.load(Ordering::Relaxed),
        completed: completions.iter().filter(|x| x.result.is_ok()).count() as u64,
        failed: completions
            .iter()
            .filter(|x| matches!(&x.result, Err(e) if !matches!(e, ServeError::Poisoned { .. })))
            .count() as u64,
        retried: c.retried.load(Ordering::Relaxed),
        quarantined: c.quarantined.load(Ordering::Relaxed),
        rebuilt: c.rebuilt.load(Ordering::Relaxed),
        deadline_missed: c.deadline_missed.load(Ordering::Relaxed),
        max_queue_depth: c.max_queue_depth.load(Ordering::Relaxed),
        degradation: DegradationReport::new(),
        plan_bytes: 0,
        full_replans: 0,
        delta_patches: 0,
        delta_fallbacks: 0,
        tuned_layers: model.tuning_report().map_or(0, |t| t.policies.len()),
        candidates_measured: model.tuning_report().map_or(0, |t| t.candidates_measured),
        warm_started: model.tuning_report().map_or(0, |t| t.warm_started),
        autotune_degraded: model.tuning_report().is_some_and(|t| t.degraded),
        streams: Vec::new(),
    };
    for s in &streams_health {
        health.degradation.merge(&s.degradation);
        health.plan_bytes += s.plan_bytes;
        health.full_replans += s.full_replans;
        health.delta_patches += s.delta_patches;
        health.delta_fallbacks += s.delta_fallbacks;
    }
    health.streams = streams_health;
    Ok((driver_result, ServiceOutcome { health, completions }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_coords::Coord;
    use torchsparse_core::{
        Engine, EnginePreset, ReLU, Sequential, SparseConv3d, ValidationConfig, ValidationPolicy,
    };
    use torchsparse_gpusim::DeviceProfile;
    use torchsparse_tensor::Matrix;

    fn scene(seed: i32) -> Arc<SparseTensor> {
        let coords: Vec<Coord> = (0..24)
            .map(|i| Coord::new(0, (i + seed) % 5, (i / 5) % 4, i % 3))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = coords.len();
        Arc::new(
            SparseTensor::new(coords, Matrix::from_fn(n, 4, |r, c| ((r * 3 + c) % 5) as f32 - 2.0))
                .unwrap(),
        )
    }

    fn model() -> Sequential {
        Sequential::new("net")
            .push(SparseConv3d::with_random_weights("conv1", 4, 8, 3, 1, 1))
            .push(ReLU::new("act1"))
            .push(SparseConv3d::with_random_weights("conv2", 8, 4, 3, 1, 2))
    }

    fn engine() -> Engine {
        Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti())
    }

    fn bits(t: &SparseTensor) -> Vec<u32> {
        t.feats().as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn two_streams_match_solo_bitwise() {
        let m = model();
        let x = scene(0);
        let session = engine().compile(&m, &x).unwrap();
        let (shared, mut solo) = session.into_parts();
        let expected = bits(&shared.execute_on(&mut solo, &x).unwrap());

        let (_, outcome) = serve(&shared, 2, &ServiceConfig::default(), |svc| {
            for stream in 0..2 {
                for frame in 0..3 {
                    svc.submit(stream, frame, x.clone()).unwrap();
                }
            }
        })
        .unwrap();
        assert_eq!(outcome.health.admitted, 6);
        assert_eq!(outcome.health.completed, 6);
        assert_eq!(outcome.health.quarantined, 0);
        for c in &outcome.completions {
            let out = c.result.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(bits(out), expected, "stream {} frame {}", c.stream, c.frame);
        }
    }

    #[test]
    fn admission_rejects_and_point_budget_sheds() {
        let m = model();
        let x = scene(0);
        let session = engine().compile(&m, &x).unwrap();
        let (shared, _) = session.into_parts();

        let cfg = ServiceConfig {
            admission: ValidationConfig {
                policy: ValidationPolicy::Reject,
                max_points: Some(4),
                max_grid_cells: u64::MAX,
            },
            ..ServiceConfig::default()
        };
        let (submit_err, outcome) =
            serve(&shared, 1, &cfg, |svc| svc.submit(0, 0, x.clone()).unwrap_err()).unwrap();
        assert!(matches!(submit_err, ServeError::Rejected(CoreError::BudgetExceeded { .. })));
        assert_eq!(outcome.health.rejected, 1);
        assert_eq!(outcome.health.admitted, 0);

        // A service-wide point budget smaller than one frame sheds it
        // deterministically, with the typed budget error.
        let cfg = ServiceConfig { service_point_budget: Some(4), ..ServiceConfig::default() };
        let (submit_err, outcome) =
            serve(&shared, 1, &cfg, |svc| svc.submit(0, 0, x.clone()).unwrap_err()).unwrap();
        assert!(matches!(submit_err, ServeError::Shed(CoreError::BudgetExceeded { .. })));
        assert_eq!(outcome.health.shed, 1);
    }

    #[test]
    fn quarantine_isolates_the_faulted_stream() {
        let m = model();
        let x = scene(0);
        let session = engine().compile(&m, &x).unwrap();
        let (shared, mut solo) = session.into_parts();
        let expected = bits(&shared.execute_on(&mut solo, &x).unwrap());

        // Stream 0 panics on every frame; stream 1 is untouched.
        let cfg = ServiceConfig {
            faults: vec![(FaultSite::WorkerPanic, 1.0)],
            fault_streams: Some(vec![0]),
            fault_seed: 7,
            ..ServiceConfig::default()
        };
        let frames = 3u64;
        let (_, outcome) = serve(&shared, 2, &cfg, |svc| {
            for frame in 0..frames {
                svc.submit(0, frame, x.clone()).unwrap();
                svc.submit(1, frame, x.clone()).unwrap();
            }
        })
        .unwrap();

        assert_eq!(outcome.health.quarantined, frames, "every stream-0 frame panics");
        assert_eq!(outcome.health.rebuilt, frames, "each quarantine rebuilds the stream");
        assert_eq!(outcome.health.completed, frames, "stream 1 keeps serving");
        for c in outcome.stream_completions(0) {
            assert!(matches!(&c.result, Err(ServeError::Poisoned { .. })), "{:?}", c.result);
        }
        for c in outcome.stream_completions(1) {
            let out = c.result.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(bits(out), expected, "non-faulted stream must stay bitwise identical");
        }
        // The rollup names the contained panics.
        assert_eq!(outcome.health.degradation.count(FaultSite::WorkerPanic), frames as usize);
        let s0 = &outcome.health.streams[0];
        assert_eq!(s0.quarantined, frames);
        assert!(outcome.health.streams[1].degradation.is_empty());
    }

    #[test]
    fn injected_overruns_retry_deterministically() {
        let m = model();
        let x = scene(0);
        let session = engine().compile(&m, &x).unwrap();
        let (shared, _) = session.into_parts();

        let cfg = ServiceConfig {
            faults: vec![(FaultSite::DeadlineOverrun, 0.2)],
            fault_streams: None,
            fault_seed: 11,
            max_retries: 4,
            base_backoff_us: 10,
            ..ServiceConfig::default()
        };
        let run = || {
            let (_, outcome) = serve(&shared, 2, &cfg, |svc| {
                for stream in 0..2 {
                    for frame in 0..8 {
                        svc.submit(stream, frame, x.clone()).unwrap();
                    }
                }
            })
            .unwrap();
            outcome
        };
        let a = run();
        assert!(a.health.retried > 0, "p=0.2 over 16 frames must trigger retries: {}", a.health);
        assert_eq!(a.health.completed + a.health.failed, 16);
        // Seeded schedules replay exactly: same counters, same per-frame
        // attempt counts.
        let b = run();
        assert_eq!(a.health.retried, b.health.retried);
        assert_eq!(a.health.deadline_missed, b.health.deadline_missed);
        let key = |o: &ServiceOutcome| {
            let mut v: Vec<(usize, u64, u32, bool)> = o
                .completions
                .iter()
                .map(|c| (c.stream, c.frame, c.attempts, c.result.is_ok()))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(key(&a), key(&b), "fault replay must be exact");
    }

    #[test]
    fn health_reports_per_stream_delta_replan_rollups() {
        let m = model();
        let a = scene(0);
        // `a` minus its last voxel: ~4% churn, far under the delta
        // threshold, so the stream's re-plan takes the patch path.
        let keep = a.len() - 1;
        let channels = a.channels();
        let coords = a.coords()[..keep].to_vec();
        let feats = Matrix::from_fn(keep, channels, |r, c| a.feats().as_slice()[r * channels + c]);
        let a2 = Arc::new(SparseTensor::new(coords, feats).unwrap());
        let session = engine().compile(&m, &a).unwrap();
        let (shared, _) = session.into_parts();
        let (_, outcome) = serve(&shared, 1, &ServiceConfig::default(), |svc| {
            svc.submit(0, 0, a.clone()).unwrap();
            svc.submit(0, 1, a2.clone()).unwrap();
        })
        .unwrap();
        let h = &outcome.health;
        assert_eq!(h.completed, 2);
        let s0 = &h.streams[0];
        assert_eq!(
            s0.full_replans + s0.delta_patches + s0.delta_fallbacks,
            1,
            "exactly one geometry change on stream 0: {s0:?}"
        );
        if std::env::var_os("TORCHSPARSE_DELTA_REPLAN").is_none() {
            assert_eq!(s0.delta_patches, 1, "1-voxel churn must be patched: {s0:?}");
        }
        assert_eq!(
            h.delta_patches,
            h.streams.iter().map(|s| s.delta_patches).sum::<u64>(),
            "service rollup must sum the per-stream counters"
        );
        assert_eq!(h.full_replans, h.streams.iter().map(|s| s.full_replans).sum::<u64>());
        assert!(h.to_string().contains("replans:"), "{h}");
    }

    #[test]
    fn zero_capacity_config_is_rejected() {
        let m = model();
        let x = scene(0);
        let session = engine().compile(&m, &x).unwrap();
        let (shared, _) = session.into_parts();
        let cfg = ServiceConfig { queue_capacity: 0, ..ServiceConfig::default() };
        let err = serve(&shared, 1, &cfg, |_| ()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn unknown_stream_is_typed() {
        let m = model();
        let x = scene(0);
        let session = engine().compile(&m, &x).unwrap();
        let (shared, _) = session.into_parts();
        let (err, _) = serve(&shared, 1, &ServiceConfig::default(), |svc| {
            svc.submit(5, 0, x.clone()).unwrap_err()
        })
        .unwrap();
        assert_eq!(err, ServeError::UnknownStream { stream: 5 });
    }

    #[test]
    fn streams_do_not_thrash_each_others_plan_slots() {
        // Two streams with *different* geometry fingerprints serve
        // interleaved frames; each re-plans once and then hits its own
        // slot every frame — concurrent serving must not thrash slots.
        let m = model();
        let a = scene(0);
        let b = scene(3);
        let session = engine().compile(&m, &a).unwrap();
        let (shared, _) = session.into_parts();

        let mut solo_b = shared.new_stream().unwrap();
        let expected_b = bits(&shared.execute_on(&mut solo_b, &b).unwrap());
        let s = solo_b.stats();
        assert_eq!(
            (s.hits, s.misses, s.invalidations),
            (0, 1, 1),
            "geometry b must re-plan once solo"
        );
        assert!(s.plan_bytes > 0, "the private re-plan has a resident footprint");

        let frames = 4u64;
        let (_, outcome) = serve(&shared, 2, &ServiceConfig::default(), |svc| {
            for frame in 0..frames {
                svc.submit(0, frame, a.clone()).unwrap();
                svc.submit(1, frame, b.clone()).unwrap();
            }
        })
        .unwrap();
        assert_eq!(outcome.health.completed, 2 * frames);
        for c in outcome.stream_completions(1) {
            let out = c.result.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(bits(out), expected_b, "frame {}", c.frame);
        }
    }
}
