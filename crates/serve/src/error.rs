//! Typed serving-layer errors.

use std::fmt;
use torchsparse_core::CoreError;

/// Why a frame did not produce a normal output.
///
/// Split along the isolation boundaries: admission errors
/// ([`Rejected`](ServeError::Rejected), [`QueueFull`](ServeError::QueueFull),
/// [`Shed`](ServeError::Shed)) are returned synchronously from
/// [`ServiceHandle::submit`](crate::ServiceHandle::submit) and never reach
/// a worker; execution errors ([`Failed`](ServeError::Failed),
/// [`Poisoned`](ServeError::Poisoned)) arrive in the frame's
/// [`Completion`](crate::Completion).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the frame (validation budget or
    /// malformed input), with the same typed [`CoreError`] the validation
    /// layer produces.
    Rejected(CoreError),
    /// The stream's bounded queue was full: the frame was shed.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// Admitting the frame would exceed the service-wide in-flight point
    /// budget: the frame was shed.
    Shed(CoreError),
    /// No stream with this index exists.
    UnknownStream {
        /// The requested stream index.
        stream: usize,
    },
    /// The stream has shut down (service drained, or its state could not
    /// be rebuilt after quarantine).
    StreamClosed,
    /// Execution failed after `attempts` tries with a typed engine error
    /// (deadline overruns land here when retries are exhausted).
    Failed {
        /// The final attempt's error.
        error: CoreError,
        /// How many times the frame ran.
        attempts: u32,
    },
    /// The request panicked. The panic was contained at the per-request
    /// `catch_unwind` boundary, the stream was quarantined, and its state
    /// was rebuilt from the shared plan.
    Poisoned {
        /// The panic payload, when it carried a message.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(e) => write!(f, "admission rejected: {e}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "stream queue full (capacity {capacity}); frame shed")
            }
            ServeError::Shed(e) => write!(f, "service budget exhausted; frame shed: {e}"),
            ServeError::UnknownStream { stream } => write!(f, "no stream {stream}"),
            ServeError::StreamClosed => f.write_str("stream has shut down"),
            ServeError::Failed { error, attempts } => {
                write!(f, "failed after {attempts} attempt(s): {error}")
            }
            ServeError::Poisoned { message } => {
                write!(f, "request panicked (stream quarantined and rebuilt): {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Rejected(e) | ServeError::Shed(e) | ServeError::Failed { error: e, .. } => {
                Some(e)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_nonempty() {
        let variants = vec![
            ServeError::Rejected(CoreError::EmptyInput),
            ServeError::QueueFull { capacity: 8 },
            ServeError::Shed(CoreError::BudgetExceeded { points: 10, limit: 5 }),
            ServeError::UnknownStream { stream: 3 },
            ServeError::StreamClosed,
            ServeError::Failed { error: CoreError::EmptyInput, attempts: 3 },
            ServeError::Poisoned { message: "boom".to_owned() },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_through_core_errors() {
        use std::error::Error;
        assert!(ServeError::Rejected(CoreError::EmptyInput).source().is_some());
        assert!(ServeError::StreamClosed.source().is_none());
    }
}
