//! Deterministic pseudo-random number generation, API-compatible with the
//! subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! its own generator: [`rngs::StdRng`] is a splitmix64-scrambled xorshift —
//! statistically solid for test-data generation and benchmark inputs, not
//! cryptographic. Everything is seeded and wall-clock free, which the
//! engine's fault-injection tests rely on for reproducibility.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Concrete generator types.
pub mod rngs {
    /// The workspace's standard deterministic generator.
    ///
    /// xorshift64* state with a splitmix64-seeded start; passes the usual
    /// smoke checks (equidistribution of high bits, no short cycles from
    /// small seeds) that matter for test-input generation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // splitmix64 scramble so that nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        StdRng { state: z | 1 }
    }
}

impl StdRng {
    /// Next raw 64-bit output (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Types producible uniformly by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard(rng: &mut StdRng) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard(rng: &mut StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut StdRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Half-open ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt {
    /// Draws one uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T;

    /// Draws one value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl RngExt for StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f32 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn unit_float_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn inclusive_int_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..500 {
            match rng.random_range(0u8..=3) {
                0 => hit_lo = true,
                3 => hit_hi = true,
                _ => {}
            }
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).random_range(5i32..5);
    }
}
