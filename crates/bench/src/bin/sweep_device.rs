//! **What-if device study**: sensitivity of each benchmark model's
//! TorchSparse latency to DRAM bandwidth, GEMM peak, and L2 capacity.
//!
//! The paper argues sparse CNNs are memory-bound (Principle II); this sweep
//! quantifies it per model by scaling one device resource at a time on top
//! of the RTX 2080 Ti profile and reporting the latency elasticity
//! (speedup from doubling the resource). Values near 2x mean "bound by
//! this resource"; near 1x mean insensitive.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin sweep_device
//! [--scale F]`

use torchsparse_bench::{build_model, dataset_for, fmt, measure, scenes, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset};
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.3, 1);
    println!("== What-if device sweep: latency elasticity on TorchSparse ==");
    println!("base device: RTX 2080Ti; each resource doubled in isolation\n");

    let mut rows = Vec::new();
    for bm in [
        BenchmarkModel::MinkUNetHalfSemanticKitti,
        BenchmarkModel::MinkUNetFullSemanticKitti,
        BenchmarkModel::CenterPointWaymo3,
    ] {
        let ds = dataset_for(bm, args.scale);
        let inputs = scenes(&ds, args.scenes, args.seed)?;
        let model = build_model(bm, args.seed);

        let latency = |device: DeviceProfile| -> Result<f64, Box<dyn std::error::Error>> {
            let mut engine = Engine::new(EnginePreset::TorchSparse, device);
            Ok(measure(&mut engine, model.as_ref(), &inputs)?.total().as_f64())
        };

        let base = latency(DeviceProfile::rtx_2080ti())?;

        let mut bw = DeviceProfile::rtx_2080ti();
        bw.dram_gbs *= 2.0;
        let bw_gain = base / latency(bw)?;

        let mut flops = DeviceProfile::rtx_2080ti();
        flops.fp16_tflops *= 2.0;
        flops.fp32_tflops *= 2.0;
        let flops_gain = base / latency(flops)?;

        let mut l2 = DeviceProfile::rtx_2080ti();
        l2.l2_bytes *= 2;
        let l2_gain = base / latency(l2)?;

        rows.push(vec![
            bm.name().to_owned(),
            format!("{:.2} ms", base / 1e3),
            fmt::speedup(bw_gain),
            fmt::speedup(flops_gain),
            fmt::speedup(l2_gain),
        ]);
    }
    println!(
        "{}",
        fmt::table(&["model", "base latency", "2x bandwidth", "2x FLOPs", "2x L2"], &rows)
    );
    println!("Expected shape: bandwidth elasticity exceeds FLOPs elasticity on the");
    println!("movement-heavy detector; the host-overhead floor caps all three.");
    Ok(())
}
