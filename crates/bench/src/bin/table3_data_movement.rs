//! **Table 3**: data-movement optimization waterfall on MinkUNet (1.0x) @
//! SemanticKITTI.
//!
//! The paper stacks: FP16 quantization (scalar), vectorized access, fused
//! gather/scatter phases, and locality-aware ordering, reporting gather
//! (G), scatter (S), and combined (SG) speedups over the FP32 baseline:
//!
//! | config                      |   G  |   S  |  SG  |
//! |-----------------------------|------|------|------|
//! | FP32 baseline               | 1.00 | 1.00 | 1.00 |
//! | + FP16 (scalar)             | 1.17 | 1.48 | 1.32 |
//! | + vectorized                | 1.91 | 1.95 | 1.93 |
//! | + fused                     | 1.91 | 2.12 | 2.02 |
//! | + locality-aware            | 2.86 | 2.61 | 2.72 |
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin
//! table3_data_movement [--scale F] [--scenes N]`

#![allow(clippy::type_complexity)]

use torchsparse_bench::{build_model, dataset_for, fmt, measure, scenes, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, OptimizationConfig, Precision};
use torchsparse_gpusim::Stage;
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(1.0, 1);
    let bm = BenchmarkModel::MinkUNetFullSemanticKitti;
    println!("== Table 3: data movement optimization breakdown ==");
    println!("workload: {} (scale {})\n", bm.name(), args.scale);

    let ds = dataset_for(bm, args.scale);
    let inputs = scenes(&ds, args.scenes, args.seed)?;
    let model = build_model(bm, args.seed);

    let steps: Vec<(&str, Box<dyn Fn(&mut OptimizationConfig)>)> = vec![
        ("FP32 baseline", Box::new(|_c: &mut OptimizationConfig| {})),
        ("+ FP16 (scalar)", Box::new(|c| c.precision = Precision::Fp16)),
        ("+ vectorized", Box::new(|c| c.vectorized = true)),
        ("+ fused", Box::new(|c| c.fused_gather_scatter = true)),
        ("+ locality-aware", Box::new(|c| c.locality_aware = true)),
    ];

    let mut cfg = OptimizationConfig::baseline_fp32();
    let mut rows = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for (label, apply) in &steps {
        apply(&mut cfg);
        let mut engine = Engine::with_config(cfg.clone(), DeviceProfile::rtx_2080ti());
        let t = measure(&mut engine, model.as_ref(), &inputs)?;
        let g = t.stage(Stage::Gather).as_f64();
        let s = t.stage(Stage::Scatter).as_f64();
        let (g0, s0) = *base.get_or_insert((g, s));
        rows.push(vec![
            (*label).to_owned(),
            fmt::speedup(g0 / g),
            fmt::speedup(s0 / s),
            fmt::speedup((g0 + s0) / (g + s)),
        ]);
    }
    println!(
        "{}",
        fmt::table(&["configuration", "speedup (G)", "speedup (S)", "speedup (SG)"], &rows)
    );
    println!("Paper reference: 1.32x FP16-scalar, 1.93x vectorized, 2.02x fused,");
    println!("2.72x with locality-aware ordering (Table 3).");
    Ok(())
}
