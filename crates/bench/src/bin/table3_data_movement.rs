//! **Table 3**: data-movement optimization waterfall on MinkUNet (1.0x) @
//! SemanticKITTI.
//!
//! The paper stacks: FP16 quantization (scalar), vectorized access, fused
//! gather/scatter phases, and locality-aware ordering, reporting gather
//! (G), scatter (S), and combined (SG) speedups over the FP32 baseline:
//!
//! | config                      |   G  |   S  |  SG  |
//! |-----------------------------|------|------|------|
//! | FP32 baseline               | 1.00 | 1.00 | 1.00 |
//! | + FP16 (scalar)             | 1.17 | 1.48 | 1.32 |
//! | + vectorized                | 1.91 | 1.95 | 1.93 |
//! | + fused                     | 1.91 | 2.12 | 2.02 |
//! | + locality-aware            | 2.86 | 2.61 | 2.72 |
//!
//! The simulated waterfall above ablates the *modeled* GPU movement
//! kernels; the run ends with the CPU counterpart — real wall-clock for
//! the materialized gather/psum executor vs the fused
//! gather–GEMM–scatter microkernel (`OptimizationConfig::fused_execution`)
//! on the same workload, asserted bitwise identical.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin
//! table3_data_movement [--scale F] [--scenes N]`

#![allow(clippy::type_complexity)]

use std::time::Instant;
use torchsparse_bench::{build_model, dataset_for, fmt, measure, scenes, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, OptimizationConfig, Precision};
use torchsparse_gpusim::Stage;
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(1.0, 1);
    let bm = BenchmarkModel::MinkUNetFullSemanticKitti;
    println!("== Table 3: data movement optimization breakdown ==");
    println!("workload: {} (scale {})\n", bm.name(), args.scale);

    let ds = dataset_for(bm, args.scale);
    let inputs = scenes(&ds, args.scenes, args.seed)?;
    let model = build_model(bm, args.seed);

    let steps: Vec<(&str, Box<dyn Fn(&mut OptimizationConfig)>)> = vec![
        ("FP32 baseline", Box::new(|_c: &mut OptimizationConfig| {})),
        ("+ FP16 (scalar)", Box::new(|c| c.precision = Precision::Fp16)),
        ("+ vectorized", Box::new(|c| c.vectorized = true)),
        ("+ fused", Box::new(|c| c.fused_gather_scatter = true)),
        ("+ locality-aware", Box::new(|c| c.locality_aware = true)),
    ];

    let mut cfg = OptimizationConfig::baseline_fp32();
    let mut rows = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for (label, apply) in &steps {
        apply(&mut cfg);
        let mut engine = Engine::with_config(cfg.clone(), DeviceProfile::rtx_2080ti());
        let t = measure(&mut engine, model.as_ref(), &inputs)?;
        let g = t.stage(Stage::Gather).as_f64();
        let s = t.stage(Stage::Scatter).as_f64();
        let (g0, s0) = *base.get_or_insert((g, s));
        rows.push(vec![
            (*label).to_owned(),
            fmt::speedup(g0 / g),
            fmt::speedup(s0 / s),
            fmt::speedup((g0 + s0) / (g + s)),
        ]);
    }
    println!(
        "{}",
        fmt::table(&["configuration", "speedup (G)", "speedup (S)", "speedup (SG)"], &rows)
    );
    println!("Paper reference: 1.32x FP16-scalar, 1.93x vectorized, 2.02x fused,");
    println!("2.72x with locality-aware ordering (Table 3).");

    // ---- CPU executor split: the real (not modeled) fused/unfused cost. --
    // The waterfall above ablates the simulator's movement kernels; the
    // fused gather-GEMM-scatter path is the CPU analogue of "+ fused
    // + locality-aware" (map rows stream through register tiles in
    // plan-time output-sorted order). Measured with real numerics on the
    // final stacked config; outputs must agree bit for bit.
    println!("\n== CPU executor: fused vs materialized gather/psum (real wall clock) ==");
    let mut wall_s = [0.0f64; 2];
    let mut bits: Option<Vec<u32>> = None;
    for (i, fused) in [false, true].into_iter().enumerate() {
        let mut run_cfg = cfg.clone();
        run_cfg.fused_execution = fused;
        let mut engine = Engine::with_config(run_cfg, DeviceProfile::rtx_2080ti());
        engine.run(model.as_ref(), &inputs[0])?; // warm maps, packs, workspaces
        let start = Instant::now();
        let mut last = None;
        for x in &inputs {
            last = Some(engine.run(model.as_ref(), x)?);
        }
        wall_s[i] = start.elapsed().as_secs_f64() / inputs.len() as f64;
        if let Some(y) = last {
            let b: Vec<u32> = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
            match &bits {
                None => bits = Some(b),
                Some(r) => {
                    assert_eq!(r, &b, "fused and unfused CPU outputs must be bitwise identical")
                }
            }
        }
    }
    println!(
        "unfused {:.1} ms/scene, fused {:.1} ms/scene: {:.2}x (outputs bitwise identical; \
         see BENCH_fused.json / `fused_movement` for the compiled-stream measurement)",
        wall_s[0] * 1e3,
        wall_s[1] * 1e3,
        wall_s[0] / wall_s[1]
    );
    Ok(())
}
