//! **Figure 4**: runtime breakdown of sparse CNNs (baseline FP32 design).
//!
//! The paper profiles MinkUNet (segmentation, SemanticKITTI) and
//! CenterPoint (detection, Waymo) and finds data movement takes 40-50% of
//! the runtime, matmul 20-50%, and mapping a significant share on
//! detectors. This binary reproduces that breakdown on the synthetic
//! datasets.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin fig4_breakdown
//! [--scale F] [--scenes N]`

use torchsparse_bench::{build_model, dataset_for, fmt, measure, scenes, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset};
use torchsparse_gpusim::Stage;
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.8, 1);
    println!("== Figure 4: runtime breakdown (baseline FP32 design) ==");
    println!("scale={} scenes={} device=RTX 2080Ti\n", args.scale, args.scenes);

    let configs = [
        ("(a) MinkUNet (1.0x) @ SemanticKITTI", BenchmarkModel::MinkUNetFullSemanticKitti),
        ("(b) CenterPoint (3f) @ Waymo", BenchmarkModel::CenterPointWaymo3),
    ];

    for (label, bm) in configs {
        let ds = dataset_for(bm, args.scale);
        let inputs = scenes(&ds, args.scenes, args.seed)?;
        let model = build_model(bm, args.seed);
        let mut engine = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
        let t = measure(&mut engine, model.as_ref(), &inputs)?;

        println!("{label}  (avg input: {} voxels)", inputs[0].len());
        let total = t.total().as_f64();
        let mut rows = Vec::new();
        let movement = t.data_movement().as_f64();
        let entries = [
            ("matmul", t.stage(Stage::MatMul).as_f64()),
            ("gather + scatter", movement),
            ("mapping", t.stage(Stage::Mapping).as_f64()),
            ("other", t.stage(Stage::Other).as_f64()),
        ];
        for (name, us) in entries {
            rows.push(vec![
                name.to_owned(),
                format!("{:.1} us", us),
                format!("{:.1}%", 100.0 * us / total),
                fmt::bar(us, total, 40),
            ]);
        }
        rows.push(vec![
            "total".to_owned(),
            format!("{total:.1} us"),
            "100%".to_owned(),
            String::new(),
        ]);
        println!("{}", fmt::table(&["stage", "latency", "share", ""], &rows));
    }

    println!("Paper reference: data movement 40-50% of runtime; matmul 20-50%;");
    println!("mapping ~15% on Waymo detectors (motivates Sections 4.2-4.4).");
    Ok(())
}
