//! **Ablation (§5.2)**: the fetch-on-demand vs gather-matmul-scatter
//! crossover. MinkowskiEngine switches to fetch-on-demand for small
//! workloads — this sweep finds where that dataflow actually wins, by
//! running the same layer on scenes of increasing size under both dataflows.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin ablation_crossover`

use torchsparse_bench::fmt;
use torchsparse_core::{DeviceProfile, Engine, EnginePreset, SparseConv3d};
use torchsparse_data::SyntheticDataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Ablation: fetch-on-demand vs gather-matmul-scatter crossover ==");
    println!("layer: submanifold conv k3, C_in = C_out = 64, RTX 2080Ti (FP32)\n");

    let conv = SparseConv3d::with_random_weights("conv", 64, 64, 3, 1, 42);
    let mut rows = Vec::new();
    for scale in [0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let input = {
            let mut scene = SyntheticDataset::semantic_kitti(scale, 64).scene(7)?;
            // Strip the zero padding the voxelizer puts beyond channel 4 so
            // the features are non-trivial in every channel.
            let feats = torchsparse_tensor::Matrix::from_fn(scene.len(), 64, |r, c| {
                ((r * 13 + c * 7) % 31) as f32 / 31.0
            });
            scene = scene.with_feats(feats)?;
            scene
        };

        // Gather-matmul-scatter (baseline FP32, separate grouping).
        let mut gms = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
        gms.context_mut().simulate_only = true;
        gms.run(&conv, &input)?;
        let gms_us = gms.last_latency().as_f64();

        // Fetch-on-demand (force it by setting the threshold above any size).
        let mut cfg = EnginePreset::BaselineFp32.config();
        cfg.fetch_on_demand_below = Some(usize::MAX);
        let mut fod = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
        fod.context_mut().simulate_only = true;
        fod.run(&conv, &input)?;
        let fod_us = fod.last_latency().as_f64();

        rows.push(vec![
            input.len().to_string(),
            format!("{:.1} us", gms_us),
            format!("{:.1} us", fod_us),
            if fod_us < gms_us { "fetch-on-demand".into() } else { "gather-scatter".into() },
        ]);
    }
    println!(
        "{}",
        fmt::table(&["voxels", "gather-matmul-scatter", "fetch-on-demand", "winner"], &rows)
    );
    println!("Expected shape: fetch-on-demand wins small scenes (no buffer traffic,");
    println!("fewer kernels); gather-matmul-scatter wins at scale (GEMM efficiency).");
    Ok(())
}
