//! **Figure 13**: mapping-optimization waterfall on the CenterPoint (3f)
//! Waymo detector.
//!
//! The paper stacks four optimizations on the mapping pipeline — grid-based
//! map search (1.6x), fused output-coordinate kernels (1.5x), simplified
//! control logic + unrolling (1.8x), and symmetric map reuse (1.1x) — for a
//! combined ~4.6x. This binary enables them one at a time and reports the
//! cumulative end-to-end mapping speedup.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin fig13_mapping
//! [--scale F] [--scenes N]`

#![allow(clippy::type_complexity)]

use torchsparse_bench::{build_model, dataset_for, fmt, measure, scenes, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, MapSearchStrategy, OptimizationConfig};
use torchsparse_gpusim::Stage;
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.4, 1);
    let bm = BenchmarkModel::CenterPointWaymo3;
    println!("== Figure 13: mapping optimization waterfall ==");
    println!("workload: {} (scale {})\n", bm.name(), args.scale);

    let ds = dataset_for(bm, args.scale);
    let inputs = scenes(&ds, args.scenes, args.seed)?;
    let model = build_model(bm, args.seed);

    // Start from the baseline mapping pipeline and stack optimizations in
    // the paper's order.
    let steps: Vec<(&str, Box<dyn Fn(&mut OptimizationConfig)>)> = vec![
        ("baseline (hashmap, staged, branchy)", Box::new(|_c: &mut OptimizationConfig| {})),
        ("+ grid-based map search", Box::new(|c| c.map_search = MapSearchStrategy::Grid)),
        ("+ fused downsample kernels", Box::new(|c| c.fused_downsample = true)),
        ("+ simplified control logic", Box::new(|c| c.simplified_mapping_kernels = true)),
        ("+ symmetric map reuse", Box::new(|c| c.symmetric_map_search = true)),
    ];

    let mut cfg = OptimizationConfig::baseline_fp32();
    let mut rows = Vec::new();
    let mut base_mapping: Option<f64> = None;
    let mut prev: Option<f64> = None;
    for (label, apply) in &steps {
        apply(&mut cfg);
        let mut engine = Engine::with_config(cfg.clone(), DeviceProfile::rtx_2080ti());
        let t = measure(&mut engine, model.as_ref(), &inputs)?;
        let mapping = t.stage(Stage::Mapping).as_f64();
        let base = *base_mapping.get_or_insert(mapping);
        let step_speedup = prev.map_or(1.0, |p| p / mapping);
        prev = Some(mapping);
        rows.push(vec![
            (*label).to_owned(),
            format!("{:.1} us", mapping),
            fmt::speedup(step_speedup),
            fmt::speedup(base / mapping),
        ]);
    }
    println!(
        "{}",
        fmt::table(&["configuration", "mapping latency", "step speedup", "cumulative"], &rows)
    );
    println!("Paper reference: grid 1.6x, fused kernel 1.5x, control logic 1.8x,");
    println!("symmetry 1.1x; ~4.6x total mapping speedup on Waymo detectors.");
    Ok(())
}
