//! Plan-memory benchmark: bytes/voxel and query cost of the three
//! coordinate indexes (hashmap, grid, MPHF), plus the resident footprint
//! of whole frozen plans under each index choice.
//!
//! The succinct-plan claim this pins: the MPHF cascade stores a frozen
//! coordinate set in a fraction of the open-addressed hashmap's space (the
//! hashmap pays 2x slack slots at 24 modeled bytes each; the MPHF pays
//! ~2.6 bits/key of bitmaps plus the packed verification slots), while the
//! grid only wins when the scene is dense enough to amortize its bounding
//! box. Exits nonzero if the MPHF index is not at least 2x smaller than
//! the hashmap index at the 100k-voxel point, and writes
//! `BENCH_planmem.json`.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin plan_memory
//! [--scale F] [--seed N] [--out PATH]`

use std::hint::black_box;
use std::time::Instant;
use torchsparse_bench::{build_model, dataset_for, fmt, BenchArgs};
use torchsparse_coords::{Coord, CoordHashMap, CoordIndex, GridTable, MphfIndex};
use torchsparse_core::{CoordIndexChoice, DeviceProfile, Engine, EnginePreset};
use torchsparse_models::BenchmarkModel;

/// The floor the verify recipe smokes: MPHF index bytes/voxel must be at
/// least this factor below the hashmap index at [`FLOOR_VOXELS`].
const FLOOR_FACTOR: f64 = 2.0;
const FLOOR_VOXELS: usize = 100_000;

/// Voxel-count points the index structures are measured at.
const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];

/// Cube side for the synthetic scene: `128^3 = 2^21` sites, so the 1M
/// point fills ~48% of the box (a dense LiDAR-like crop) while 10k is
/// sparse (~0.5%), exercising both regimes of the grid's bbox tradeoff.
const SIDE: u32 = 128;

/// Distinct coordinates: the first `n` sites of a bijective odd-stride
/// walk over the `2^21`-site cube (an LCG-free permutation; no `rand`).
fn cube_coords(n: usize) -> Vec<Coord> {
    let volume = (SIDE as u64).pow(3); // power of two, so any odd stride is a bijection
    let stride = 0x9E37_79B1u64; // odd
    (0..n as u64)
        .map(|i| {
            let s = i.wrapping_mul(stride) % volume;
            let x = (s % SIDE as u64) as i32;
            let y = ((s / SIDE as u64) % SIDE as u64) as i32;
            let z = (s / (SIDE as u64 * SIDE as u64)) as i32;
            Coord::new(0, x, y, z)
        })
        .collect()
}

/// Mean query latency in nanoseconds over every stored coordinate.
fn ns_per_query(index: &dyn CoordIndex, coords: &[Coord]) -> f64 {
    let start = Instant::now();
    let mut hits = 0u64;
    for &c in coords {
        if black_box(index.query(c).0).is_some() {
            hits += 1;
        }
    }
    assert_eq!(hits, coords.len() as u64, "every stored coordinate must be found");
    start.elapsed().as_nanos() as f64 / coords.len() as f64
}

struct IndexPoint {
    voxels: usize,
    /// (label, bytes/voxel, ns/query) per index kind.
    rows: Vec<(&'static str, f64, f64)>,
}

fn measure_indexes() -> Vec<IndexPoint> {
    SIZES
        .iter()
        .map(|&n| {
            let coords = cube_coords(n);
            let (hash, _) = CoordHashMap::build(&coords);
            let (grid, _) = GridTable::build(&coords, u64::MAX).expect("cube fits");
            let (mphf, _) = MphfIndex::build(&coords).expect("distinct coords");
            let rows = vec![
                ("hashmap", hash.memory_bytes() as f64 / n as f64, ns_per_query(&hash, &coords)),
                ("grid", grid.memory_bytes() as f64 / n as f64, ns_per_query(&grid, &coords)),
                ("mphf", mphf.memory_bytes() as f64 / n as f64, ns_per_query(&mphf, &coords)),
            ];
            IndexPoint { voxels: n, rows }
        })
        .collect()
}

/// Input voxel count plus (label, plan bytes/voxel) per index choice.
type PlanRows = (usize, Vec<(&'static str, f64)>);

/// Whole-plan footprint: compile a MinkUNet stream under each index choice
/// and read the frozen plan's resident bytes per input voxel.
fn measure_plans(scale: f64, seed: u64) -> Result<PlanRows, Box<dyn std::error::Error>> {
    let bm = BenchmarkModel::MinkUNetNuScenes1;
    let input = dataset_for(bm, scale).scene(seed)?;
    let model = build_model(bm, seed);
    let mut rows = Vec::new();
    for (label, choice) in [
        ("hashmap", CoordIndexChoice::Hashmap),
        ("grid", CoordIndexChoice::Grid),
        ("mphf", CoordIndexChoice::Mphf),
    ] {
        let mut cfg = EnginePreset::TorchSparse.config();
        cfg.coord_index = choice;
        // Keep footprints comparable across index choices: the autotuner
        // may re-chunk locality orders, which perturbs plan bytes.
        cfg.autotune_policies = false;
        let mut session = Engine::with_config(cfg, DeviceProfile::rtx_2080ti())
            .compile(model.as_ref(), &input)?;
        session.execute(&input)?;
        rows.push((label, session.stats().plan_bytes as f64 / input.len() as f64));
    }
    Ok((input.len(), rows))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.1, 1);
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_planmem.json".to_owned());

    println!("== Plan memory: coordinate indexes and frozen plans ==\n");

    let points = measure_indexes();
    for p in &points {
        let rows: Vec<Vec<String>> = p
            .rows
            .iter()
            .map(|(label, bpv, ns)| {
                vec![(*label).to_owned(), format!("{bpv:.1}"), format!("{ns:.0}")]
            })
            .collect();
        println!("---- {} voxels ----", p.voxels);
        println!("{}", fmt::table(&["index", "bytes/voxel", "ns/query"], &rows));
    }

    let (plan_voxels, plan_rows) = measure_plans(args.scale, args.seed)?;
    let plan_table: Vec<Vec<String>> =
        plan_rows.iter().map(|(l, b)| vec![(*l).to_owned(), format!("{b:.1}")]).collect();
    println!("---- frozen MinkUNet plan ({plan_voxels} input voxels) ----");
    println!("{}", fmt::table(&["coord_index", "plan bytes/voxel"], &plan_table));

    let floor_point = points.iter().find(|p| p.voxels == FLOOR_VOXELS).expect("100k point");
    let bpv = |p: &IndexPoint, label: &str| {
        p.rows.iter().find(|(l, ..)| *l == label).map(|&(_, b, _)| b).expect("measured")
    };
    let ratio = bpv(floor_point, "hashmap") / bpv(floor_point, "mphf");
    println!("MPHF index is {ratio:.2}x smaller than the hashmap index at {FLOOR_VOXELS} voxels");

    let mut json = String::new();
    json.push_str("{\n  \"index_points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!("    {{\"voxels\": {}", p.voxels));
        for (label, bpv, ns) in &p.rows {
            json.push_str(&format!(
                ", \"{label}_bytes_per_voxel\": {bpv:.2}, \"{label}_ns_per_query\": {ns:.1}"
            ));
        }
        json.push_str(if i + 1 < points.len() { "},\n" } else { "}\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"plan_voxels\": {plan_voxels},\n"));
    for (label, b) in &plan_rows {
        json.push_str(&format!("  \"plan_{label}_bytes_per_voxel\": {b:.1},\n"));
    }
    json.push_str(&format!("  \"mphf_vs_hashmap_index_reduction_at_100k\": {ratio:.3}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");

    if ratio < FLOOR_FACTOR {
        eprintln!(
            "FAIL: MPHF index reduction {ratio:.2}x at {FLOOR_VOXELS} voxels is below the \
             {FLOOR_FACTOR}x floor"
        );
        std::process::exit(1);
    }
    Ok(())
}
