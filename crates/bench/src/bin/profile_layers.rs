//! Per-layer latency profile of a benchmark model — the engine-level
//! equivalent of `torch.profiler`, showing which layers the paper's
//! optimizations help and where residual time goes.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin profile_layers
//! [--scale F]`

use torchsparse_bench::{build_model, dataset_for, fmt, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset};
use torchsparse_gpusim::Stage;
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.3, 1);
    let bm = BenchmarkModel::MinkUNetHalfSemanticKitti;
    println!("== Per-layer profile: {} (TorchSparse, RTX 2080Ti) ==\n", bm.name());

    let ds = dataset_for(bm, args.scale);
    let input = ds.scene(args.seed)?;
    let model = build_model(bm, args.seed);
    let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    engine.context_mut().simulate_only = true;
    engine.context_mut().profile_layers = true;
    engine.run(model.as_ref(), &input)?;

    let profiles = engine.context().layer_profiles.clone();
    let total: f64 = profiles.iter().map(|p| p.timeline.total().as_f64()).sum();
    let mut rows = Vec::new();
    // Top 20 layers by latency.
    let mut sorted: Vec<_> = profiles.iter().collect();
    sorted.sort_by(|a, b| {
        b.timeline.total().as_f64().partial_cmp(&a.timeline.total().as_f64()).expect("finite")
    });
    for p in sorted.iter().take(20) {
        rows.push(vec![
            p.name.clone(),
            p.input_points.to_string(),
            format!("{}", p.timeline.total()),
            format!("{}", p.timeline.stage(Stage::MatMul)),
            format!("{}", p.timeline.data_movement()),
            format!("{:.1}%", 100.0 * p.timeline.total().as_f64() / total),
        ]);
    }
    println!("{}", fmt::table(&["layer", "points", "total", "matmul", "movement", "share"], &rows));
    println!("{} layers profiled, {:.2} ms total", profiles.len(), total / 1e3);
    Ok(())
}
