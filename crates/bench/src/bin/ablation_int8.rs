//! **Ablation (§4.3.1)**: why TorchSparse stops at FP16 — INT8 offers
//! diminishing returns because the scatter reduction still needs 16-bit
//! operands, so only the gather side benefits from 8-bit storage.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin ablation_int8
//! [--scale F]`

use torchsparse_bench::{build_model, dataset_for, fmt, measure, scenes, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset, Precision};
use torchsparse_gpusim::Stage;
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.6, 1);
    let bm = BenchmarkModel::MinkUNetFullSemanticKitti;
    println!("== Ablation: feature precision (FP32 / FP16 / INT8) ==");
    println!("workload: {} (scale {})\n", bm.name(), args.scale);

    let ds = dataset_for(bm, args.scale);
    let inputs = scenes(&ds, args.scenes, args.seed)?;
    let model = build_model(bm, args.seed);

    let mut rows = Vec::new();
    let mut base: Option<(f64, f64, f64)> = None;
    for (label, precision) in
        [("FP32", Precision::Fp32), ("FP16", Precision::Fp16), ("INT8", Precision::Int8)]
    {
        let mut cfg = EnginePreset::TorchSparse.config();
        cfg.precision = precision;
        let mut engine = Engine::with_config(cfg, DeviceProfile::rtx_2080ti());
        let t = measure(&mut engine, model.as_ref(), &inputs)?;
        let g = t.stage(Stage::Gather).as_f64();
        let s = t.stage(Stage::Scatter).as_f64();
        let total = t.total().as_f64();
        let (g0, s0, t0) = *base.get_or_insert((g, s, total));
        rows.push(vec![
            label.to_owned(),
            fmt::speedup(g0 / g),
            fmt::speedup(s0 / s),
            fmt::speedup(t0 / total),
        ]);
    }
    println!(
        "{}",
        fmt::table(
            &["precision", "gather speedup", "scatter speedup", "end-to-end speedup"],
            &rows
        )
    );
    println!("Expected shape (§4.3.1): INT8 speeds up gather further but scatter is");
    println!("pinned at 16-bit, so the end-to-end gain over FP16 is marginal.");
    Ok(())
}
