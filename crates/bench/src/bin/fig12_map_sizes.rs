//! **Figure 12**: per-offset map size distributions and the adaptive
//! grouping strategies they induce, SemanticKITTI vs nuScenes.
//!
//! The paper's observation: nuScenes maps are much smaller than
//! SemanticKITTI maps for the same MinkUNet, so the tuned grouping is more
//! aggressive on nuScenes (fewer groups). This binary prints the real
//! per-offset sizes of the first submanifold layer and the first
//! downsampling layer, plus the adaptive group partitions.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin fig12_map_sizes
//! [--scale F]`

use torchsparse_bench::{build_model, dataset_for, fmt, BenchArgs};
use torchsparse_core::grouping::plan_groups;
use torchsparse_core::tuning::tune_engine;
use torchsparse_core::{DeviceProfile, Engine, EnginePreset, GroupingStrategy};
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.5, 1);
    println!("== Figure 12: map-size distributions & grouping strategies ==\n");

    for (label, bm) in [
        ("SemanticKITTI (MinkUNet 1f)", BenchmarkModel::MinkUNetHalfSemanticKitti),
        ("nuScenes (MinkUNet 1f)", BenchmarkModel::MinkUNetNuScenes1),
    ] {
        let ds = dataset_for(bm, args.scale);
        let input = ds.scene(args.seed)?;
        let model = build_model(bm, args.seed);
        let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        engine.context_mut().simulate_only = true;
        tune_engine(&mut engine, model.as_ref(), std::slice::from_ref(&input), None)?;
        engine.context_mut().record_workloads = true;
        engine.run(model.as_ref(), &input)?;
        let workloads = engine.context().workloads.clone();

        let submanifold = workloads.iter().find(|w| w.submanifold).expect("submanifold layer");
        let downsample = workloads.iter().find(|w| !w.submanifold).expect("downsample layer");

        println!("---- {} ({} input voxels) ----", label, input.len());
        for (kind, w) in [("submanifold k3s1", submanifold), ("downsample k2s2", downsample)] {
            let max = *w.map_sizes.iter().max().unwrap_or(&1) as f64;
            let mut rows = Vec::new();
            for (n, &s) in w.map_sizes.iter().enumerate() {
                if s == 0 {
                    continue;
                }
                rows.push(vec![format!("W{n}"), s.to_string(), fmt::bar(s as f64, max, 36)]);
            }
            println!("{kind} layer '{}':", w.name);
            println!("{}", fmt::table(&["offset", "map size", ""], &rows));
        }

        let (epsilon, s_threshold) =
            engine.context().tuned_for(&submanifold.name).expect("layer tuned above");
        let strategy = GroupingStrategy::Adaptive { epsilon, s_threshold };
        let plan = plan_groups(&submanifold.map_sizes, true, strategy);
        println!(
            "tuned adaptive grouping (epsilon={epsilon}, S={s_threshold}): {} groups -> {:?}\n",
            plan.groups.len(),
            plan.groups.iter().map(|g| g.offsets.len()).collect::<Vec<_>>()
        );
    }

    println!("Paper reference: nuScenes maps are much smaller than SemanticKITTI's,");
    println!("so its tuned strategy uses fewer groups (8 vs 10 in Figure 12).");
    Ok(())
}
