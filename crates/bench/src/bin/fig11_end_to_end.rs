//! **Figures 11 & 14**: end-to-end comparison of TorchSparse against
//! MinkowskiEngine, SpConv (FP16) and the FP32 baseline, on seven models
//! across three GPUs.
//!
//! Figure 11 reports FPS *normalized* to TorchSparse = 1; Figure 14 reports
//! absolute FPS (pass `--absolute`). The paper's headline numbers: 1.6x
//! geomean speedup over MinkowskiEngine and 1.5x over SpConv.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin fig11_end_to_end
//! [--scale F] [--scenes N] [--absolute] [--device NAME]`

use torchsparse_bench::{build_model, dataset_for, fmt, geomean, measure, scenes, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset};
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.5, 1);
    let absolute = args.has_flag("--absolute");
    let device_filter: Option<String> =
        args.rest.iter().position(|a| a == "--device").and_then(|i| args.rest.get(i + 1).cloned());

    println!(
        "== Figure {}: end-to-end {} (scale {}, {} scenes/config) ==\n",
        if absolute { "14" } else { "11" },
        if absolute { "absolute FPS" } else { "FPS normalized to TorchSparse = 1" },
        args.scale,
        args.scenes
    );

    let systems = EnginePreset::figure11_systems();
    let mut geo: Vec<(EnginePreset, Vec<f64>)> = systems.iter().map(|&s| (s, Vec::new())).collect();

    for device in DeviceProfile::evaluation_devices() {
        if let Some(f) = &device_filter {
            if !device.name.to_lowercase().contains(&f.to_lowercase()) {
                continue;
            }
        }
        println!("---- {} ----", device.name);
        let mut rows = Vec::new();
        for bm in BenchmarkModel::ALL {
            let ds = dataset_for(bm, args.scale);
            let inputs = scenes(&ds, args.scenes, args.seed)?;
            let model = build_model(bm, args.seed);

            let mut fps = Vec::new();
            for &preset in &systems {
                let mut engine = Engine::new(preset, device.clone());
                let t = measure(&mut engine, model.as_ref(), &inputs)?;
                fps.push(t.total().fps());
            }
            let ts_fps = fps[systems
                .iter()
                .position(|&p| p == EnginePreset::TorchSparse)
                .expect("TorchSparse in systems")];

            let mut row = vec![bm.name().to_owned(), format!("{}", inputs[0].len())];
            for (i, &preset) in systems.iter().enumerate() {
                let value = if absolute { fps[i] } else { fps[i] / ts_fps };
                row.push(if absolute { format!("{value:.1}") } else { format!("{value:.2}") });
                if preset != EnginePreset::TorchSparse {
                    geo.iter_mut()
                        .find(|(p, _)| *p == preset)
                        .expect("system present")
                        .1
                        .push(ts_fps / fps[i]);
                }
            }
            rows.push(row);
        }
        let header: Vec<String> = std::iter::once("model".to_owned())
            .chain(std::iter::once("voxels".to_owned()))
            .chain(systems.iter().map(|p| p.name().to_owned()))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        println!("{}", fmt::table(&header_refs, &rows));
    }

    println!("---- TorchSparse geomean speedup across all models & devices ----");
    let mut rows = Vec::new();
    for (preset, speedups) in &geo {
        if *preset == EnginePreset::TorchSparse || speedups.is_empty() {
            continue;
        }
        rows.push(vec![format!("vs {}", preset.name()), fmt::speedup(geomean(speedups))]);
    }
    println!("{}", fmt::table(&["comparison", "geomean speedup"], &rows));
    println!("Paper reference: 1.6x over MinkowskiEngine, 1.5x over SpConv (FP16),");
    println!("with up to 2.3x single-model speedup on RTX 3090.");
    Ok(())
}
