//! **Table 1**: specialization of the adaptive grouping strategy for
//! datasets, models, and hardware.
//!
//! The paper tunes `(epsilon, S)` on one configuration and *transfers* the
//! strategy to another, showing that the strategy specialized for the
//! execution configuration always wins in latency (up to 13.5% efficiency
//! difference). Three 2x2 matrices are reported:
//!
//! - (a) datasets: SemanticKITTI vs nuScenes (MinkUNet, RTX 2080Ti);
//! - (b) models: MinkUNet 1.0x vs 0.5x (SemanticKITTI, RTX 2080Ti);
//! - (c) hardware: RTX 2080Ti vs GTX 1080Ti (nuScenes, MinkUNet).
//!
//! For each cell we report the matmul throughput in TFLOP/s (the paper's
//! metric) and the matmul latency in ms; the latency diagonal must win.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin
//! table1_specialization [--scale F] [--scenes N]`

use std::collections::HashMap;
use torchsparse_bench::{build_model, dataset_for, fmt, scenes, BenchArgs};
use torchsparse_core::grouping::plan_groups;
use torchsparse_core::tuning::{grouped_matmul_latency, tune_engine};
use torchsparse_core::LayerWorkload;
use torchsparse_core::{DeviceProfile, Engine, EnginePreset, GroupingStrategy, Precision};
use torchsparse_gpusim::GemmModel;
use torchsparse_models::BenchmarkModel;

/// One tunable/executable configuration: its recorded workloads, the tuned
/// per-layer parameters, and the device it tunes for.
struct Config {
    label: String,
    workloads: Vec<LayerWorkload>,
    tuned: HashMap<String, (f64, usize)>,
    device: DeviceProfile,
}

fn prepare(
    bm: BenchmarkModel,
    device: DeviceProfile,
    args: &BenchArgs,
    label: &str,
) -> Result<Config, Box<dyn std::error::Error>> {
    let ds = dataset_for(bm, args.scale);
    let inputs = scenes(&ds, args.scenes, args.seed)?;
    let model = build_model(bm, args.seed);
    let mut engine = Engine::new(EnginePreset::TorchSparse, device.clone());
    engine.context_mut().simulate_only = true;
    tune_engine(&mut engine, model.as_ref(), &inputs, None)?;
    engine.context_mut().record_workloads = true;
    engine.run(model.as_ref(), &inputs[0])?;
    Ok(Config {
        label: label.to_owned(),
        workloads: engine.context().workloads.clone(),
        tuned: engine.context().tuned_groups.clone(),
        device,
    })
}

/// Executes `exec`'s workloads with the strategy tuned by `opt`; returns
/// (TFLOP/s, latency_us). Layers whose names do not appear in the tuned map
/// (possible when transferring across models) fall back to the default
/// adaptive configuration, as a practitioner would.
fn evaluate(exec: &Config, opt: &Config) -> (f64, f64) {
    let gemm = GemmModel::new(exec.device.clone());
    let mut total_us = 0.0;
    let mut total_flops = 0.0;
    for w in &exec.workloads {
        let (epsilon, s_threshold) = opt.tuned.get(&w.name).copied().unwrap_or((0.3, 150_000));
        let strategy = GroupingStrategy::Adaptive { epsilon, s_threshold };
        total_us += grouped_matmul_latency(w, strategy, &gemm, Precision::Fp16).as_f64();
        let plan = plan_groups(&w.map_sizes, w.submanifold, strategy);
        total_flops +=
            plan.executed_rows(&w.map_sizes) as f64 * 2.0 * w.c_in as f64 * w.c_out as f64;
    }
    (total_flops / (total_us * 1e6), total_us)
}

fn print_matrix(title: &str, a: &Config, b: &Config) {
    println!("---- {title} ----");
    let mut rows = Vec::new();
    for exec in [a, b] {
        let mut row = vec![format!("execute on {}", exec.label)];
        let (tf_a, us_a) = evaluate(exec, a);
        let (tf_b, us_b) = evaluate(exec, b);
        row.push(format!("{tf_a:.1} TF/s ({:.2} ms)", us_a / 1e3));
        row.push(format!("{tf_b:.1} TF/s ({:.2} ms)", us_b / 1e3));
        let diag_wins = if std::ptr::eq(exec, a) { us_a <= us_b } else { us_b <= us_a };
        row.push(if diag_wins { "diagonal wins".into() } else { "transfer wins (!)".into() });
        rows.push(row);
    }
    let h_a = format!("optimized for {}", a.label);
    let h_b = format!("optimized for {}", b.label);
    println!("{}", fmt::table(&["", h_a.as_str(), h_b.as_str(), "latency check"], &rows));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.8, 2);
    println!("== Table 1: specialization of adaptive grouping ==");
    println!("scale={} scenes={}\n", args.scale, args.scenes);

    // (a) Datasets: MinkUNet (1f) on SK vs NS, RTX 2080Ti.
    let sk = prepare(
        BenchmarkModel::MinkUNetFullSemanticKitti,
        DeviceProfile::rtx_2080ti(),
        &args,
        "SemanticKITTI",
    )?;
    let ns =
        prepare(BenchmarkModel::MinkUNetNuScenes1, DeviceProfile::rtx_2080ti(), &args, "nuScenes")?;
    print_matrix("(a) dataset specialization (MinkUNet, RTX 2080Ti)", &sk, &ns);

    // (b) Models: MinkUNet 1.0x vs 0.5x on SK, RTX 2080Ti.
    let full = prepare(
        BenchmarkModel::MinkUNetFullSemanticKitti,
        DeviceProfile::rtx_2080ti(),
        &args,
        "MinkUNet (1.0x)",
    )?;
    let half = prepare(
        BenchmarkModel::MinkUNetHalfSemanticKitti,
        DeviceProfile::rtx_2080ti(),
        &args,
        "MinkUNet (0.5x)",
    )?;
    print_matrix("(b) model specialization (SemanticKITTI, RTX 2080Ti)", &full, &half);

    // (c) Hardware: RTX 2080Ti vs GTX 1080Ti, MinkUNet on nuScenes.
    let turing = prepare(
        BenchmarkModel::MinkUNetNuScenes1,
        DeviceProfile::rtx_2080ti(),
        &args,
        "RTX 2080Ti",
    )?;
    let pascal = prepare(
        BenchmarkModel::MinkUNetNuScenes1,
        DeviceProfile::gtx_1080ti(),
        &args,
        "GTX 1080Ti",
    )?;
    print_matrix("(c) hardware specialization (nuScenes, MinkUNet)", &turing, &pascal);

    println!("Paper reference (Table 1): the strategy specialized for the execution");
    println!("configuration always wins in latency; efficiency differs by up to 13.5%.");
    Ok(())
}
