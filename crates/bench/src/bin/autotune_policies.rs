//! Per-layer policy autotuning benchmark: cold search vs. warm start vs.
//! autotune-off defaults.
//!
//! At three geometry scales of the nuScenes stream, compiles the same
//! MinkUNet three ways — defaults (autotune off), a cold policy search
//! against an empty tuning database, and a warm start against the database
//! the cold search just wrote — then replays a geometry-static stream
//! through each. Asserts every variant is bitwise identical, that the warm
//! start performed **zero** candidate measurements, and that tuned
//! steady-state frame time is never worse than the defaults (geomean >=
//! 1.0x, at least one scale >= 1.1x). Writes `BENCH_tuning.json`.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin autotune_policies
//! [--scenes N] [--seed N] [--out PATH]`

use std::time::Instant;
use torchsparse_bench::{build_model, dataset_for, fmt, geomean, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset, OptimizationConfig, SparseTensor};
use torchsparse_data::geometry_static_stream;
use torchsparse_models::BenchmarkModel;

const JITTER: f32 = 0.02;
const SCALES: [f64; 3] = [0.05, 0.15, 0.45];

fn config(db: Option<&std::path::Path>) -> OptimizationConfig {
    let mut cfg = EnginePreset::TorchSparse.config();
    cfg.autotune_policies = db.is_some();
    cfg.tune_db = db.map(std::path::Path::to_path_buf);
    cfg
}

fn bits(t: &SparseTensor) -> Vec<u32> {
    t.feats().as_slice().iter().map(|v| v.to_bits()).collect()
}

struct ScaleResult {
    scale: f64,
    points: usize,
    default_ms: f64,
    tuned_ms: f64,
    cold_compile_ms: f64,
    warm_compile_ms: f64,
    cold_measured: usize,
    warm_started: usize,
    tuned_layers: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.0, 6);
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_tuning.json".to_owned());

    let bm = BenchmarkModel::MinkUNetNuScenes1;
    let model = build_model(bm, args.seed);
    let db = std::env::temp_dir().join(format!(
        "ts-bench-tune-{}-{}.json",
        std::process::id(),
        args.seed
    ));
    let _ = std::fs::remove_file(&db);

    println!("== Per-layer policy autotuning: {} ({} frames/scale) ==\n", bm.name(), args.scenes);

    let mut results = Vec::new();
    for scale in SCALES {
        let ds = dataset_for(bm, scale);
        let base = ds.scene(args.seed)?;
        let frames = geometry_static_stream(&base, args.scenes, JITTER, args.seed)?;

        // Defaults: autotune off, the global configuration's knobs.
        let mut off = Engine::with_config(config(None), DeviceProfile::rtx_2080ti())
            .compile(model.as_ref(), &frames[0])?;
        assert!(off.tuning_report().is_none(), "autotune off must not search");
        let mut default_ms = Vec::with_capacity(frames.len());
        let mut expected: Vec<Vec<u32>> = Vec::with_capacity(frames.len());
        for frame in &frames {
            expected.push(bits(&off.execute(frame)?));
            default_ms.push(off.last_latency().as_f64() / 1e3);
        }

        // Cold search: empty database for this scale's geometry class.
        let start = Instant::now();
        let mut cold = Engine::with_config(config(Some(&db)), DeviceProfile::rtx_2080ti())
            .compile(model.as_ref(), &frames[0])?;
        let cold_compile_ms = start.elapsed().as_secs_f64() * 1e3;
        let cold_report = cold.tuning_report().cloned().unwrap_or_default();
        let mut tuned_ms = Vec::with_capacity(frames.len());
        for (i, frame) in frames.iter().enumerate() {
            let y = cold.execute(frame)?;
            tuned_ms.push(cold.last_latency().as_f64() / 1e3);
            assert_eq!(bits(&y), expected[i], "scale {scale} frame {i}: tuned must match defaults");
        }

        // Warm start: the database now holds this geometry class.
        let start = Instant::now();
        let mut warm = Engine::with_config(config(Some(&db)), DeviceProfile::rtx_2080ti())
            .compile(model.as_ref(), &frames[0])?;
        let warm_compile_ms = start.elapsed().as_secs_f64() * 1e3;
        let warm_report = warm.tuning_report().cloned().unwrap_or_default();
        assert_eq!(
            warm_report.candidates_measured, 0,
            "scale {scale}: a warm-started session must measure nothing"
        );
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(
                bits(&warm.execute(frame)?),
                expected[i],
                "scale {scale} frame {i}: warm start must match defaults"
            );
        }

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        results.push(ScaleResult {
            scale,
            points: base.len(),
            default_ms: mean(&default_ms),
            tuned_ms: mean(&tuned_ms),
            cold_compile_ms,
            warm_compile_ms,
            cold_measured: cold_report.candidates_measured,
            warm_started: warm_report.warm_started,
            tuned_layers: cold_report.policies.len(),
        });
    }
    let _ = std::fs::remove_file(&db);

    let speedups: Vec<f64> = results.iter().map(|r| r.default_ms / r.tuned_ms).collect();
    let rows: Vec<Vec<String>> = results
        .iter()
        .zip(&speedups)
        .map(|(r, &s)| {
            vec![
                format!("{}", r.scale),
                r.points.to_string(),
                r.tuned_layers.to_string(),
                r.cold_measured.to_string(),
                r.warm_started.to_string(),
                format!("{:.1}", r.cold_compile_ms),
                format!("{:.1}", r.warm_compile_ms),
                format!("{:.3}", r.default_ms),
                format!("{:.3}", r.tuned_ms),
                fmt::speedup(s),
            ]
        })
        .collect();
    println!(
        "{}",
        fmt::table(
            &[
                "scale",
                "points",
                "tuned layers",
                "cold measured",
                "warm hits",
                "cold compile ms",
                "warm compile ms",
                "default ms",
                "tuned ms",
                "speedup",
            ],
            &rows
        )
    );
    let g = geomean(&speedups);
    let best = speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("\ngeomean speedup {g:.3}x | best scale {best:.3}x | all outputs bitwise identical");

    assert!(g >= 1.0, "tuned must never be slower than defaults overall (geomean {g:.4})");
    assert!(best >= 1.1, "at least one scale must gain >= 1.1x (best {best:.4})");
    assert!(
        results.iter().any(|r| r.cold_measured > 0),
        "at least one scale must be above the measurement floor"
    );
    assert!(
        results.iter().all(|r| r.cold_measured == 0 || r.warm_started > 0),
        "every measured scale must warm-start on the second compile"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{}\",\n", bm.name()));
    json.push_str(&format!("  \"frames_per_scale\": {},\n", args.scenes));
    json.push_str("  \"bitwise_identical\": true,\n");
    json.push_str("  \"scales\": [\n");
    for (i, (r, &s)) in results.iter().zip(&speedups).enumerate() {
        json.push_str(&format!(
            "    {{\"scale\": {}, \"points\": {}, \"tuned_layers\": {}, \
             \"cold_candidates_measured\": {}, \"warm_candidates_measured\": 0, \
             \"warm_started\": {}, \"cold_compile_ms\": {:.3}, \"warm_compile_ms\": {:.3}, \
             \"default_frame_ms\": {:.4}, \"tuned_frame_ms\": {:.4}, \"speedup\": {:.4}}}{}\n",
            r.scale,
            r.points,
            r.tuned_layers,
            r.cold_measured,
            r.warm_started,
            r.cold_compile_ms,
            r.warm_compile_ms,
            r.default_ms,
            r.tuned_ms,
            s,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"geomean_speedup\": {g:.4},\n"));
    json.push_str(&format!("  \"best_scale_speedup\": {best:.4}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");
    Ok(())
}
