//! GEMM microkernel benchmark: scalar vs SIMD vs SIMD+packed weights.
//!
//! Measures sustained GFLOP/s of every compute kernel on the
//! paper-characteristic GEMM shapes (`|map| x Cin x Cout`, Algorithm 2),
//! then runs a geometry-static compiled stream end-to-end with the SIMD
//! policy forced to `Scalar` and left at `Auto` to show the whole-network
//! effect. Non-FMA kernels are asserted bitwise identical per shape; the
//! FMA row is reported but never compared bitwise (it changes rounding and
//! is opt-in). Writes `BENCH_gemm.json`.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin gemm_kernels
//! [--scale F] [--scenes N] [--seed N] [--out PATH]`
//! (`--scenes` is the number of end-to-end streamed frames.)

use std::time::Instant;
use torchsparse_bench::{build_model, dataset_for, fmt, geomean, BenchArgs};
use torchsparse_core::runtime::ThreadPool;
use torchsparse_core::{DeviceProfile, Engine, OptimizationConfig, SimdPolicy};
use torchsparse_data::geometry_static_stream;
use torchsparse_models::BenchmarkModel;
use torchsparse_tensor::gemm::{mm_into_packed_on, mm_into_with, GemmOpts};
use torchsparse_tensor::{microkernel, Kernel, Matrix, PackedB};

/// Paper-characteristic `(|map|, Cin, Cout)` GEMM shapes: early layers are
/// many-row/narrow, bottleneck layers are fewer-row/wide (Figure 12).
const SHAPES: [(usize, usize, usize); 7] = [
    (4096, 4, 32),
    (16384, 32, 32),
    (16384, 32, 64),
    (8192, 64, 64),
    (4096, 96, 96),
    (2048, 128, 128),
    (1024, 256, 256),
];

/// Shapes with `Cin = Cout >= 64` — the acceptance target demands >= 2x
/// over scalar on these.
fn is_large(k: usize, n: usize) -> bool {
    k == n && k >= 64
}

const JITTER: f32 = 0.02;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(rows, cols, |_, _| {
        let u = (splitmix64(&mut state) >> 11) as f32 / (1u64 << 53) as f32;
        2.0 * u - 1.0
    })
}

/// One benchmark variant: a kernel plus whether B streams packed panels.
struct Variant {
    label: &'static str,
    opts: GemmOpts,
    packed: bool,
    /// FMA rows change rounding, so they are excluded from the bitwise
    /// cross-check against the scalar baseline.
    deterministic: bool,
}

/// Times `f` until it has run for at least ~30 ms (at least 3 times) and
/// returns the best per-call seconds.
fn best_time(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut calls = 0u32;
    while spent < 0.03 || calls < 3 {
        let start = Instant::now();
        f();
        let dt = start.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        calls += 1;
    }
    best
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.02, 12);
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_gemm.json".to_owned());

    let pool = ThreadPool::global();
    let active = microkernel::active();
    let variants = [
        Variant {
            label: "scalar",
            opts: GemmOpts::with_kernel(Kernel::Scalar),
            packed: false,
            deterministic: true,
        },
        Variant {
            label: "portable",
            opts: GemmOpts::with_kernel(Kernel::Portable),
            packed: false,
            deterministic: true,
        },
        Variant {
            label: "simd",
            opts: GemmOpts::with_kernel(active),
            packed: false,
            deterministic: true,
        },
        Variant {
            label: "simd+packed",
            opts: GemmOpts::with_kernel(active),
            packed: true,
            deterministic: true,
        },
        Variant {
            label: "simd+packed+fma",
            opts: GemmOpts { kernel: Some(active.with_fma()), fma: true, panel_rows: None },
            packed: true,
            deterministic: false,
        },
    ];

    println!(
        "== GEMM microkernels: active = {} (fma available: {}) ==\n",
        active.name(),
        active.with_fma().name()
    );

    // gflops[v][s] for variant v on shape s.
    let mut gflops = vec![vec![0.0f64; SHAPES.len()]; variants.len()];
    for (s, &(m, k, n)) in SHAPES.iter().enumerate() {
        let a = random_matrix(m, k, 0xA000 + s as u64);
        let b = random_matrix(k, n, 0xB000 + s as u64);
        let packed = PackedB::pack(&b);
        let flops = 2.0 * m as f64 * k as f64 * n as f64;

        let mut reference: Option<Vec<u32>> = None;
        for (v, variant) in variants.iter().enumerate() {
            let mut c = Matrix::zeros(m, n);
            let secs = best_time(|| {
                c.as_mut_slice().fill(0.0);
                if variant.packed {
                    mm_into_packed_on(pool, &a, &packed, &mut c, variant.opts).unwrap();
                } else {
                    mm_into_with(pool, &a, &b, &mut c, variant.opts).unwrap();
                }
            });
            gflops[v][s] = flops / secs / 1e9;
            if variant.deterministic {
                let bits: Vec<u32> = c.as_slice().iter().map(|x| x.to_bits()).collect();
                match &reference {
                    None => reference = Some(bits),
                    Some(r) => assert_eq!(
                        r, &bits,
                        "{}x{}x{m}: {} must match scalar bitwise",
                        k, n, variant.label
                    ),
                }
            }
        }
    }

    let mut rows = Vec::new();
    for (s, &(m, k, n)) in SHAPES.iter().enumerate() {
        let mut row = vec![format!("{m}x{k}x{n}")];
        for per_shape in &gflops {
            row.push(format!("{:.2}", per_shape[s]));
        }
        row.push(fmt::speedup(gflops[3][s] / gflops[0][s]));
        rows.push(row);
    }
    println!(
        "{}",
        fmt::table(
            &[
                "shape |map|xCinxCout",
                "scalar",
                "portable",
                "simd",
                "simd+packed",
                "+fma",
                "packed vs scalar"
            ],
            &rows
        )
    );

    let large_speedups: Vec<f64> = SHAPES
        .iter()
        .enumerate()
        .filter(|(_, &(_, k, n))| is_large(k, n))
        .map(|(s, _)| gflops[3][s] / gflops[0][s])
        .collect();
    let large_geomean = geomean(&large_speedups);
    println!(
        "geomean simd+packed speedup on Cin=Cout>=64 shapes: {large_geomean:.2}x (target >= 2x)\n"
    );

    // End-to-end: the same geometry-static compiled stream with the SIMD
    // policy forced off and left on auto. Outputs must be bitwise identical
    // (the non-FMA kernels preserve the scalar accumulation order).
    let bm = BenchmarkModel::MinkUNetNuScenes1;
    let ds = dataset_for(bm, args.scale);
    let base = ds.scene(args.seed)?;
    let frames = geometry_static_stream(&base, args.scenes, JITTER, args.seed)?;
    let model = build_model(bm, args.seed);

    let mut wall_ms = [0.0f64; 2];
    let mut e2e_bits: Option<Vec<u32>> = None;
    for (i, policy) in [SimdPolicy::Scalar, SimdPolicy::Auto].into_iter().enumerate() {
        let mut cfg = OptimizationConfig::torchsparse();
        cfg.simd = policy;
        // The A/B isolates the kernel choice; keep the autotuner from
        // varying other policy axes (fused route, chunking) between arms.
        cfg.autotune_policies = false;
        let mut session = Engine::with_config(cfg, DeviceProfile::rtx_2080ti())
            .compile(model.as_ref(), &frames[0])?;
        session.execute(&frames[0])?; // warm workspaces
        let start = Instant::now();
        let mut last = None;
        for frame in &frames {
            last = Some(session.execute(frame)?);
        }
        wall_ms[i] = start.elapsed().as_secs_f64() / frames.len() as f64 * 1e3;
        if let Some(y) = last {
            let bits: Vec<u32> = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
            match &e2e_bits {
                None => e2e_bits = Some(bits),
                Some(r) => assert_eq!(r, &bits, "SIMD on/off must agree bitwise end-to-end"),
            }
        }
    }
    let e2e_speedup = wall_ms[0] / wall_ms[1];
    println!(
        "end-to-end compiled stream ({}, {} frames, {} points): scalar {:.2} ms/frame, \
         simd {:.2} ms/frame ({:.2}x), outputs bitwise identical",
        bm.name(),
        frames.len(),
        base.len(),
        wall_ms[0],
        wall_ms[1],
        e2e_speedup
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"active_kernel\": \"{}\",\n", active.name()));
    json.push_str(&format!("  \"fma_kernel\": \"{}\",\n", active.with_fma().name()));
    json.push_str("  \"kernels_bitwise_identical\": true,\n");
    json.push_str("  \"gflops\": [\n");
    for (s, &(m, k, n)) in SHAPES.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"map\": {m}, \"c_in\": {k}, \"c_out\": {n}, \"scalar\": {:.3}, \
             \"portable\": {:.3}, \"simd\": {:.3}, \"simd_packed\": {:.3}, \"simd_packed_fma\": {:.3}, \
             \"packed_speedup_vs_scalar\": {:.3}}}{}\n",
            gflops[0][s],
            gflops[1][s],
            gflops[2][s],
            gflops[3][s],
            gflops[4][s],
            gflops[3][s] / gflops[0][s],
            if s + 1 < SHAPES.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"geomean_packed_speedup_large_shapes\": {large_geomean:.3},\n"));
    json.push_str(&format!(
        "  \"end_to_end\": {{\"model\": \"{}\", \"frames\": {}, \"points\": {}, \
         \"scalar_ms_per_frame\": {:.3}, \"simd_ms_per_frame\": {:.3}, \"speedup\": {:.3}, \
         \"bitwise_identical\": true}}\n",
        bm.name(),
        frames.len(),
        base.len(),
        wall_ms[0],
        wall_ms[1],
        e2e_speedup
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");

    if large_geomean < 2.0 {
        println!("WARNING: geomean packed speedup {large_geomean:.2}x below the 2x target");
    }
    Ok(())
}
