//! Incremental delta re-planning benchmark: temporal churn sweep.
//!
//! Streams a temporally churning nuScenes scene (a controlled fraction of
//! voxels inserted/removed per frame) through the same MinkUNet twice: once
//! with delta re-planning enabled — geometry misses patch the previous
//! frozen plan in place — and once with it disabled, so every miss pays a
//! from-scratch re-plan. Asserts bitwise-identical outputs per frame across
//! the two arms, that the patched arm's amortized mapping cost beats the
//! full re-plan by >=3x at 5% churn, and that churn above the configured
//! threshold falls back to full re-planning. Writes the sweep to
//! `BENCH_replan.json`.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin delta_replan
//! [--scale F] [--scenes N] [--seed N] [--out PATH]`
//! (`--scenes` is the number of streamed frames per churn level.)

use torchsparse_bench::{build_model, dataset_for, fmt, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset, PlanCacheStats};
use torchsparse_data::temporal_churn_stream;
use torchsparse_gpusim::Stage;
use torchsparse_models::BenchmarkModel;

/// Churn sweep, as fractions of the voxel set replaced per frame. The
/// default `delta_replan_max_churn` threshold (0.15) splits this range.
const CHURNS: [f64; 6] = [0.01, 0.02, 0.05, 0.10, 0.20, 0.50];

fn engine(delta: bool) -> Engine {
    let mut cfg = EnginePreset::TorchSparse.config();
    // Isolate re-planning: autotuning would add search time to the first
    // compile and nothing to the re-plans under measurement.
    cfg.autotune_policies = false;
    cfg.delta_replan = delta;
    Engine::with_config(cfg, DeviceProfile::rtx_2080ti())
}

struct Arm {
    /// Mean re-plan Stage::Mapping cost per geometry miss, ms.
    mapping_ms: f64,
    /// Mean total re-plan cost per geometry miss, ms.
    replan_ms: f64,
    stats: PlanCacheStats,
    bits: Vec<Vec<u32>>,
}

fn run_arm(
    model: &dyn torchsparse_core::Module,
    frames: &[torchsparse_core::SparseTensor],
    delta: bool,
) -> Result<Arm, Box<dyn std::error::Error>> {
    let mut session = engine(delta).compile(model, &frames[0])?;
    let mut mapping = 0.0;
    let mut replan = 0.0;
    let mut bits = Vec::with_capacity(frames.len());
    for (i, frame) in frames.iter().enumerate() {
        let y = session.execute(frame)?;
        bits.push(y.feats().as_slice().iter().map(|v| v.to_bits()).collect::<Vec<u32>>());
        // Frame 0 hits the compile-time plan; every later frame's geometry
        // changed, so the planning timeline holds that frame's re-plan.
        if i > 0 {
            mapping += session.planning_timeline().stage(Stage::Mapping).as_f64() / 1e3;
            replan += session.planning_timeline().total().as_f64() / 1e3;
        }
    }
    let misses = (frames.len() - 1).max(1) as f64;
    let stats = session.stats();
    Ok(Arm { mapping_ms: mapping / misses, replan_ms: replan / misses, stats, bits })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::var_os("TORCHSPARSE_DELTA_REPLAN").is_some() {
        eprintln!(
            "TORCHSPARSE_DELTA_REPLAN is pinned in the environment; this bench \
             controls the flag per arm — unset it and re-run"
        );
        return Ok(());
    }
    // Default scale is larger than the other benches': at toy point counts
    // the fixed per-op launch overhead dominates both arms and compresses
    // the patch-vs-full ratio below what any realistic scene shows.
    let args = BenchArgs::parse(0.3, 8);
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_replan.json".to_owned());

    let bm = BenchmarkModel::MinkUNetNuScenes1;
    let ds = dataset_for(bm, args.scale);
    let base = ds.scene(args.seed)?;
    let model = build_model(bm, args.seed);
    let threshold = EnginePreset::TorchSparse.config().delta_replan_max_churn;

    println!(
        "== Delta re-planning churn sweep: {} (scale {}, {} frames/level, {} points, \
         fallback threshold {:.0}%) ==\n",
        bm.name(),
        args.scale,
        args.scenes,
        base.len(),
        threshold * 100.0
    );

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut ratio_at_5pct = 0.0;
    for churn in CHURNS {
        let frames = temporal_churn_stream(&base, args.scenes, churn, args.seed)?;
        let full = run_arm(model.as_ref(), &frames, false)?;
        let patched = run_arm(model.as_ref(), &frames, true)?;
        for (i, (a, b)) in full.bits.iter().zip(&patched.bits).enumerate() {
            assert_eq!(
                a, b,
                "churn {churn}: frame {i} must be bitwise identical across full and delta arms"
            );
        }
        for (label, s) in [("full", &full.stats), ("delta", &patched.stats)] {
            assert_eq!(
                s.misses,
                s.full_replans + s.delta_patches + s.delta_fallbacks,
                "{label} arm: misses must partition into full/patched/fallback ({s:?})"
            );
        }
        assert_eq!(full.stats.delta_patches, 0, "the full arm must never patch ({:?})", full.stats);
        if churn > threshold {
            assert!(
                patched.stats.delta_fallbacks > 0,
                "churn {churn} above threshold {threshold} must fall back ({:?})",
                patched.stats
            );
        } else {
            assert_eq!(
                patched.stats.delta_fallbacks + patched.stats.full_replans,
                1,
                "churn {churn} under threshold {threshold}: only the initial compile may \
                 re-plan from scratch ({:?})",
                patched.stats
            );
        }
        let ratio = full.mapping_ms / patched.mapping_ms.max(1e-9);
        if (churn - 0.05).abs() < 1e-9 {
            ratio_at_5pct = ratio;
        }
        rows.push(vec![
            format!("{:.0}%", churn * 100.0),
            format!("{:.3}", full.mapping_ms),
            format!("{:.3}", patched.mapping_ms),
            fmt::speedup(ratio),
            patched.stats.delta_patches.to_string(),
            patched.stats.delta_fallbacks.to_string(),
        ]);
        json_rows.push(format!(
            "    {{\"churn\": {churn}, \"full_mapping_ms\": {:.4}, \
             \"delta_mapping_ms\": {:.4}, \"mapping_speedup\": {:.4}, \
             \"full_replan_ms\": {:.4}, \"delta_replan_ms\": {:.4}, \
             \"delta_patches\": {}, \"delta_fallbacks\": {}}}",
            full.mapping_ms,
            patched.mapping_ms,
            ratio,
            full.replan_ms,
            patched.replan_ms,
            patched.stats.delta_patches,
            patched.stats.delta_fallbacks,
        ));
    }
    println!(
        "{}",
        fmt::table(
            &["churn", "full mapping ms", "delta mapping ms", "speedup", "patches", "fallbacks"],
            &rows
        )
    );
    assert!(
        ratio_at_5pct >= 3.0,
        "delta patching must cut mapping cost >=3x at 5% churn (got {ratio_at_5pct:.2}x)"
    );
    println!(
        "\nmapping speedup at 5% churn: {ratio_at_5pct:.2}x (acceptance floor 3x); \
         bitwise identical across arms at every churn level"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{}\",\n", bm.name()));
    json.push_str(&format!("  \"scale\": {},\n", args.scale));
    json.push_str(&format!("  \"frames_per_level\": {},\n", args.scenes));
    json.push_str(&format!("  \"points\": {},\n", base.len()));
    json.push_str(&format!("  \"fallback_threshold\": {threshold},\n"));
    json.push_str("  \"bitwise_identical_per_frame\": true,\n");
    json.push_str(&format!("  \"mapping_speedup_at_5pct\": {ratio_at_5pct:.4},\n"));
    json.push_str(&format!("  \"sweep\": [\n{}\n  ]\n", json_rows.join(",\n")));
    json.push_str("}\n");
    std::fs::write(&out_path, json)?;
    println!("wrote {out_path}");
    Ok(())
}
