//! **Figure 7**: trading FLOPs for regularity — batched matmul speedup as a
//! function of group size.
//!
//! The paper collects the first sparse conv layer's per-offset workloads
//! from MinkUNet on SemanticKITTI and shows that batching them (padding to
//! the group maximum) is up to ~1.5x faster than executing them
//! sequentially. We replay the same experiment: real per-offset map sizes
//! from the synthetic SemanticKITTI, grouped at increasing batch sizes,
//! costed by the device GEMM model.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin fig7_batching
//! [--scale F]`

use torchsparse_bench::{build_model, dataset_for, fmt, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset};
use torchsparse_gpusim::{GemmModel, GemmShape, Micros, Precision};
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(1.0, 1);
    let bm = BenchmarkModel::MinkUNetFullSemanticKitti;
    println!("== Figure 7: batched matmul speedup vs group size ==");
    println!("workload: heaviest early conv layer of {} (scale {})\n", bm.name(), args.scale);

    // Record the model's workloads and pick the compute-heaviest
    // submanifold layer — the kind of layer the paper's Figure 7 profiles
    // (the 4-channel input stem is launch-bound, not GEMM-bound).
    let ds = dataset_for(bm, args.scale);
    let input = ds.scene(args.seed)?;
    let model = build_model(bm, args.seed);
    let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    engine.context_mut().simulate_only = true;
    engine.context_mut().record_workloads = true;
    engine.run(model.as_ref(), &input)?;
    let layer1 = engine
        .context()
        .workloads
        .iter()
        .find(|w| w.submanifold && w.c_in >= 16)
        .expect("model has a submanifold conv layer")
        .clone();
    println!("layer: {}", layer1.name);

    // Non-center offsets of the submanifold layer, in index order.
    let center = (layer1.map_sizes.len() - 1) / 2;
    let sizes: Vec<usize> = layer1
        .map_sizes
        .iter()
        .enumerate()
        .filter(|&(n, &s)| n != center && s > 0)
        .map(|(_, &s)| s)
        .collect();
    let (c_in, c_out) = (layer1.c_in, layer1.c_out);
    println!(
        "{} offsets, map sizes {}..{} rows, C_in={} C_out={}\n",
        sizes.len(),
        sizes.iter().min().unwrap(),
        sizes.iter().max().unwrap(),
        c_in,
        c_out
    );

    let gemm = GemmModel::new(DeviceProfile::rtx_2080ti());
    let latency_for_group_size = |g: usize| -> Micros {
        let mut total = Micros::ZERO;
        for chunk in sizes.chunks(g) {
            if chunk.len() == 1 {
                total += gemm.latency(GemmShape::mm(chunk[0], c_in, c_out), Precision::Fp16);
            } else {
                let padded = *chunk.iter().max().expect("non-empty chunk");
                total +=
                    gemm.latency(GemmShape::bmm(chunk.len(), padded, c_in, c_out), Precision::Fp16);
            }
        }
        total
    };

    let baseline = latency_for_group_size(1);
    let mut rows = Vec::new();
    let mut best = (1, 1.0f64);
    for g in [1usize, 2, 4, 6, 8, 13, 26] {
        let lat = latency_for_group_size(g);
        let speedup = baseline.as_f64() / lat.as_f64();
        if speedup > best.1 {
            best = (g, speedup);
        }
        rows.push(vec![
            g.to_string(),
            format!("{lat}"),
            fmt::speedup(speedup),
            fmt::bar(speedup, 2.0, 30),
        ]);
    }
    println!("{}", fmt::table(&["group size", "matmul latency", "speedup", ""], &rows));
    println!(
        "Best: group size {} at {} (paper Figure 7: batching brings up to ~1.5x).",
        best.0,
        fmt::speedup(best.1)
    );
    Ok(())
}
