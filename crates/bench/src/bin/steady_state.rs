//! Steady-state streaming benchmark: dynamic vs compiled execution.
//!
//! Replays a geometry-static nuScenes stream (identical coordinates,
//! jittered features — the multi-frame fused LiDAR workload) through the
//! same MinkUNet twice: once dynamically, re-deriving kernel maps and
//! grouping plans every frame, and once through a
//! [`CompiledSession`](torchsparse_core::CompiledSession) that planned once
//! at compile time. Asserts bitwise-identical outputs per frame and writes
//! the per-frame latency series to `BENCH_compiled.json`.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin steady_state
//! [--scale F] [--scenes N] [--seed N] [--out PATH]`
//! (`--scenes` is the number of streamed frames.)

use torchsparse_bench::{build_model, dataset_for, fmt, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset};
use torchsparse_data::geometry_static_stream;
use torchsparse_gpusim::Stage;
use torchsparse_models::BenchmarkModel;

const JITTER: f32 = 0.02;

fn engine() -> Engine {
    let mut cfg = EnginePreset::TorchSparse.config();
    // This bench isolates plan reuse: the dynamic arm cannot autotune, so
    // the compiled arm must not either (the `autotune_policies` bench
    // measures the tuned-vs-default delta separately).
    cfg.autotune_policies = false;
    Engine::with_config(cfg, DeviceProfile::rtx_2080ti())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.02, 20);
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_compiled.json".to_owned());

    let bm = BenchmarkModel::MinkUNetNuScenes1;
    let ds = dataset_for(bm, args.scale);
    let base = ds.scene(args.seed)?;
    let frames = geometry_static_stream(&base, args.scenes, JITTER, args.seed)?;
    let model = build_model(bm, args.seed);

    println!(
        "== Steady-state streaming: {} (scale {}, {} frames, {} points) ==\n",
        bm.name(),
        args.scale,
        frames.len(),
        base.len()
    );

    // Dynamic path: full plan + execute every frame.
    let mut dynamic = engine();
    let mut dyn_ms = Vec::with_capacity(frames.len());
    let mut dyn_mapping_ms = Vec::with_capacity(frames.len());
    let mut dyn_bits: Vec<Vec<u32>> = Vec::with_capacity(frames.len());
    for frame in &frames {
        let y = dynamic.run(model.as_ref(), frame)?;
        dyn_ms.push(dynamic.last_latency().as_f64() / 1e3);
        dyn_mapping_ms.push(dynamic.last_timeline().stage(Stage::Mapping).as_f64() / 1e3);
        dyn_bits.push(y.feats().as_slice().iter().map(|v| v.to_bits()).collect());
    }

    // Compiled path: plan once against frame 0's geometry, then stream.
    let mut session = engine().compile(model.as_ref(), &frames[0])?;
    let planning_ms = session.planning_timeline().total().as_f64() / 1e3;
    let mut ses_ms = Vec::with_capacity(frames.len());
    for (i, frame) in frames.iter().enumerate() {
        let y = session.execute(frame)?;
        ses_ms.push(session.last_latency().as_f64() / 1e3);
        let bits: Vec<u32> = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            dyn_bits[i], bits,
            "frame {i}: compiled output must be bitwise identical to dynamic"
        );
        assert_eq!(
            session.last_timeline().stage(Stage::Mapping).as_f64(),
            0.0,
            "frame {i}: a plan hit must not rebuild maps"
        );
        assert!(
            ses_ms[i] < dyn_ms[i],
            "frame {i}: compiled {:.3} ms must beat dynamic {:.3} ms",
            ses_ms[i],
            dyn_ms[i]
        );
    }
    let stats = session.stats();
    assert_eq!(stats.hits, frames.len() as u64, "every streamed frame must hit the plan");
    assert_eq!(stats.invalidations, 0);

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let dyn_mean = mean(&dyn_ms);
    let ses_mean = mean(&ses_ms);
    let mapping_mean = mean(&dyn_mapping_ms);
    let speedup = dyn_mean / ses_mean;

    let mut rows = Vec::new();
    for i in 0..frames.len() {
        rows.push(vec![
            i.to_string(),
            format!("{:.3}", dyn_ms[i]),
            format!("{:.3}", dyn_mapping_ms[i]),
            format!("{:.3}", ses_ms[i]),
            fmt::speedup(dyn_ms[i] / ses_ms[i]),
        ]);
    }
    println!(
        "{}",
        fmt::table(&["frame", "dynamic ms", "dyn mapping ms", "compiled ms", "speedup"], &rows)
    );
    println!(
        "planning (once): {planning_ms:.3} ms | steady-state mean: dynamic {dyn_mean:.3} ms, \
         compiled {ses_mean:.3} ms ({speedup:.2}x) | mapping amortized: {mapping_mean:.3} ms/frame"
    );
    println!(
        "plan cache: {} hits, {} misses, {} invalidations over {} frames",
        stats.hits,
        stats.misses,
        stats.invalidations,
        frames.len()
    );

    let series = |v: &[f64]| v.iter().map(|x| format!("{x:.4}")).collect::<Vec<_>>().join(", ");
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{}\",\n", bm.name()));
    json.push_str(&format!("  \"scale\": {},\n", args.scale));
    json.push_str(&format!("  \"frames\": {},\n", frames.len()));
    json.push_str(&format!("  \"points\": {},\n", base.len()));
    json.push_str(&format!("  \"feature_jitter\": {JITTER},\n"));
    json.push_str("  \"bitwise_identical_per_frame\": true,\n");
    json.push_str(&format!("  \"planning_ms\": {planning_ms:.4},\n"));
    json.push_str(&format!("  \"dynamic_ms\": [{}],\n", series(&dyn_ms)));
    json.push_str(&format!("  \"dynamic_mapping_ms\": [{}],\n", series(&dyn_mapping_ms)));
    json.push_str(&format!("  \"compiled_ms\": [{}],\n", series(&ses_ms)));
    json.push_str(&format!(
        "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"invalidations\": {}}},\n",
        stats.hits, stats.misses, stats.invalidations
    ));
    json.push_str(&format!("  \"dynamic_mean_ms\": {dyn_mean:.4},\n"));
    json.push_str(&format!("  \"compiled_mean_ms\": {ses_mean:.4},\n"));
    json.push_str(&format!("  \"amortized_mapping_ms_per_frame\": {mapping_mean:.4},\n"));
    json.push_str(&format!("  \"steady_state_speedup\": {speedup:.4}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");
    Ok(())
}
