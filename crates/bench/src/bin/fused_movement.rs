//! Fused vs unfused data-movement benchmark (the PR-5 counterpart of the
//! paper's §4.3 fused/locality-aware gather-scatter ablation, measured on
//! the real CPU executor instead of the GPU cost model).
//!
//! Runs the same geometry-static compiled MinkUNet stream twice — once
//! with `fused_execution` off (materialized gather/psum workspace buffers
//! around every GEMM, the PR-4 path) and once with the fused
//! gather–GEMM–scatter microkernel — asserts the outputs are bitwise
//! identical, checks that fused steady-state frames take zero workspace
//! buffers, and writes `BENCH_fused.json`.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin fused_movement
//! [--scale F] [--scenes N] [--seed N] [--out PATH]`
//! (`--scenes` is the number of streamed frames.)

use std::time::Instant;
use torchsparse_bench::{build_model, dataset_for, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, OptimizationConfig};
use torchsparse_data::geometry_static_stream;
use torchsparse_models::BenchmarkModel;

const JITTER: f32 = 0.02;

/// End-to-end speedup the fused path must reach over the buffered path.
const TARGET_SPEEDUP: f64 = 1.25;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The A/B below toggles `fused_execution` per engine; the process-wide
    // TORCHSPARSE_FUSED override would silently force both arms onto one
    // path and the comparison would measure nothing.
    if std::env::var("TORCHSPARSE_FUSED").is_ok() {
        eprintln!("TORCHSPARSE_FUSED is set: it overrides the per-engine A/B this bench");
        eprintln!("performs — unset it and rerun.");
        std::process::exit(2);
    }
    // Default scale matches `parallel_scaling` (0.05): data movement is a
    // per-entry cost, so the fused win is measured where maps are big
    // enough for movement to dominate the fixed per-frame planning and
    // cost-model overheads shared by both arms.
    let args = BenchArgs::parse(0.05, 8);
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_fused.json".to_owned());

    let bm = BenchmarkModel::MinkUNetNuScenes1;
    let ds = dataset_for(bm, args.scale);
    let base = ds.scene(args.seed)?;
    let frames = geometry_static_stream(&base, args.scenes, JITTER, args.seed)?;
    let model = build_model(bm, args.seed);

    println!(
        "== Fused gather-GEMM-scatter: {} ({} frames, {} points) ==\n",
        bm.name(),
        frames.len(),
        base.len()
    );

    // wall[0] = unfused (PR-4 buffered path), wall[1] = fused.
    let mut wall_ms = [0.0f64; 2];
    let mut takes_per_frame = [0.0f64; 2];
    let mut bits: Option<Vec<u32>> = None;
    for (i, fused) in [false, true].into_iter().enumerate() {
        let mut cfg = OptimizationConfig::torchsparse();
        cfg.fused_execution = fused;
        // The autotuner selects the fused route per layer — the very knob
        // this A/B pins — so it stays off here.
        cfg.autotune_policies = false;
        let mut session = Engine::with_config(cfg, DeviceProfile::rtx_2080ti())
            .compile(model.as_ref(), &frames[0])?;
        session.execute(&frames[0])?; // warm workspaces and packed weights
        let takes_before = session.engine().context().runtime.workspaces.total_takes();
        let start = Instant::now();
        let mut last = None;
        for frame in &frames {
            last = Some(session.execute(frame)?);
        }
        wall_ms[i] = start.elapsed().as_secs_f64() / frames.len() as f64 * 1e3;
        let takes_after = session.engine().context().runtime.workspaces.total_takes();
        takes_per_frame[i] = (takes_after - takes_before) as f64 / frames.len() as f64;
        if let Some(y) = last {
            let b: Vec<u32> = y.feats().as_slice().iter().map(|v| v.to_bits()).collect();
            match &bits {
                None => bits = Some(b),
                Some(r) => {
                    assert_eq!(r, &b, "fused and unfused outputs must be bitwise identical")
                }
            }
        }
    }
    assert_eq!(
        takes_per_frame[1], 0.0,
        "fused steady-state frames must take zero gather/psum workspace buffers"
    );

    let speedup = wall_ms[0] / wall_ms[1];
    println!(
        "unfused {:.2} ms/frame ({:.1} workspace takes/frame), fused {:.2} ms/frame \
         (0 workspace takes/frame): {speedup:.2}x, outputs bitwise identical",
        wall_ms[0], takes_per_frame[0], wall_ms[1]
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{}\",\n", bm.name()));
    json.push_str(&format!("  \"frames\": {},\n", frames.len()));
    json.push_str(&format!("  \"points\": {},\n", base.len()));
    json.push_str(&format!("  \"unfused_ms_per_frame\": {:.3},\n", wall_ms[0]));
    json.push_str(&format!("  \"fused_ms_per_frame\": {:.3},\n", wall_ms[1]));
    json.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    json.push_str("  \"bitwise_identical\": true,\n");
    json.push_str(&format!(
        "  \"unfused_workspace_takes_per_frame\": {:.1},\n",
        takes_per_frame[0]
    ));
    json.push_str("  \"fused_workspace_takes_per_frame\": 0,\n");
    json.push_str("  \"fused_workspace_fresh_allocations_per_frame\": 0\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");

    if speedup < TARGET_SPEEDUP {
        println!("WARNING: fused speedup {speedup:.2}x below the {TARGET_SPEEDUP}x target");
    }
    Ok(())
}
