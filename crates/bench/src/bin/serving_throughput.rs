//! Multi-stream serving benchmark: Poisson arrivals through MinkUNet.
//!
//! Drives the fault-isolated serving runtime (`torchsparse-serve`) with
//! deterministic Poisson arrivals at 1/8/64 concurrent streams over one
//! shared compiled MinkUNet, reporting frames/sec and p50/p99 latency.
//! Two stress scenarios ride along:
//!
//! - **overload**: offered load several times service capacity against a
//!   small bounded queue — shedding must engage (nonzero shed counter,
//!   queue depth bounded by its capacity) instead of latency growing
//!   unboundedly;
//! - **fault storm**: ~10% of frames on every stream draw an injected
//!   worker panic or deadline overrun; no panic may escape the serving
//!   layer, poisoned streams are quarantined and rebuilt, and every
//!   successful frame — on faulted and non-faulted streams alike — must
//!   stay bitwise identical to a solo single-stream replay.
//!
//! Writes `BENCH_serve.json`.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin serving_throughput
//! [--scale F] [--seed N] [--out PATH] [--quick]`

use std::sync::Arc;
use std::time::{Duration, Instant};
use torchsparse_bench::{build_model, dataset_for, percentile, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset, FaultSite, SparseTensor};
use torchsparse_data::{geometry_static_stream, poisson_arrivals};
use torchsparse_models::BenchmarkModel;
use torchsparse_serve::{serve, Completion, ServiceConfig, ServiceOutcome};

const JITTER: f32 = 0.02;

fn bits(t: &SparseTensor) -> Vec<u32> {
    t.feats().as_slice().iter().map(|v| v.to_bits()).collect()
}

/// One worker thread per stream already parallelizes the service, so each
/// stream's engine runs single-threaded — 64 streams must not spawn
/// 64 x ncpu workers.
fn serving_engine() -> Engine {
    let mut config = EnginePreset::TorchSparse.config();
    config.threads = Some(1);
    Engine::with_config(config, DeviceProfile::rtx_2080ti())
}

struct RunStats {
    fps: f64,
    p50_ms: f64,
    p99_ms: f64,
    wall_s: f64,
}

fn latency_stats(outcome: &ServiceOutcome, wall: Duration) -> RunStats {
    let lat_ms: Vec<f64> = outcome
        .completions
        .iter()
        .filter(|c| c.result.is_ok())
        .map(|c| c.latency.as_secs_f64() * 1e3)
        .collect();
    RunStats {
        fps: outcome.health.completed as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: percentile(&lat_ms, 0.50),
        p99_ms: percentile(&lat_ms, 0.99),
        wall_s: wall.as_secs_f64(),
    }
}

/// Submits every stream's frames on its Poisson schedule, merged into one
/// global timeline. Returns how many submissions were refused (shed or
/// rejected).
fn drive_poisson(
    svc: &torchsparse_serve::ServiceHandle<'_>,
    frames: &[Vec<SparseTensor>],
    rate_hz: f64,
    seed: u64,
) -> usize {
    let mut events: Vec<(u64, usize, u64)> = Vec::new();
    for (stream, stream_frames) in frames.iter().enumerate() {
        let arrivals = poisson_arrivals(stream_frames.len(), rate_hz, seed + stream as u64);
        for (frame, &at_us) in arrivals.iter().enumerate() {
            events.push((at_us, stream, frame as u64));
        }
    }
    events.sort_unstable();
    let t0 = Instant::now();
    let mut refused = 0usize;
    for (at_us, stream, frame) in events {
        let due = Duration::from_micros(at_us);
        if let Some(wait) = due.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        let tensor = Arc::new(frames[stream][frame as usize].clone());
        if svc.submit(stream, frame, tensor).is_err() {
            refused += 1;
        }
    }
    refused
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.01, 0);
    let quick = args.has_flag("--quick");
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());

    // Injected worker panics are expected in the fault storm; keep their
    // default backtrace spew out of the report while leaving every other
    // panic loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected worker-panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let bm = BenchmarkModel::MinkUNetNuScenes1;
    let ds = dataset_for(bm, args.scale);
    let base = ds.scene(args.seed)?;
    let model = build_model(bm, args.seed);

    let session = serving_engine().compile(model.as_ref(), &base)?;
    let (shared, mut warm) = session.into_parts();

    // Calibrate the offered load from one real warm frame.
    let warm_t0 = Instant::now();
    shared.execute_on(&mut warm, &base)?;
    let frame_wall = warm_t0.elapsed().max(Duration::from_micros(100));
    let capacity_hz = 1.0 / frame_wall.as_secs_f64();
    drop(warm);

    println!(
        "== Serving throughput: {} (scale {}, {} points, ~{:.1} ms/frame, \
         per-stream capacity ~{:.1} Hz) ==\n",
        bm.name(),
        args.scale,
        base.len(),
        frame_wall.as_secs_f64() * 1e3,
        capacity_hz
    );

    let stream_counts: &[usize] = if quick { &[1, 8] } else { &[1, 8, 64] };
    let mut json_runs = Vec::new();
    for &streams in stream_counts {
        let frames_per_stream = if quick {
            2
        } else {
            match streams {
                1 => 32,
                8 => 12,
                _ => 2,
            }
        };
        // Offer ~50% of one worker's capacity per stream, scaled down when
        // streams outnumber cores: stable queues, so p50/p99 reflect
        // service latency rather than saturation.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let rate_hz = 0.5 * capacity_hz * (cores as f64 / streams as f64).min(1.0);
        let frames: Vec<Vec<SparseTensor>> = (0..streams)
            .map(|s| geometry_static_stream(&base, frames_per_stream, JITTER, args.seed + s as u64))
            .collect::<Result<_, _>>()?;

        let cfg = ServiceConfig { keep_outputs: false, ..ServiceConfig::default() };
        let t0 = Instant::now();
        let (_, outcome) =
            serve(&shared, streams, &cfg, |svc| drive_poisson(svc, &frames, rate_hz, args.seed))?;
        let wall = t0.elapsed();
        let stats = latency_stats(&outcome, wall);
        let h = &outcome.health;
        println!(
            "streams {streams:>2}: {:>3} frames in {:.2}s -> {:.1} fps | p50 {:.1} ms, \
             p99 {:.1} ms | {h}",
            h.completed, stats.wall_s, stats.fps, stats.p50_ms, stats.p99_ms
        );
        assert_eq!(h.quarantined, 0, "no faults are injected in throughput runs");
        json_runs.push(format!(
            "    {{\"streams\": {streams}, \"frames_per_stream\": {frames_per_stream}, \
             \"offered_hz_per_stream\": {rate_hz:.2}, \"fps\": {:.2}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"wall_s\": {:.3}, \"admitted\": {}, \"completed\": {}, \
             \"shed\": {}, \"max_queue_depth\": {}}}",
            stats.fps,
            stats.p50_ms,
            stats.p99_ms,
            stats.wall_s,
            h.admitted,
            h.completed,
            h.shed,
            h.max_queue_depth
        ));
    }

    // Overload: several times capacity against a small bounded queue —
    // shedding must engage instead of queues (and latency) growing
    // without bound.
    let ov_streams = if quick { 2 } else { 8 };
    let ov_frames_n = if quick { 6 } else { 16 };
    let ov_queue = 2usize;
    let ov_rate = 4.0 * capacity_hz;
    let ov_frames: Vec<Vec<SparseTensor>> = (0..ov_streams)
        .map(|s| geometry_static_stream(&base, ov_frames_n, JITTER, args.seed + 100 + s as u64))
        .collect::<Result<_, _>>()?;
    let ov_cfg =
        ServiceConfig { queue_capacity: ov_queue, keep_outputs: false, ..ServiceConfig::default() };
    let t0 = Instant::now();
    let (refused, ov) =
        serve(&shared, ov_streams, &ov_cfg, |svc| drive_poisson(svc, &ov_frames, ov_rate, 777))?;
    let ov_stats = latency_stats(&ov, t0.elapsed());
    println!(
        "\noverload ({ov_streams} streams at {:.1} Hz each, queue {ov_queue}): {} | \
         refused {refused} | p99 {:.1} ms",
        ov_rate, ov.health, ov_stats.p99_ms
    );
    assert!(
        ov.health.shed > 0,
        "offered load 4x capacity against queue depth {ov_queue} must shed: {}",
        ov.health
    );
    assert!(
        ov.health.max_queue_depth <= ov_queue,
        "queue depth {} must stay within its bound {ov_queue}",
        ov.health.max_queue_depth
    );

    // Fault storm: ~10% of frames draw an injected panic or deadline
    // overrun. Solo replays establish the bitwise ground truth per stream.
    let storm_streams = if quick { 2 } else { 8 };
    let storm_frames_n = if quick { 6 } else { 12 };
    let storm_frames: Vec<Vec<SparseTensor>> = (0..storm_streams)
        .map(|s| geometry_static_stream(&base, storm_frames_n, JITTER, args.seed + 200 + s as u64))
        .collect::<Result<_, _>>()?;
    let mut solo_bits: Vec<Vec<Vec<u32>>> = Vec::with_capacity(storm_streams);
    for stream_frames in &storm_frames {
        let mut solo = shared.new_stream()?;
        let mut outs = Vec::with_capacity(stream_frames.len());
        for f in stream_frames {
            outs.push(bits(&shared.execute_on(&mut solo, f)?));
        }
        solo_bits.push(outs);
    }

    // ~10% of frames faulted: 5% draw a worker panic (probed once per
    // attempt) and 5% a deadline overrun. The overrun site is probed at
    // every stage boundary — once per layer op — so its per-check
    // probability is the per-frame target spread across the op count.
    let (panic_p, overrun_frame_p) = if quick { (0.15, 0.15) } else { (0.05, 0.05) };
    let overrun_p = overrun_frame_p / shared.num_ops().max(1) as f64;
    let storm_cfg = ServiceConfig {
        // The storm driver saturate-submits a whole stream up front; the
        // queue must hold it so refusals don't masquerade as fault fallout.
        queue_capacity: storm_frames_n,
        faults: vec![(FaultSite::WorkerPanic, panic_p), (FaultSite::DeadlineOverrun, overrun_p)],
        fault_seed: args.seed,
        max_retries: 2,
        base_backoff_us: 50,
        keep_outputs: true,
        ..ServiceConfig::default()
    };
    let (_, storm) = serve(&shared, storm_streams, &storm_cfg, |svc| {
        // Steady 10 Hz-equivalent pacing is irrelevant here; saturate.
        for (stream, stream_frames) in storm_frames.iter().enumerate() {
            for (frame, f) in stream_frames.iter().enumerate() {
                let _ = svc.submit(stream, frame as u64, Arc::new(f.clone()));
            }
        }
    })?;
    let h = &storm.health;
    println!("\nfault storm ({storm_streams} streams, 10% injected): {h}");
    assert!(h.quarantined > 0, "the storm seed must inject at least one panic: {h}");
    assert_eq!(h.quarantined, h.rebuilt, "every quarantined stream must be rebuilt");
    let mut checked = 0usize;
    for c in &storm.completions {
        if let Ok(Some(out)) = &c.result {
            assert_eq!(
                bits(out),
                solo_bits[c.stream][c.frame as usize],
                "stream {} frame {}: serving output must be bitwise identical to solo",
                c.stream,
                c.frame
            );
            checked += 1;
        }
    }
    let faulted: Vec<usize> =
        h.streams.iter().filter(|s| !s.degradation.is_empty()).map(|s| s.stream).collect();
    let clean_streams = storm_streams - faulted.len();
    let clean_complete = h
        .streams
        .iter()
        .filter(|s| s.degradation.is_empty())
        .all(|s| s.completed == storm_frames_n as u64);
    println!(
        "bitwise-checked {checked} successful frames ({clean_streams}/{storm_streams} streams \
         untouched by faults; faulted: {faulted:?})"
    );
    assert!(checked > 0, "the storm must still complete frames");
    assert!(clean_complete, "non-faulted streams must complete every frame: {h}");
    if !quick {
        assert!(
            clean_streams >= 1,
            "at 5%/site over {storm_streams} streams, at least one stream must stay fault-free"
        );
    }

    let retried_frames = storm.completions.iter().filter(|c: &&Completion| c.attempts > 1).count();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{}\",\n", bm.name()));
    json.push_str(&format!("  \"scale\": {},\n", args.scale));
    json.push_str(&format!("  \"points\": {},\n", base.len()));
    json.push_str(&format!("  \"frame_wall_ms\": {:.3},\n", frame_wall.as_secs_f64() * 1e3));
    json.push_str("  \"throughput\": [\n");
    json.push_str(&json_runs.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"overload\": {{\"streams\": {ov_streams}, \"queue_capacity\": {ov_queue}, \
         \"offered_hz_per_stream\": {ov_rate:.2}, \"admitted\": {}, \"shed\": {}, \
         \"completed\": {}, \"max_queue_depth\": {}, \"p99_ms\": {:.3}}},\n",
        ov.health.admitted,
        ov.health.shed,
        ov.health.completed,
        ov.health.max_queue_depth,
        ov_stats.p99_ms
    ));
    json.push_str(&format!(
        "  \"fault_storm\": {{\"streams\": {storm_streams}, \"frames_per_stream\": \
         {storm_frames_n}, \"panic_probability_per_frame\": {panic_p}, \"overrun_probability_per_frame\": \
         {overrun_frame_p}, \"quarantined\": {}, \
         \"rebuilt\": {}, \"deadline_missed\": {}, \"retried_attempts\": {}, \
         \"retried_frames\": {retried_frames}, \"completed\": {}, \"failed\": {}, \
         \"bitwise_checked_frames\": {checked}, \"clean_streams\": {clean_streams}, \
         \"bitwise_identical_to_solo\": true}}\n",
        h.quarantined, h.rebuilt, h.deadline_missed, h.retried, h.completed, h.failed
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");
    Ok(())
}
