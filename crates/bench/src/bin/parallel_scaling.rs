//! Thread-scaling benchmark for the parallel execution runtime.
//!
//! Runs a real (non-simulate-only) MinkUNet forward pass at several worker
//! counts, checks the outputs are bitwise identical, and records both
//! measured wall-clock and *modeled* scaling to `BENCH_parallel.json`.
//!
//! The modeled numbers exist because CI hosts may expose a single core:
//! a recording pool captures the per-task durations of every parallel
//! region, and [`modeled_makespan`] replays that trace on N lanes with a
//! greedy least-loaded schedule (wave barriers preserved). On a single-core
//! host the measured column is flat while the modeled column shows the
//! parallel fraction the runtime actually exposes.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin parallel_scaling
//! [--scale F] [--scenes N] [--out PATH]`

use std::sync::Arc;
use std::time::Instant;
use torchsparse_bench::{build_model, dataset_for, fmt, scenes, BenchArgs};
use torchsparse_core::runtime::{modeled_makespan, ThreadPool};
use torchsparse_core::{fused_enabled, DeviceProfile, Engine, OptimizationConfig};
use torchsparse_models::BenchmarkModel;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const MODEL_LANES: [usize; 5] = [1, 2, 4, 8, 16];

fn engine_with_threads(threads: usize) -> Engine {
    let mut cfg = OptimizationConfig::torchsparse();
    cfg.threads = Some(threads);
    Engine::with_config(cfg, DeviceProfile::rtx_2080ti())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.05, 2);
    let out_path = args
        .rest
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.rest.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_parallel.json".to_owned());
    let min_parallel_fraction: Option<f64> = args
        .rest
        .iter()
        .position(|a| a == "--min-parallel-fraction")
        .and_then(|i| args.rest.get(i + 1))
        .and_then(|v| v.parse().ok());

    let bm = BenchmarkModel::MinkUNetHalfSemanticKitti;
    let ds = dataset_for(bm, args.scale);
    let inputs = scenes(&ds, args.scenes, args.seed)?;
    let model = build_model(bm, args.seed);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!(
        "== Parallel runtime scaling: {} (scale {}, {} scenes, host cores {}) ==\n",
        bm.name(),
        args.scale,
        args.scenes,
        host_cores
    );

    // Measured wall-clock at each worker count, real numerics. The first
    // pass warms the workspace arena so steady-state reuse is what gets
    // timed; outputs are compared bitwise against the 1-thread run.
    //
    // On a single-core host multi-thread wall clock is pure OS
    // time-slicing — a "speedup" column of ~0.95x would only mislead — so
    // those rows are skipped outright (and marked as such in the JSON);
    // the modeled replay below is the scaling signal there.
    let measured_counts: Vec<usize> =
        if host_cores == 1 { vec![1] } else { THREAD_COUNTS.to_vec() };
    let skipped_counts: Vec<usize> =
        THREAD_COUNTS.iter().copied().filter(|t| !measured_counts.contains(t)).collect();
    let mut measured: Vec<(usize, f64)> = Vec::new();
    let mut reference_bits: Option<Vec<u32>> = None;
    for &threads in &measured_counts {
        let mut engine = engine_with_threads(threads);
        let mut out = engine.run(model.as_ref(), &inputs[0])?;
        let start = Instant::now();
        for x in &inputs {
            out = engine.run(model.as_ref(), x)?;
        }
        let wall = start.elapsed().as_secs_f64() / inputs.len() as f64;
        let bits: Vec<u32> = out.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        match &reference_bits {
            None => reference_bits = Some(bits),
            Some(r) => {
                assert_eq!(r, &bits, "outputs must be bitwise identical at {threads} threads")
            }
        }
        measured.push((threads, wall));
    }

    // Workspace counters come from a dedicated *buffered* (unfused) pass:
    // the fused default streams map rows through register tiles and takes
    // no movement buffers at all, so reading the arena of a fused engine
    // would always report 0/0 regardless of whether recycling works. If
    // the TORCHSPARSE_FUSED override forces fusion on, the buffered path
    // cannot run and the counters are skipped (marked in the JSON).
    let mut unfused_cfg = OptimizationConfig::torchsparse();
    unfused_cfg.fused_execution = false;
    unfused_cfg.threads = Some(1);
    let buffered_pass_ran = !fused_enabled(&unfused_cfg);
    let (workspace_fresh, workspace_reuses) = if buffered_pass_ran {
        let mut engine = Engine::with_config(unfused_cfg, DeviceProfile::rtx_2080ti());
        engine.run(model.as_ref(), &inputs[0])?; // warm the arena
        for x in &inputs {
            engine.run(model.as_ref(), x)?;
        }
        let ws = &engine.context().runtime.workspaces;
        assert!(
            ws.reuses > 0,
            "buffered steady-state passes must recycle workspace buffers \
             (fresh {}, reuses {})",
            ws.fresh_allocations,
            ws.reuses
        );
        (ws.fresh_allocations, ws.reuses)
    } else {
        (0, 0)
    };

    // Modeled scaling: trace every parallel region's task durations with a
    // recording pool, then replay the trace on N lanes.
    let mut engine = engine_with_threads(1);
    engine.run(model.as_ref(), &inputs[0])?; // warm caches and workspaces
    let pool = Arc::new(ThreadPool::new_recording());
    engine.context_mut().runtime.set_pool(pool.clone());
    let start = Instant::now();
    engine.run(model.as_ref(), &inputs[0])?;
    let traced_wall = start.elapsed().as_secs_f64();
    let trace = pool.take_trace();
    let traced_work: f64 = trace.iter().flatten().sum();
    let serial_residual = (traced_wall - traced_work).max(0.0);
    let parallel_fraction = if traced_wall > 0.0 { traced_work / traced_wall } else { 0.0 };
    let base = modeled_makespan(&trace, 1, serial_residual);
    let modeled: Vec<(usize, f64, f64)> = MODEL_LANES
        .iter()
        .map(|&lanes| {
            let span = modeled_makespan(&trace, lanes, serial_residual);
            (lanes, span, base / span)
        })
        .collect();

    let base_wall = measured[0].1;
    let mut rows = Vec::new();
    for &threads in &THREAD_COUNTS {
        let modeled_speedup =
            modeled.iter().find(|(l, _, _)| *l == threads).map(|(_, _, s)| *s).unwrap_or(1.0);
        match measured.iter().find(|(t, _)| *t == threads) {
            Some(&(_, wall)) => {
                // Honesty marker: with more workers than hardware cores the
                // OS time-slices them, so the measured column says nothing
                // about true scaling — only the modeled replay does.
                let saturated = if threads > host_cores { " (saturated)" } else { "" };
                rows.push(vec![
                    format!("{threads}{saturated}"),
                    format!("{:.1}", wall * 1e3),
                    fmt::speedup(base_wall / wall),
                    fmt::speedup(modeled_speedup),
                ]);
            }
            None => rows.push(vec![
                format!("{threads} (skipped)"),
                "-".to_owned(),
                "-".to_owned(),
                fmt::speedup(modeled_speedup),
            ]),
        }
    }
    println!(
        "{}",
        fmt::table(&["threads", "wall ms/scene", "measured speedup", "modeled speedup"], &rows)
    );
    if !skipped_counts.is_empty() {
        println!(
            "note: single-core host — multi-thread rows are not measured (wall clock there \
             is OS time-slicing, not parallel scaling); use the modeled column"
        );
    } else if THREAD_COUNTS.iter().any(|&t| t > host_cores) {
        println!(
            "note: rows marked (saturated) ran more workers than the {host_cores} hardware \
             core(s); their measured speedup reflects OS time-slicing, not parallel scaling — \
             use the modeled column there"
        );
    }
    println!(
        "parallel regions: {} waves, {} tasks, {:.0}% of traced wall inside tasks",
        trace.len(),
        trace.iter().map(Vec::len).sum::<usize>(),
        parallel_fraction * 100.0
    );
    if buffered_pass_ran {
        println!(
            "workspace arena (buffered 1-thread engine, {} scenes after warmup): \
             {} fresh allocations, {} reuses",
            args.scenes, workspace_fresh, workspace_reuses
        );
    } else {
        println!(
            "workspace arena: skipped (TORCHSPARSE_FUSED forces fusion on; the fused \
             path takes no movement buffers, so arena counters carry no signal)"
        );
    }

    let speedup_8 = modeled.iter().find(|(l, _, _)| *l == 8).map(|(_, _, s)| *s).unwrap_or(0.0);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"model\": \"{}\",\n", bm.name()));
    json.push_str(&format!("  \"scale\": {},\n", args.scale));
    json.push_str(&format!("  \"scenes\": {},\n", args.scenes));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str("  \"bitwise_identical_across_threads\": true,\n");
    json.push_str("  \"measured\": [\n");
    for (i, &threads) in THREAD_COUNTS.iter().enumerate() {
        let tail = if i + 1 < THREAD_COUNTS.len() { "," } else { "" };
        match measured.iter().find(|(t, _)| *t == threads) {
            Some(&(_, wall)) => json.push_str(&format!(
                "    {{\"threads\": {threads}, \"wall_ms_per_scene\": {:.3}, \"speedup\": {:.3}, \
                 \"saturated\": {}, \"skipped\": false}}{tail}\n",
                wall * 1e3,
                base_wall / wall,
                threads > host_cores,
            )),
            None => json.push_str(&format!(
                "    {{\"threads\": {threads}, \"skipped\": true, \
                 \"reason\": \"single-core host: measured multi-thread wall clock is OS \
                 time-slicing, not scaling\"}}{tail}\n"
            )),
        }
    }
    json.push_str("  ],\n");
    json.push_str("  \"modeled\": [\n");
    for (i, &(lanes, span, speedup)) in modeled.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"lanes\": {lanes}, \"makespan_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
            span * 1e3,
            speedup,
            if i + 1 < modeled.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"trace\": {{\"waves\": {}, \"tasks\": {}, \"parallel_fraction\": {:.4}}},\n",
        trace.len(),
        trace.iter().map(Vec::len).sum::<usize>(),
        parallel_fraction
    ));
    json.push_str(&format!(
        "  \"workspace\": {{\"buffered_pass_ran\": {buffered_pass_ran}, \
         \"fresh_allocations\": {workspace_fresh}, \"reuses\": {workspace_reuses}}},\n"
    ));
    json.push_str(&format!("  \"modeled_speedup_at_8_lanes\": {speedup_8:.3}\n"));
    json.push_str("}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");

    if speedup_8 < 2.0 {
        println!("WARNING: modeled 8-lane speedup {speedup_8:.2}x below the 2x target");
    }
    if let Some(min) = min_parallel_fraction {
        if parallel_fraction < min {
            return Err(format!(
                "parallel fraction {parallel_fraction:.4} below the required {min} \
                 (--min-parallel-fraction)"
            )
            .into());
        }
        println!("parallel fraction {parallel_fraction:.4} meets the {min} floor");
    }
    Ok(())
}
