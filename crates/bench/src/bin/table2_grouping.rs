//! **Table 2**: matmul grouping ablation — separate / symmetric / fixed /
//! adaptive, on SemanticKITTI (MinkUNet 0.5x) and nuScenes (MinkUNet 3f).
//!
//! The paper reports achieved TFLOP/s and matmul speedup per strategy,
//! with two signature results this reproduction must preserve:
//! (1) adaptive wins latency everywhere (1.39x on SK, 1.54x on NS);
//! (2) fixed 3-group batching is *slower than separate* on SemanticKITTI
//! (0.87x) despite high TFLOP/s, because padding wastes too much compute,
//! while it works well (1.50x) on the smaller nuScenes maps.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin table2_grouping
//! [--scale F] [--scenes N]`

#![allow(clippy::type_complexity)]

use torchsparse_bench::{build_model, dataset_for, fmt, geomean, scenes, BenchArgs};
use torchsparse_core::grouping::plan_groups;
use torchsparse_core::tuning::{grouped_matmul_latency, tune_engine};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset, GroupingStrategy, Precision};
use torchsparse_gpusim::GemmModel;
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(1.0, 2);
    println!("== Table 2: grouping strategy ablation (matmul only, FP16) ==");
    println!("scale={} scenes={} device=RTX 2080Ti\n", args.scale, args.scenes);

    let gemm = GemmModel::new(DeviceProfile::rtx_2080ti());

    for (label, bm) in [
        ("SemanticKITTI (MinkUNet 0.5x)", BenchmarkModel::MinkUNetHalfSemanticKitti),
        ("nuScenes (MinkUNet 3f)", BenchmarkModel::MinkUNetNuScenes3),
    ] {
        let ds = dataset_for(bm, args.scale);
        let inputs = scenes(&ds, args.scenes, args.seed)?;
        let model = build_model(bm, args.seed);

        // Tune adaptive (epsilon, S) per layer on the calibration scenes
        // (Algorithm 5), then collect the workloads of one scene.
        let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        engine.context_mut().simulate_only = true;
        tune_engine(&mut engine, model.as_ref(), &inputs, None)?;
        engine.context_mut().record_workloads = true;
        engine.run(model.as_ref(), &inputs[0])?;
        let workloads = engine.context().workloads.clone();
        let tuned: std::collections::HashMap<String, (f64, usize)> =
            engine.context().tuned_groups.clone();

        let strategies: Vec<(&str, Box<dyn Fn(&str) -> GroupingStrategy>)> = vec![
            ("Separate", Box::new(|_| GroupingStrategy::Separate)),
            ("Symmetric", Box::new(|_| GroupingStrategy::Symmetric)),
            ("Fixed", Box::new(|_| GroupingStrategy::Fixed)),
            (
                "Adaptive (tuned)",
                Box::new(|layer: &str| {
                    let (epsilon, s_threshold) = tuned[layer];
                    GroupingStrategy::Adaptive { epsilon, s_threshold }
                }),
            ),
        ];

        let mut rows = Vec::new();
        let mut baseline_us: Option<f64> = None;
        for (name, strat_for) in &strategies {
            let mut total_us = 0.0;
            let mut total_flops = 0.0;
            for w in &workloads {
                let strategy = strat_for(&w.name);
                total_us += grouped_matmul_latency(w, strategy, &gemm, Precision::Fp16).as_f64();
                let plan = plan_groups(&w.map_sizes, w.submanifold, strategy);
                total_flops +=
                    plan.executed_rows(&w.map_sizes) as f64 * 2.0 * w.c_in as f64 * w.c_out as f64;
            }
            let base = *baseline_us.get_or_insert(total_us);
            let tflops = total_flops / (total_us * 1e6);
            rows.push(vec![
                (*name).to_owned(),
                format!("{tflops:.1} TFLOP/s"),
                fmt::speedup(base / total_us),
            ]);
        }
        println!("---- {} ({} voxels) ----", label, inputs[0].len());
        println!("{}", fmt::table(&["grouping method", "throughput", "matmul speedup"], &rows));
    }

    let _ = geomean(&[1.0]);
    println!("Paper reference (Table 2): SK separate 8.1 TF/s -> adaptive 11.9 TF/s (1.39x),");
    println!("fixed is 13% SLOWER than separate on SK; NS separate 10.4 -> adaptive 16.9 (1.54x).");
    Ok(())
}
