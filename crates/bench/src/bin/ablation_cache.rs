//! **Ablation (§4.3.2)**: how the locality-aware ordering's benefit depends
//! on L2 capacity. The paper's argument is that the weight-stationary
//! baseline cannot reuse anything because the working set (> 40 MB) dwarfs
//! the L2 (5.5 MB on RTX 2080 Ti); sweeping simulated L2 sizes makes that
//! relationship visible — with an enormous L2, ordering stops mattering.
//!
//! Usage: `cargo run --release -p torchsparse-bench --bin ablation_cache
//! [--scale F]`

use torchsparse_bench::{build_model, dataset_for, fmt, measure, scenes, BenchArgs};
use torchsparse_core::{DeviceProfile, Engine, EnginePreset, OptimizationConfig};
use torchsparse_models::BenchmarkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = BenchArgs::parse(0.5, 1);
    let bm = BenchmarkModel::MinkUNetFullSemanticKitti;
    println!("== Ablation: locality-aware speedup vs L2 capacity ==");
    println!("workload: {} (scale {})\n", bm.name(), args.scale);

    let ds = dataset_for(bm, args.scale);
    let inputs = scenes(&ds, args.scenes, args.seed)?;
    let model = build_model(bm, args.seed);

    let mut rows = Vec::new();
    for l2_mb in [1u64, 2, 4, 5, 8, 16, 64, 256] {
        let mut device = DeviceProfile::rtx_2080ti();
        device.l2_bytes = l2_mb * 1024 * 1024;

        let movement = |locality: bool| -> Result<f64, Box<dyn std::error::Error>> {
            let mut cfg: OptimizationConfig = EnginePreset::TorchSparse.config();
            cfg.locality_aware = locality;
            let mut engine = Engine::with_config(cfg, device.clone());
            let t = measure(&mut engine, model.as_ref(), &inputs)?;
            Ok(t.data_movement().as_f64())
        };

        let ws = movement(false)?;
        let loc = movement(true)?;
        rows.push(vec![
            format!("{l2_mb} MB"),
            format!("{:.0} us", ws),
            format!("{:.0} us", loc),
            fmt::speedup(ws / loc),
        ]);
    }
    println!(
        "{}",
        fmt::table(&["L2 capacity", "weight-stationary", "locality-aware", "speedup"], &rows)
    );
    println!("Expected shape: the advantage is largest when the cache is scarce and");
    println!("flattens once the weight-stationary working set fits — but a floor");
    println!("remains, because locality-aware ordering also issues fewer memory");
    println!("transactions per map entry, which no amount of cache recovers.");
    Ok(())
}
