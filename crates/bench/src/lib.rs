//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper's evaluation (see `DESIGN.md`'s per-experiment
//! index).
//!
//! Each `fig*`/`table*` binary is self-contained: it builds the benchmark
//! models ([`build_model`]) and synthetic datasets ([`dataset_for`]),
//! measures simulated latencies through the engine, and prints rows/series
//! shaped like the paper's. Run them with
//! `cargo run --release -p torchsparse-bench --bin <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use torchsparse_core::{CoreError, Engine, Module, SparseTensor};
use torchsparse_data::SyntheticDataset;
use torchsparse_gpusim::Timeline;
use torchsparse_models::{BenchmarkModel, CenterPoint, MinkUNet};

pub mod fmt;

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Scene scale relative to the full datasets (1.0 = full size).
    pub scale: f64,
    /// Number of scenes to average over.
    pub scenes: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Remaining (binary-specific) flags.
    pub rest: Vec<String>,
}

impl BenchArgs {
    /// Parses `--scale F`, `--scenes N`, and `--seed N` from `std::env::args`,
    /// leaving everything else in `rest`.
    pub fn parse(default_scale: f64, default_scenes: usize) -> BenchArgs {
        let mut args =
            BenchArgs { scale: default_scale, scenes: default_scenes, seed: 42, rest: Vec::new() };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a float"));
                }
                "--scenes" => {
                    args.scenes = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--scenes needs an integer"));
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                other => args.rest.push(other.to_owned()),
            }
        }
        args
    }

    /// Whether a binary-specific flag is present.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }
}

/// The synthetic dataset corresponding to a benchmark configuration.
pub fn dataset_for(model: BenchmarkModel, scale: f64) -> SyntheticDataset {
    match model {
        BenchmarkModel::MinkUNetHalfSemanticKitti | BenchmarkModel::MinkUNetFullSemanticKitti => {
            SyntheticDataset::semantic_kitti(scale, 4)
        }
        BenchmarkModel::MinkUNetNuScenes1 => SyntheticDataset::nuscenes(scale, 4, 1),
        BenchmarkModel::MinkUNetNuScenes3 => SyntheticDataset::nuscenes(scale, 4, 3),
        BenchmarkModel::CenterPointNuScenes10 => SyntheticDataset::nuscenes(scale, 5, 10),
        BenchmarkModel::CenterPointWaymo1 => SyntheticDataset::waymo(scale, 5, 1),
        BenchmarkModel::CenterPointWaymo3 => SyntheticDataset::waymo(scale, 5, 3),
    }
}

/// Builds the network for a benchmark configuration.
pub fn build_model(model: BenchmarkModel, seed: u64) -> Box<dyn Module> {
    match model {
        BenchmarkModel::MinkUNetHalfSemanticKitti => {
            Box::new(MinkUNet::with_width(0.5, 4, 19, seed))
        }
        BenchmarkModel::MinkUNetFullSemanticKitti => {
            Box::new(MinkUNet::with_width(1.0, 4, 19, seed))
        }
        BenchmarkModel::MinkUNetNuScenes1 | BenchmarkModel::MinkUNetNuScenes3 => {
            Box::new(MinkUNet::with_width(1.0, 4, 16, seed))
        }
        BenchmarkModel::CenterPointNuScenes10
        | BenchmarkModel::CenterPointWaymo1
        | BenchmarkModel::CenterPointWaymo3 => Box::new(CenterPoint::new(5, seed)),
    }
}

/// Generates `n` scenes of a dataset.
///
/// # Errors
///
/// Propagates [`CoreError`] from scene generation.
pub fn scenes(ds: &SyntheticDataset, n: usize, seed: u64) -> Result<Vec<SparseTensor>, CoreError> {
    (0..n).map(|i| ds.scene(seed + i as u64)).collect()
}

/// Runs a model over scenes in simulate-only mode and returns the mean
/// timeline.
///
/// # Errors
///
/// Propagates engine errors.
pub fn measure<M: Module + ?Sized>(
    engine: &mut Engine,
    model: &M,
    inputs: &[SparseTensor],
) -> Result<Timeline, CoreError> {
    engine.context_mut().simulate_only = true;
    let mut total = Timeline::new();
    for x in inputs {
        engine.run(model, x)?;
        total.merge(engine.last_timeline());
    }
    // Average by scaling.
    let mut avg = Timeline::new();
    for stage in torchsparse_gpusim::Stage::ALL {
        avg.add(stage, total.stage(stage) * (1.0 / inputs.len().max(1) as f64));
    }
    Ok(avg)
}

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// The `q`-quantile (`0.0..=1.0`) of `values` by nearest-rank on a sorted
/// copy — the serving benchmarks report p50/p99 latency through this.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_core::{DeviceProfile, EnginePreset};

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn datasets_cover_all_models() {
        for m in BenchmarkModel::ALL {
            let ds = dataset_for(m, 0.02);
            assert!(ds.scene(0).unwrap().len() > 10, "{}", m.name());
        }
    }

    #[test]
    fn models_build() {
        for m in BenchmarkModel::ALL {
            let model = build_model(m, 1);
            assert!(model.param_count() > 0, "{}", m.name());
        }
    }

    #[test]
    fn measure_runs_every_benchmark_model_small() {
        for m in [BenchmarkModel::MinkUNetHalfSemanticKitti, BenchmarkModel::CenterPointWaymo1] {
            let ds = dataset_for(m, 0.015);
            let inputs = scenes(&ds, 1, 0).unwrap();
            let model = build_model(m, 1);
            let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
            let t = measure(&mut e, model.as_ref(), &inputs).unwrap();
            assert!(t.total().as_f64() > 0.0, "{}", m.name());
        }
    }
}
