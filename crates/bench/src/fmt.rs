//! Plain-text table and bar-chart helpers for the experiment binaries.

/// Renders a fixed-width text table: a header row and data rows.
///
/// # Example
///
/// ```
/// use torchsparse_bench::fmt::table;
///
/// let s = table(
///     &["system", "speedup"],
///     &[vec!["TorchSparse".into(), "1.00".into()]],
/// );
/// assert!(s.contains("TorchSparse"));
/// ```
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    let mut out = String::new();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Renders a horizontal ASCII bar scaled so `max_value` spans `width`
/// characters.
pub fn bar(value: f64, max_value: f64, width: usize) -> String {
    if max_value <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max_value) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Formats a speedup multiplier like the paper (`1.54x`).
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = table(
            &["a", "long-header"],
            &[vec!["xxxxxxx".into(), "1".into()], vec!["y".into(), "2".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len() || l.contains('-')));
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn speedup_format() {
        assert_eq!(speedup(1.5), "1.50x");
    }
}
