//! Microbenchmarks of the engine's real CPU kernels: coordinate tables, map
//! search, downsampling pipelines, and GEMM.
//!
//! These measure the *actual* Rust implementations (not the GPU cost
//! model), so they answer a different question than the `fig*`/`table*`
//! binaries: how fast is this library as a CPU inference engine? They also
//! demonstrate that the optimized code paths (grid tables, symmetric
//! search, fused downsampling) are faster on the CPU too — the paper's
//! algorithmic wins are not GPU-specific.
//!
//! Self-contained timing harness (`harness = false`): each benchmark runs a
//! warmup pass and then reports the mean and minimum wall time over a fixed
//! iteration count. Run with `cargo bench -p torchsparse-bench`.

use std::hint::black_box;
use std::time::Instant;
use torchsparse_coords::downsample::{fused_output_coords, staged_output_coords, Boundary};
use torchsparse_coords::kernel_map::{search, search_submanifold_symmetric};
use torchsparse_coords::{Coord, CoordHashMap, GridTable};
use torchsparse_core::{Engine, EnginePreset};
use torchsparse_data::SyntheticDataset;
use torchsparse_gpusim::DeviceProfile;
use torchsparse_models::MinkUNet;
use torchsparse_tensor::{gemm, Matrix};

/// Times `f` over `iters` iterations (after `warmup` discarded runs) and
/// prints mean and best wall time.
fn bench<T>(group: &str, name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(dt);
        total += dt;
    }
    println!(
        "{group}/{name:<28} mean {:>9.3} ms   best {:>9.3} ms   ({iters} iters)",
        total / iters as f64,
        best
    );
}

fn scene_coords() -> Vec<Coord> {
    // A coarse (0.4 m) voxelization keeps the scene's coordinate bounding
    // box small enough that the grid table's dense allocation stays in the
    // tens of megabytes per build — the regime the paper's "grid" strategy
    // targets.
    let mut ds = SyntheticDataset::semantic_kitti(0.05, 4);
    ds.voxel_size = 0.4;
    ds.scene(7).expect("scene generation").coords().to_vec()
}

fn bench_tables() {
    let coords = scene_coords();
    bench("coord_tables", "hashmap_build", 2, 20, || CoordHashMap::build(black_box(&coords)));
    bench("coord_tables", "grid_build", 2, 20, || {
        GridTable::build(black_box(&coords), u64::MAX).expect("grid fits")
    });
    let (hash, _) = CoordHashMap::build(&coords);
    let (grid, _) = GridTable::build(&coords, u64::MAX).expect("grid fits");
    bench("coord_tables", "hashmap_search_k3", 2, 20, || {
        search(black_box(&coords), &hash, 3, 1).expect("search")
    });
    bench("coord_tables", "grid_search_k3", 2, 20, || {
        search(black_box(&coords), &grid, 3, 1).expect("search")
    });
    bench("coord_tables", "symmetric_search_k3", 2, 20, || {
        search_submanifold_symmetric(black_box(&coords), &grid, 3).expect("search")
    });
}

fn bench_downsample() {
    let coords = scene_coords();
    bench("downsample", "staged_k2s2", 2, 20, || {
        staged_output_coords(black_box(&coords), 2, 2, Boundary::unbounded())
    });
    bench("downsample", "fused_k2s2", 2, 20, || {
        fused_output_coords(black_box(&coords), 2, 2, Boundary::unbounded())
    });
}

fn bench_gemm() {
    let a = Matrix::from_fn(2048, 64, |r, cc| ((r * 31 + cc * 17) % 97) as f32 / 97.0);
    let w = Matrix::from_fn(64, 64, |r, cc| ((r * 13 + cc * 7) % 89) as f32 / 89.0);
    bench("gemm", "mm_2048x64x64", 3, 30, || gemm::mm(black_box(&a), black_box(&w)).expect("mm"));
    let batch_a: Vec<Matrix> = (0..8).map(|_| a.clone()).collect();
    let batch_w: Vec<Matrix> = (0..8).map(|_| w.clone()).collect();
    bench("gemm", "bmm_8x2048x64x64", 3, 30, || {
        gemm::bmm(black_box(&batch_a), black_box(&batch_w)).expect("bmm")
    });
}

fn bench_end_to_end() {
    // Full CPU inference (numerics + cost model) of a small MinkUNet.
    let input = SyntheticDataset::semantic_kitti(0.02, 4).scene(3).expect("scene");
    let model = MinkUNet::with_width(0.25, 4, 8, 42);
    let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    bench("end_to_end", "minkunet_quarter_cpu", 1, 10, || {
        engine.run(black_box(&model), black_box(&input)).expect("run")
    });
    let mut sim_engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
    sim_engine.context_mut().simulate_only = true;
    bench("end_to_end", "minkunet_quarter_simulate_only", 1, 10, || {
        sim_engine.run(black_box(&model), black_box(&input)).expect("run")
    });
}

fn main() {
    bench_tables();
    bench_downsample();
    bench_gemm();
    bench_end_to_end();
}
