//! Criterion microbenchmarks of the engine's real CPU kernels: coordinate
//! tables, map search, downsampling pipelines, and GEMM.
//!
//! These measure the *actual* Rust implementations (not the GPU cost
//! model), so they answer a different question than the `fig*`/`table*`
//! binaries: how fast is this library as a CPU inference engine? They also
//! demonstrate that the optimized code paths (grid tables, symmetric
//! search, fused downsampling) are faster on the CPU too — the paper's
//! algorithmic wins are not GPU-specific.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use torchsparse_core::{Engine, EnginePreset};
use torchsparse_coords::downsample::{fused_output_coords, staged_output_coords, Boundary};
use torchsparse_coords::kernel_map::{search, search_submanifold_symmetric};
use torchsparse_coords::{Coord, CoordHashMap, GridTable};
use torchsparse_data::SyntheticDataset;
use torchsparse_gpusim::DeviceProfile;
use torchsparse_models::MinkUNet;
use torchsparse_tensor::{gemm, Matrix};

fn scene_coords() -> Vec<Coord> {
    // A coarse (0.4 m) voxelization keeps the scene's coordinate bounding
    // box small enough that the grid table's dense allocation stays in the
    // tens of megabytes per build — the regime the paper's "grid" strategy
    // targets.
    let mut ds = SyntheticDataset::semantic_kitti(0.05, 4);
    ds.voxel_size = 0.4;
    ds.scene(7).expect("scene generation").coords().to_vec()
}

fn bench_tables(c: &mut Criterion) {
    let coords = scene_coords();
    let mut g = c.benchmark_group("coord_tables");
    g.sample_size(20);
    g.bench_function("hashmap_build", |b| {
        b.iter(|| CoordHashMap::build(black_box(&coords)))
    });
    g.bench_function("grid_build", |b| {
        b.iter(|| GridTable::build(black_box(&coords), u64::MAX).expect("grid fits"))
    });
    let (hash, _) = CoordHashMap::build(&coords);
    let (grid, _) = GridTable::build(&coords, u64::MAX).expect("grid fits");
    g.bench_function("hashmap_search_k3", |b| {
        b.iter(|| search(black_box(&coords), &hash, 3, 1).expect("search"))
    });
    g.bench_function("grid_search_k3", |b| {
        b.iter(|| search(black_box(&coords), &grid, 3, 1).expect("search"))
    });
    g.bench_function("symmetric_search_k3", |b| {
        b.iter(|| search_submanifold_symmetric(black_box(&coords), &grid, 3).expect("search"))
    });
    g.finish();
}

fn bench_downsample(c: &mut Criterion) {
    let coords = scene_coords();
    let mut g = c.benchmark_group("downsample");
    g.sample_size(20);
    g.bench_function("staged_k2s2", |b| {
        b.iter(|| staged_output_coords(black_box(&coords), 2, 2, Boundary::unbounded()))
    });
    g.bench_function("fused_k2s2", |b| {
        b.iter(|| fused_output_coords(black_box(&coords), 2, 2, Boundary::unbounded()))
    });
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let a = Matrix::from_fn(2048, 64, |r, cc| ((r * 31 + cc * 17) % 97) as f32 / 97.0);
    let w = Matrix::from_fn(64, 64, |r, cc| ((r * 13 + cc * 7) % 89) as f32 / 89.0);
    let mut g = c.benchmark_group("gemm");
    g.sample_size(30);
    g.bench_function("mm_2048x64x64", |b| {
        b.iter(|| gemm::mm(black_box(&a), black_box(&w)).expect("mm"))
    });
    let batch_a: Vec<Matrix> = (0..8).map(|_| a.clone()).collect();
    let batch_w: Vec<Matrix> = (0..8).map(|_| w.clone()).collect();
    g.bench_function("bmm_8x2048x64x64", |b| {
        b.iter(|| gemm::bmm(black_box(&batch_a), black_box(&batch_w)).expect("bmm"))
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // Full CPU inference (numerics + cost model) of a small MinkUNet.
    let input = SyntheticDataset::semantic_kitti(0.02, 4).scene(3).expect("scene");
    let model = MinkUNet::with_width(0.25, 4, 8, 42);
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("minkunet_quarter_cpu", |b| {
        let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        b.iter(|| engine.run(black_box(&model), black_box(&input)).expect("run"))
    });
    g.bench_function("minkunet_quarter_simulate_only", |b| {
        let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        engine.context_mut().simulate_only = true;
        b.iter(|| engine.run(black_box(&model), black_box(&input)).expect("run"))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_downsample, bench_gemm, bench_end_to_end);
criterion_main!(benches);
