//! Shared host-side execution runtime for the TorchSparse reproduction.
//!
//! The paper's thesis is that sparse convolution is bound by data movement
//! and many small matmuls; on the CPU side the analogous bottleneck is that
//! every hot path (map search, gather, GEMM panels, scatter) used to run
//! serially — or worse, spawn fresh threads per GEMM call. This crate
//! provides the one primitive every layer shares:
//!
//! - [`ThreadPool`]: a persistent pool of parked worker threads executing
//!   batches of *scoped* tasks. A batch borrows caller data (feature
//!   matrices, kernel maps) for its duration; [`ThreadPool::run`] does not
//!   return until every task of the batch has finished, so borrows never
//!   escape. With `threads == 1` no worker threads exist at all and tasks
//!   execute inline on the caller — byte-for-byte the old serial engine.
//! - [`ThreadPool::global`]: the process-wide default pool, sized by the
//!   `TORCHSPARSE_THREADS` environment variable (falling back to
//!   `std::thread::available_parallelism`). `gemm::mm` and friends dispatch
//!   onto it so no per-call thread spawning remains anywhere.
//! - task-time *recording* ([`ThreadPool::new_recording`]): an instrumented
//!   serial pool that timestamps every task it executes, grouped into waves
//!   (one wave per `run` call). The scaling benchmark replays these traces
//!   through a critical-path model to report how the same task graph
//!   schedules onto N lanes — meaningful even on single-core CI hosts.
//!
//! Determinism: the pool never changes *what* is computed, only *where*.
//! Every caller partitions work into tasks whose outputs are disjoint and
//! whose internal accumulation order is fixed, so results are bitwise
//! identical for every thread count (the property tests in the root crate
//! assert this across thread counts {1, 2, 8}).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// A task submitted to the pool: a boxed closure that may borrow from the
/// submitting scope (lifetime-erased internally; see [`ThreadPool::run`]).
pub type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between the submitting thread and the workers.
struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers that jobs arrived or shutdown began.
    work_cv: Condvar,
}

struct QueueState {
    jobs: VecDeque<StaticJob>,
    shutdown: bool,
}

/// Completion tracking for one `run` batch.
struct Batch {
    remaining: Mutex<usize>,
    done_cv: Condvar,
    /// First panic payload raised by a task of this batch, re-raised on the
    /// submitting thread once the whole batch has drained.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    fn new(count: usize) -> Batch {
        Batch { remaining: Mutex::new(count), done_cv: Condvar::new(), panic: Mutex::new(None) }
    }

    fn complete_one(&self) {
        let mut left = match self.remaining.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *left -= 1;
        if *left == 0 {
            self.done_cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = match self.remaining.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        while *left > 0 {
            left = match self.done_cv.wait(left) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        if let Ok(mut slot) = self.panic.lock() {
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }
}

/// Per-task wall durations in seconds, grouped into waves (one wave per
/// [`ThreadPool::run`] call). Produced by recording pools.
pub type TaskTrace = Vec<Vec<f64>>;

/// A persistent worker pool executing batches of scoped tasks.
///
/// See the crate docs for the design. The pool holds `threads - 1` parked
/// OS threads; the submitting thread is the remaining lane (it helps drain
/// the queue instead of blocking), so `threads` is the true concurrency.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    recorder: Option<Mutex<TaskTrace>>,
}

impl ThreadPool {
    /// Creates a pool with `threads` total lanes (clamped to at least 1).
    ///
    /// `threads == 1` spawns no OS threads; every [`ThreadPool::run`]
    /// executes inline in submission order, reproducing the serial engine
    /// exactly.
    pub fn new(threads: usize) -> ThreadPool {
        Self::build(threads.max(1), false)
    }

    /// Creates an instrumented *serial* pool that records per-task wall
    /// durations. Used by the scaling benchmark to capture a task trace on
    /// hosts with any core count; the trace is replayed through
    /// [`modeled_makespan`] to model N-lane schedules.
    pub fn new_recording() -> ThreadPool {
        Self::build(1, true)
    }

    fn build(threads: usize, recording: bool) -> ThreadPool {
        // Resolve the host's SIMD capability set now, once, so the compute
        // kernels dispatched onto this pool never pay a per-call
        // `is_x86_feature_detected!` check.
        let _ = cpu_features();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            work_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ts-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("failed to spawn pool worker: {e}"))
            })
            .collect();
        ThreadPool { shared, workers, threads, recorder: recording.then(|| Mutex::new(Vec::new())) }
    }

    /// The process-wide shared pool.
    ///
    /// Sized by `TORCHSPARSE_THREADS` when set to a positive integer,
    /// otherwise by [`std::thread::available_parallelism`]. Created lazily
    /// on first use and never torn down.
    pub fn global() -> &'static Arc<ThreadPool> {
        static GLOBAL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(ThreadPool::new(default_threads())))
    }

    /// Total concurrency lanes (workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool records task traces (see [`ThreadPool::new_recording`]).
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Drains the recorded task trace (waves of per-task seconds), leaving
    /// the recorder empty. Returns an empty trace on non-recording pools.
    pub fn take_trace(&self) -> TaskTrace {
        match &self.recorder {
            Some(r) => match r.lock() {
                Ok(mut t) => std::mem::take(&mut *t),
                Err(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Executes a batch of tasks, returning once *all* of them finished.
    ///
    /// Tasks may borrow from the caller's scope: the borrow is sound because
    /// this function does not return until every task has run to completion
    /// (even when one panics — the batch fully drains first, then the first
    /// panic payload is re-raised on the calling thread).
    ///
    /// Scheduling notes:
    /// - single task, or a 1-lane pool: inline execution, no synchronization;
    /// - otherwise tasks are pushed to the shared queue; parked workers and
    ///   the calling thread drain it together.
    ///
    /// Callers are responsible for determinism: tasks must write disjoint
    /// outputs and fix their internal accumulation order, so the result is
    /// independent of which lane runs which task.
    pub fn run<'env>(&self, tasks: Vec<Task<'env>>) {
        if tasks.is_empty() {
            return;
        }
        if self.threads <= 1 || tasks.len() == 1 {
            if self.recorder.is_some() {
                let mut wave = Vec::with_capacity(tasks.len());
                for t in tasks {
                    let start = Instant::now();
                    t();
                    wave.push(start.elapsed().as_secs_f64());
                }
                if let Some(r) = &self.recorder {
                    if let Ok(mut trace) = r.lock() {
                        trace.push(wave);
                    }
                }
            } else {
                for t in tasks {
                    t();
                }
            }
            return;
        }

        let batch = Arc::new(Batch::new(tasks.len()));
        {
            let mut state = match self.shared.state.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            for t in tasks {
                let batch = batch.clone();
                let job: Task<'env> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(t)) {
                        batch.record_panic(payload);
                    }
                    batch.complete_one();
                });
                // SAFETY: the job borrows data live for 'env. It is only
                // executed by this `run` call's drain loop or by a worker
                // thread, and `batch.wait()` below blocks until every job of
                // the batch has completed (panics included — they are caught
                // above and converted into a completion). Therefore no job
                // outlives 'env, and erasing the lifetime to 'static for
                // queue storage cannot create a dangling borrow.
                let job: StaticJob = unsafe { std::mem::transmute::<Task<'env>, StaticJob>(job) };
                state.jobs.push_back(job);
            }
            self.shared.work_cv.notify_all();
        }

        // Help drain the queue rather than blocking: the submitting thread
        // is one of the pool's lanes.
        loop {
            let job = {
                let mut state = match self.shared.state.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                state.jobs.pop_front()
            };
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        batch.wait();
        let payload = match batch.panic.lock() {
            Ok(mut slot) => slot.take(),
            Err(_) => None,
        };
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Convenience: runs `f(index)` for `count` indices as one batch.
    pub fn run_indexed<'env, F>(&self, count: usize, f: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        if count == 0 {
            return;
        }
        if self.threads <= 1 && self.recorder.is_none() {
            for i in 0..count {
                f(i);
            }
            return;
        }
        let f_ref = &f;
        let tasks: Vec<Task<'_>> =
            (0..count).map(|i| Box::new(move || f_ref(i)) as Task<'_>).collect();
        self.run(tasks);
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = match self.shared.state.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("recording", &self.is_recording())
            .finish()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = match shared.state.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = match shared.work_cv.wait(state) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// The SIMD capability set of the host CPU, as seen by the compute kernels.
///
/// Detected once per process — [`ThreadPool`] construction triggers the
/// probe, so by the time any task runs the answer is a cached load, never a
/// `cpuid` in a hot loop. On non-x86-64 targets every flag is `false` and
/// the portable kernels are used unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// 256-bit integer/float vectors (`__m256`); gates the SIMD GEMM
    /// microkernel and the wide gather/scatter row primitives.
    pub avx2: bool,
    /// Fused multiply-add. Never auto-selected — FMA contracts the
    /// mul-then-add rounding step and therefore changes results bitwise;
    /// callers opt in explicitly.
    pub fma: bool,
    /// Hardware f32<->f16 conversion (`vcvtps2ph`/`vcvtph2ps`); gates the
    /// vectorized precision-conversion sweeps.
    pub f16c: bool,
}

/// Returns the host's [`CpuFeatures`], probing on first call only.
pub fn cpu_features() -> CpuFeatures {
    static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
    *FEATURES.get_or_init(detect_cpu_features)
}

#[cfg(target_arch = "x86_64")]
fn detect_cpu_features() -> CpuFeatures {
    CpuFeatures {
        avx2: std::arch::is_x86_feature_detected!("avx2"),
        fma: std::arch::is_x86_feature_detected!("fma"),
        f16c: std::arch::is_x86_feature_detected!("f16c"),
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_cpu_features() -> CpuFeatures {
    CpuFeatures { avx2: false, fma: false, f16c: false }
}

/// Emits a warning about a malformed environment override on stderr, at
/// most once per variable per process.
///
/// Every `TORCHSPARSE_*` override funnels misparses through here so a typo
/// (`TORCHSPARSE_THREADS=abc`) is reported exactly once, naming the
/// variable, the rejected value, and the fallback chosen — never silently
/// swallowed, never repeated per call.
pub fn warn_env_once(var: &'static str, warning: &str) {
    static WARNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut warned = match WARNED.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    if !warned.contains(&var) {
        warned.push(var);
        eprintln!("[torchsparse] warning: {warning}");
    }
}

/// Resolves a `TORCHSPARSE_THREADS` value against the host's parallelism.
///
/// Strict parse: only a positive integer is accepted. Anything else
/// (`"abc"`, `"0"`, `"-2"`, `""`) yields the host fallback plus a warning
/// message naming the variable and the fallback — factored out of
/// [`default_threads`] so the policy is testable without touching process
/// environment state.
pub fn resolve_threads(raw: Option<&str>, host_parallelism: usize) -> (usize, Option<String>) {
    let host = host_parallelism.max(1);
    match raw {
        None => (host, None),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => (n, None),
            _ => (
                host,
                Some(format!(
                    "TORCHSPARSE_THREADS={s:?} is not a positive integer; \
                     falling back to the host's available parallelism ({host})"
                )),
            ),
        },
    }
}

/// The default pool width: `TORCHSPARSE_THREADS` when set to a positive
/// integer, otherwise the host's available parallelism. A set-but-malformed
/// value (e.g. `"abc"` or `"0"`) is rejected with a one-time warning
/// instead of being silently ignored.
pub fn default_threads() -> usize {
    let host = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let (threads, warning) =
        resolve_threads(std::env::var("TORCHSPARSE_THREADS").ok().as_deref(), host);
    if let Some(w) = warning {
        warn_env_once("TORCHSPARSE_THREADS", &w);
    }
    threads
}

/// Replays one recorded task trace through a greedy list schedule on
/// `lanes` lanes and returns the modeled makespan in seconds.
///
/// Waves are barriers (a wave's tasks all complete before the next wave
/// starts), matching [`ThreadPool::run`] semantics. Within a wave, tasks
/// are assigned in submission order to the least-loaded lane — the same
/// greedy discipline a shared work queue approximates. `serial_residual`
/// is time spent outside any task (map producer-index builds, simulation
/// accounting, layer bookkeeping) and is charged fully to every lane count.
pub fn modeled_makespan(trace: &TaskTrace, lanes: usize, serial_residual: f64) -> f64 {
    let lanes = lanes.max(1);
    let mut total = serial_residual.max(0.0);
    let mut lane_load = vec![0.0f64; lanes];
    for wave in trace {
        lane_load.fill(0.0);
        for &t in wave {
            // Least-loaded lane; ties broken by lowest index (deterministic).
            let mut best = 0;
            for (i, &load) in lane_load.iter().enumerate() {
                if load < lane_load[best] {
                    best = i;
                }
            }
            lane_load[best] += t;
        }
        total += lane_load.iter().cloned().fold(0.0, f64::max);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_spawns_no_workers() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        let hits = AtomicUsize::new(0);
        pool.run_indexed(10, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_threads_clamped() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn parallel_pool_runs_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0u64; 64];
        let tasks: Vec<Task<'_>> = out
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = (i as u64) * 3 + 1;
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i as u64) * 3 + 1);
        }
    }

    #[test]
    fn disjoint_chunk_writes_are_deterministic() {
        // Same partition on 1 vs 4 lanes must produce identical bytes.
        let compute = |threads: usize| -> Vec<f32> {
            let pool = ThreadPool::new(threads);
            let mut data = vec![0.0f32; 1000];
            let tasks: Vec<Task<'_>> = data
                .chunks_mut(64)
                .enumerate()
                .map(|(c, chunk)| {
                    Box::new(move || {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            let x = (c * 64 + i) as f32;
                            *v = (x * 0.37).sin() + x.sqrt();
                        }
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks);
            data
        };
        let a = compute(1);
        let b = compute(4);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn batches_are_reusable() {
        let pool = ThreadPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run_indexed(8, |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = ThreadPool::new(4);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Task<'_>> = (0..16)
                .map(|i| {
                    let finished = &finished;
                    Box::new(move || {
                        if i == 5 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks);
        }));
        assert!(result.is_err(), "panic must reach the submitting thread");
        // All non-panicking tasks still ran (the batch drains fully).
        assert_eq!(finished.load(Ordering::Relaxed), 15);
        // The pool survives for the next batch.
        pool.run_indexed(4, |_| {});
    }

    #[test]
    fn recording_pool_traces_waves() {
        let pool = ThreadPool::new_recording();
        pool.run_indexed(3, |_| {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        pool.run_indexed(2, |_| {});
        let trace = pool.take_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].len(), 3);
        assert_eq!(trace[1].len(), 2);
        assert!(trace.iter().flatten().all(|&t| t >= 0.0));
        assert!(pool.take_trace().is_empty(), "trace is drained");
    }

    #[test]
    fn makespan_model_scales_uniform_waves() {
        // 8 uniform tasks of 1s: 8s on 1 lane, 2s on 4 lanes, +1s residual.
        let trace: TaskTrace = vec![vec![1.0; 8]];
        let one = modeled_makespan(&trace, 1, 1.0);
        let four = modeled_makespan(&trace, 4, 1.0);
        assert!((one - 9.0).abs() < 1e-12);
        assert!((four - 3.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_model_respects_wave_barriers() {
        // Two waves of one 1s task each cannot overlap: 2s at any lane count.
        let trace: TaskTrace = vec![vec![1.0], vec![1.0]];
        assert!((modeled_makespan(&trace, 8, 0.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn resolve_threads_accepts_positive_integers() {
        assert_eq!(resolve_threads(Some("3"), 8), (3, None));
        assert_eq!(resolve_threads(Some(" 16 "), 2), (16, None));
        assert_eq!(resolve_threads(None, 4), (4, None));
    }

    #[test]
    fn resolve_threads_warns_on_malformed_values() {
        for bad in ["abc", "0", "-2", "", "1.5", "two"] {
            let (threads, warning) = resolve_threads(Some(bad), 6);
            assert_eq!(threads, 6, "{bad:?} must fall back to host parallelism");
            let w = warning.unwrap_or_else(|| panic!("{bad:?} must produce a warning"));
            assert!(w.contains("TORCHSPARSE_THREADS"), "warning must name the variable: {w}");
            assert!(w.contains("available parallelism (6)"), "warning must name fallback: {w}");
        }
    }

    #[test]
    fn resolve_threads_clamps_zero_host() {
        assert_eq!(resolve_threads(None, 0), (1, None));
    }

    #[test]
    fn warn_env_once_is_idempotent() {
        // No output assertion (stderr), but repeated calls must not panic or
        // deadlock, and distinct variables take separate slots.
        warn_env_once("TORCHSPARSE_TEST_VAR", "first");
        warn_env_once("TORCHSPARSE_TEST_VAR", "second");
        warn_env_once("TORCHSPARSE_TEST_VAR_2", "other");
    }

    #[test]
    fn cpu_features_are_stable_and_consistent() {
        let a = cpu_features();
        let b = cpu_features();
        assert_eq!(a, b, "probe result must be cached");
        // FMA and F16C imply at least AVX-era hardware; on every machine we
        // target they ship together with AVX2. The kernels only rely on the
        // weaker property that each flag is individually truthful, so this
        // is a sanity check, not a hard requirement.
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(a, CpuFeatures { avx2: false, fma: false, f16c: false });
    }

    #[test]
    fn global_pool_is_shared() {
        let a = ThreadPool::global();
        let b = ThreadPool::global();
        assert!(Arc::ptr_eq(a, b));
    }
}
