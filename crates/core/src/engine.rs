use crate::config::{EnginePreset, OptimizationConfig};
use crate::context::Context;
use crate::module::Module;
use crate::{CoreError, SparseTensor};
use torchsparse_gpusim::{DeviceProfile, Micros, Timeline};

/// The inference engine: a configuration pinned to a simulated device.
///
/// An [`Engine`] owns a [`Context`] and exposes the end-to-end entry point
/// the paper's evaluation measures: run a model on an input scene and report
/// per-stage latency.
///
/// # Example
///
/// ```
/// use torchsparse_core::{Engine, EnginePreset, ReLU, SparseTensor};
/// use torchsparse_coords::Coord;
/// use torchsparse_gpusim::DeviceProfile;
/// use torchsparse_tensor::Matrix;
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let mut engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
/// let x = SparseTensor::new(vec![Coord::new(0, 0, 0, 0)], Matrix::filled(1, 2, -1.0))?;
/// let y = engine.run(&ReLU::new("act"), &x)?;
/// assert_eq!(y.feats().as_slice(), &[0.0, 0.0]);
/// assert!(engine.last_latency().as_f64() > 0.0);
/// # Ok(())
/// # }
/// ```
pub struct Engine {
    ctx: Context,
}

impl Engine {
    /// Creates an engine from a preset on a device.
    ///
    /// # Panics
    ///
    /// Panics if the preset's configuration fails [`Context::validate`]
    /// (all shipped presets are valid; this guards future presets).
    pub fn new(preset: EnginePreset, device: DeviceProfile) -> Engine {
        Engine::with_config(preset.config(), device)
    }

    /// Creates an engine from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`Context::validate`] — a broken
    /// configuration is a programming bug, like a zero pooling stride. Use
    /// [`Engine::try_with_config`] to handle untrusted configurations.
    pub fn with_config(config: OptimizationConfig, device: DeviceProfile) -> Engine {
        Engine::try_with_config(config, device)
            .unwrap_or_else(|e| panic!("invalid engine configuration: {e}"))
    }

    /// Creates an engine from an explicit configuration, returning an error
    /// instead of panicking when the configuration cannot run.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when [`Context::validate`] rejects the
    /// configuration.
    pub fn try_with_config(
        config: OptimizationConfig,
        device: DeviceProfile,
    ) -> Result<Engine, CoreError> {
        let ctx = Context::new(config, device);
        ctx.validate()?;
        Ok(Engine { ctx })
    }

    /// Compiles `model` against `input`'s geometry into a
    /// [`CompiledSession`](crate::CompiledSession): planning (tracing,
    /// kernel maps, output coordinates, grouping) runs once here, and the
    /// session's `execute` then runs only feature-path work per frame.
    ///
    /// # Errors
    ///
    /// [`CoreError::Untraceable`] when the model has no
    /// [`trace`](Module::trace) implementation, plus any planning error
    /// (validation, mapping, channel mismatches).
    pub fn compile<'m, M: Module + ?Sized>(
        self,
        model: &'m M,
        input: &SparseTensor,
    ) -> Result<crate::session::CompiledSession<'m>, CoreError> {
        crate::session::CompiledSession::compile(self, model, input)
    }

    /// The execution context (device, config, timeline, tuned parameters).
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Mutable context access (used by the tuner and by ablation drivers
    /// that flip configuration flags between runs).
    pub fn context_mut(&mut self) -> &mut Context {
        &mut self.ctx
    }

    /// Runs a model end-to-end on one input scene.
    ///
    /// Per-run state (timeline, L2 simulator, map cache, degradation
    /// report) is reset first, so consecutive calls are independent
    /// measurements. The input is screened against the configuration's
    /// [`ValidationConfig`](crate::ValidationConfig) before any layer
    /// executes; under `Sanitize` the model runs on the repaired tensor and
    /// the repairs appear in [`Engine::degradation_report`].
    ///
    /// # Errors
    ///
    /// Validation failures under the `Reject` policy
    /// ([`CoreError::NonFiniteFeatures`], [`CoreError::ExtentOverflow`],
    /// [`CoreError::BudgetExceeded`], duplicate coordinates), plus any
    /// [`CoreError`] raised by the model's layers.
    pub fn run<M: Module + ?Sized>(
        &mut self,
        model: &M,
        input: &SparseTensor,
    ) -> Result<SparseTensor, CoreError> {
        self.ctx.begin_run();
        let sanitized = {
            let Context { config, faults, degradation, .. } = &mut self.ctx;
            crate::validate::validate_input(input, &config.validation, faults, degradation)?
        };
        match sanitized {
            Some(cleaned) => model.forward(&cleaned, &mut self.ctx),
            None => model.forward(input, &mut self.ctx),
        }
    }

    /// Every graceful-degradation decision of the last [`Engine::run`]
    /// (empty when the run needed no fallbacks).
    pub fn degradation_report(&self) -> &crate::faults::DegradationReport {
        &self.ctx.degradation
    }

    /// Per-stage latency of the last [`Engine::run`].
    pub fn last_timeline(&self) -> &Timeline {
        &self.ctx.timeline
    }

    /// Total simulated latency of the last [`Engine::run`].
    pub fn last_latency(&self) -> Micros {
        self.ctx.timeline.total()
    }

    /// Simulated frames per second of the last [`Engine::run`].
    pub fn last_fps(&self) -> f64 {
        self.last_latency().fps()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("ctx", &self.ctx).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ReLU, Sequential, SparseConv3d};
    use torchsparse_coords::Coord;
    use torchsparse_tensor::Matrix;

    fn scene() -> SparseTensor {
        let coords: Vec<Coord> = (0..40)
            .map(|i| Coord::new(0, i % 8, (i / 8) % 5, (i % 3) - 1))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = coords.len();
        SparseTensor::new(coords, Matrix::from_fn(n, 4, |r, c| ((r * c) % 5) as f32 - 2.0)).unwrap()
    }

    fn tiny_model() -> Sequential {
        Sequential::new("net")
            .push(SparseConv3d::with_random_weights("conv1", 4, 8, 3, 1, 1))
            .push(ReLU::new("act1"))
            .push(SparseConv3d::with_random_weights("conv2", 8, 4, 3, 1, 2))
    }

    #[test]
    fn run_produces_output_and_latency() {
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let y = e.run(&tiny_model(), &scene()).unwrap();
        assert_eq!(y.channels(), 4);
        assert!(e.last_latency().as_f64() > 0.0);
        assert!(e.last_fps() > 0.0);
    }

    #[test]
    fn consecutive_runs_are_independent() {
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let model = tiny_model();
        let x = scene();
        e.run(&model, &x).unwrap();
        let first = e.last_latency();
        e.run(&model, &x).unwrap();
        let second = e.last_latency();
        assert_eq!(first, second, "deterministic simulator must repeat exactly");
    }

    #[test]
    fn presets_produce_equal_fp32_outputs() {
        let model = tiny_model();
        let x = scene();
        let mut reference: Option<Matrix> = None;
        for preset in
            [EnginePreset::BaselineFp32, EnginePreset::MinkowskiEngine, EnginePreset::SpConv]
        {
            let mut e = Engine::new(preset, DeviceProfile::rtx_2080ti());
            let y = e.run(&model, &x).unwrap();
            match &reference {
                None => reference = Some(y.feats().clone()),
                Some(r) => {
                    assert!(y.feats().max_abs_diff(r).unwrap() < 1e-4, "{preset:?} differs");
                }
            }
        }
    }

    #[test]
    fn simulate_only_reports_identical_latency() {
        let model = tiny_model();
        let x = scene();
        let mut full = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        full.run(&model, &x).unwrap();
        let mut dry = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        dry.context_mut().simulate_only = true;
        dry.run(&model, &x).unwrap();
        assert_eq!(full.last_timeline(), dry.last_timeline());
    }

    #[test]
    fn layer_profiles_sum_to_total() {
        let model = tiny_model();
        let x = scene();
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        e.context_mut().profile_layers = true;
        e.run(&model, &x).unwrap();
        let profiles = &e.context().layer_profiles;
        assert_eq!(profiles.len(), 3, "conv1 + relu + conv2");
        let sum: f64 = profiles.iter().map(|p| p.timeline.total().as_f64()).sum();
        let total = e.last_latency().as_f64();
        assert!((sum - total).abs() < 1e-6 * total.max(1.0), "profiles sum {sum} != total {total}");
        assert_eq!(profiles[0].name, "conv1");
        assert_eq!(profiles[0].input_points, x.len());
    }

    #[test]
    fn profiling_off_records_nothing() {
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        e.run(&tiny_model(), &scene()).unwrap();
        assert!(e.context().layer_profiles.is_empty());
    }

    #[test]
    fn torchsparse_beats_baseline_on_this_workload() {
        let model = tiny_model();
        let x = scene();
        let mut ts = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let mut base = Engine::new(EnginePreset::BaselineFp32, DeviceProfile::rtx_2080ti());
        ts.run(&model, &x).unwrap();
        base.run(&model, &x).unwrap();
        assert!(
            ts.last_latency() < base.last_latency(),
            "TorchSparse {} should beat baseline {}",
            ts.last_latency(),
            base.last_latency()
        );
    }
}
