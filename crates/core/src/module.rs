use crate::context::Context;
use crate::plan::Tracer;
use crate::{CoreError, SparseTensor};

/// A sparse neural network layer or block, in the PyTorch-like style of the
/// TorchSparse Python API (§4.1).
///
/// Implementations execute their computation on the CPU and record
/// simulated GPU cost into the [`Context`].
pub trait Module {
    /// Runs the module on an input tensor.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError`] on shape/channel mismatches or
    /// mapping failures.
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError>;

    /// Appends this module's flattened [`LayerOp`](crate::LayerOp) sequence
    /// to `tracer`, so the module can be compiled into a
    /// [`CompiledSession`](crate::CompiledSession). Containers recurse into
    /// children; leaf layers push one op.
    ///
    /// # Errors
    ///
    /// The default implementation returns [`CoreError::Untraceable`]:
    /// modules whose control flow cannot be expressed in the layer-op IR
    /// (data-dependent branching, non-`Module` side inputs) stay
    /// dynamic-only.
    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        let _ = tracer;
        Err(CoreError::Untraceable { module: self.name().to_owned() })
    }

    /// A human-readable name for diagnostics and tuning keys.
    fn name(&self) -> &str;

    /// Number of learnable parameters.
    fn param_count(&self) -> usize {
        0
    }
}

/// A sequential container, equivalent to `nn.Sequential`.
///
/// # Example
///
/// ```
/// use torchsparse_core::{Module, ReLU, Sequential};
///
/// let block = Sequential::new("head")
///     .push(ReLU::new("act1"))
///     .push(ReLU::new("act2"));
/// assert_eq!(block.len(), 2);
/// assert_eq!(block.name(), "head");
/// ```
pub struct Sequential {
    name: String,
    modules: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Creates an empty container.
    pub fn new(name: impl Into<String>) -> Sequential {
        Sequential { name: name.into(), modules: Vec::new() }
    }

    /// Appends a module (builder style).
    #[must_use]
    pub fn push(mut self, module: impl Module + 'static) -> Sequential {
        self.modules.push(Box::new(module));
        self
    }

    /// Appends a boxed module in place.
    pub fn push_boxed(&mut self, module: Box<dyn Module>) {
        self.modules.push(module);
    }

    /// Number of contained modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The contained modules.
    pub fn modules(&self) -> &[Box<dyn Module>] {
        &self.modules
    }
}

impl Module for Sequential {
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        // Only an empty container needs to clone (identity); otherwise the
        // first layer reads the input directly.
        let (first, rest) = match self.modules.split_first() {
            Some(parts) => parts,
            None => return Ok(input.clone()),
        };
        let mut x = first.forward(input, ctx)?;
        for m in rest {
            x = m.forward(&x, ctx)?;
        }
        Ok(x)
    }

    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        for m in &self.modules {
            m.trace(tracer)?;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        self.modules.iter().map(|m| m.param_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationConfig;
    use torchsparse_coords::Coord;
    use torchsparse_gpusim::DeviceProfile;
    use torchsparse_tensor::Matrix;

    struct AddOne(String);

    impl Module for AddOne {
        fn forward(
            &self,
            input: &SparseTensor,
            _ctx: &mut Context,
        ) -> Result<SparseTensor, CoreError> {
            let mut feats = input.feats().clone();
            feats.map_inplace(|v| v + 1.0);
            input.with_feats(feats)
        }

        fn name(&self) -> &str {
            &self.0
        }

        fn param_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn sequential_chains_in_order() {
        let seq = Sequential::new("s").push(AddOne("a".into())).push(AddOne("b".into()));
        let x = SparseTensor::new(vec![Coord::new(0, 0, 0, 0)], Matrix::zeros(1, 2)).unwrap();
        let mut ctx = Context::new(OptimizationConfig::torchsparse(), DeviceProfile::rtx_2080ti());
        let y = seq.forward(&x, &mut ctx).unwrap();
        assert_eq!(y.feats().as_slice(), &[2.0, 2.0]);
        assert_eq!(seq.param_count(), 2);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let seq = Sequential::new("empty");
        assert!(seq.is_empty());
        let x = SparseTensor::new(vec![Coord::new(0, 0, 0, 0)], Matrix::filled(1, 1, 3.0)).unwrap();
        let mut ctx = Context::new(OptimizationConfig::torchsparse(), DeviceProfile::rtx_2080ti());
        let y = seq.forward(&x, &mut ctx).unwrap();
        assert_eq!(y, x);
    }
}
