use std::fmt;
use torchsparse_coords::CoordsError;
use torchsparse_tensor::TensorError;

/// Error type for the sparse convolution engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// A coordinate/mapping operation failed.
    Coords(CoordsError),
    /// Coordinates and features disagree in length.
    LengthMismatch {
        /// Number of coordinates.
        coords: usize,
        /// Number of feature rows.
        feats: usize,
    },
    /// A layer received input with the wrong channel count.
    ChannelMismatch {
        /// The layer's expected input channels.
        expected: usize,
        /// The input's channel count.
        actual: usize,
    },
    /// A transposed convolution could not find the cached map of its
    /// matching downsampling layer.
    MissingCachedMap {
        /// The tensor stride the transposed layer ran at.
        stride: i32,
        /// Kernel size of the layer.
        kernel_size: usize,
    },
    /// The layer's weight list does not match `kernel_size^3`.
    BadWeightCount {
        /// Expected number of per-offset weight matrices.
        expected: usize,
        /// Provided number.
        actual: usize,
    },
    /// An empty input tensor where computation requires points.
    EmptyInput,
    /// Input features contain NaN or infinite values (validation policy
    /// [`Reject`](crate::ValidationPolicy::Reject)).
    NonFiniteFeatures {
        /// Number of non-finite feature values found.
        count: usize,
    },
    /// The input's coordinate bounding box requires more grid cells than the
    /// validation budget allows — building a grid table over it would
    /// exhaust memory.
    ExtentOverflow {
        /// Cells the bounding box requires (`u64::MAX` when the product
        /// itself overflows 64 bits).
        cells: u64,
        /// The configured cell budget.
        limit: u64,
    },
    /// The input exceeds the configured point budget.
    BudgetExceeded {
        /// Points in the input.
        points: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// A module tree could not be flattened into the layer-op IR because
    /// some module lacks a [`trace`](crate::Module::trace) implementation.
    Untraceable {
        /// Name of the module without a trace implementation.
        module: String,
    },
    /// The engine configuration is contradictory or unrunnable (see
    /// [`Context::validate`](crate::Context::validate)).
    InvalidConfig {
        /// What is wrong with the configuration.
        reason: String,
    },
    /// A compiled execution plan desynchronized from the traced op list —
    /// an internal invariant violation, reported instead of panicking.
    PlanMismatch {
        /// What desynchronized.
        reason: &'static str,
    },
    /// A per-request deadline budget expired at a stage boundary (or an
    /// injected `deadline-overrun` stall fired there). The serving runtime
    /// classifies this as transient: the frame may be retried, and the
    /// stream itself stays healthy.
    DeadlineExceeded {
        /// The stage boundary where the expiry was detected: `"mapping"`,
        /// `"gather-gemm-scatter"`, or `"epilogue"`.
        stage: &'static str,
        /// The configured budget, microseconds (0 when no budget was set
        /// and the error came purely from an injected overrun).
        budget_us: u64,
        /// Wall-clock elapsed when detected, microseconds. Equals
        /// `budget_us` for injected overruns.
        elapsed_us: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Coords(e) => write!(f, "coords error: {e}"),
            CoreError::LengthMismatch { coords, feats } => {
                write!(f, "{coords} coordinates but {feats} feature rows")
            }
            CoreError::ChannelMismatch { expected, actual } => {
                write!(f, "layer expects {expected} input channels, got {actual}")
            }
            CoreError::MissingCachedMap { stride, kernel_size } => write!(
                f,
                "no cached downsample map for transposed conv (stride {stride}, kernel {kernel_size})"
            ),
            CoreError::BadWeightCount { expected, actual } => {
                write!(f, "expected {expected} weight matrices, got {actual}")
            }
            CoreError::EmptyInput => write!(f, "input tensor has no points"),
            CoreError::NonFiniteFeatures { count } => {
                write!(f, "input features contain {count} non-finite values")
            }
            CoreError::ExtentOverflow { cells, limit } => {
                write!(f, "coordinate extent needs {cells} grid cells, budget is {limit}")
            }
            CoreError::BudgetExceeded { points, limit } => {
                write!(f, "input has {points} points, budget is {limit}")
            }
            CoreError::Untraceable { module } => {
                write!(f, "module '{module}' cannot be traced into a layer-op IR")
            }
            CoreError::InvalidConfig { reason } => {
                write!(f, "invalid engine configuration: {reason}")
            }
            CoreError::PlanMismatch { reason } => {
                write!(f, "compiled plan out of sync with traced ops: {reason}")
            }
            CoreError::DeadlineExceeded { stage, budget_us, elapsed_us } => {
                write!(f, "deadline of {budget_us}us exceeded at {stage} boundary ({elapsed_us}us elapsed)")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Coords(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> CoreError {
        CoreError::Tensor(e)
    }
}

impl From<CoordsError> for CoreError {
    fn from(e: CoordsError) -> CoreError {
        CoreError::Coords(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_nonempty() {
        let variants: Vec<CoreError> = vec![
            CoreError::Tensor(TensorError::BatchMismatch { lhs: 1, rhs: 2 }),
            CoreError::Coords(CoordsError::ZeroStride),
            CoreError::LengthMismatch { coords: 1, feats: 2 },
            CoreError::ChannelMismatch { expected: 4, actual: 8 },
            CoreError::MissingCachedMap { stride: 2, kernel_size: 2 },
            CoreError::BadWeightCount { expected: 27, actual: 26 },
            CoreError::EmptyInput,
            CoreError::NonFiniteFeatures { count: 3 },
            CoreError::ExtentOverflow { cells: u64::MAX, limit: 1 << 28 },
            CoreError::BudgetExceeded { points: 1_000_000, limit: 500_000 },
            CoreError::Untraceable { module: "centerpoint".to_owned() },
            CoreError::InvalidConfig { reason: "zero threads".to_owned() },
            CoreError::PlanMismatch { reason: "op/step count differs" },
            CoreError::DeadlineExceeded { stage: "mapping", budget_us: 1_000, elapsed_us: 1_500 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e = CoreError::from(TensorError::BatchMismatch { lhs: 1, rhs: 2 });
        assert!(e.source().is_some());
        assert!(CoreError::EmptyInput.source().is_none());
    }
}
