use crate::config::{GroupingStrategy, Precision};
use crate::context::{CachedMap, Context, LayerWorkload, MapKey};
use crate::dataflow::{
    apply_storage_precision_owned_kernel, policy_kernel, run_fetch_on_demand,
    run_gather_matmul_scatter, ConvWorkload, FusedOrder,
};
use crate::faults::FaultSite;
use crate::grouping::plan_groups;
use crate::mapping::{build_layer_mapping_observed_on, compact_cached_index};
use crate::module::Module;
use crate::plan::{ConvDataflow, ConvPlan, LayerOp, Tracer};
use crate::{CoreError, SparseTensor};
use std::sync::{Arc, OnceLock};
use torchsparse_coords::{offsets, Coord};
use torchsparse_gpusim::Stage;
use torchsparse_tensor::{Matrix, PackedB};

/// A sparse 3D convolution layer (`torchsparse.nn.Conv3d`).
///
/// Three flavors, selected by `stride`/`transposed`:
///
/// - **submanifold** (`stride == 1`): outputs at exactly the input sites;
/// - **strided downsampling** (`stride > 1`): output coordinates computed by
///   Algorithm 3;
/// - **transposed/inverse** (`transposed == true`): upsamples back to the
///   coordinates of the matching downsampling layer by reusing its cached
///   map with inputs and outputs swapped — no `indice_key` bookkeeping is
///   required of the user (§4.1).
///
/// # Example
///
/// ```
/// use torchsparse_core::SparseConv3d;
///
/// let conv = SparseConv3d::with_random_weights("conv1", 4, 16, 3, 1, 42);
/// assert_eq!(conv.c_in(), 4);
/// assert_eq!(conv.c_out(), 16);
/// assert!(!conv.transposed());
/// ```
pub struct SparseConv3d {
    name: String,
    c_in: usize,
    c_out: usize,
    kernel_size: usize,
    stride: i32,
    dilation: i32,
    transposed: bool,
    weights: Vec<Matrix>,
    /// Panel-major packed copies of `weights`, built lazily on first plan
    /// and shared with every [`ConvPlan`] via `Arc`. Weights are immutable
    /// after construction, so the pack is computed at most once.
    packed: OnceLock<Arc<Vec<PackedB>>>,
}

/// A tiny deterministic generator for weight initialization (keeps the core
/// crate free of a `rand` dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SparseConv3d {
    /// Creates a convolution with explicit per-offset weights.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadWeightCount`] when `weights.len()` is not
    /// `kernel_size^3` and [`CoreError::Tensor`] on a shape mismatch.
    pub fn new(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        kernel_size: usize,
        stride: i32,
        transposed: bool,
        weights: Vec<Matrix>,
    ) -> Result<SparseConv3d, CoreError> {
        let volume = offsets::kernel_volume(kernel_size);
        if weights.len() != volume {
            return Err(CoreError::BadWeightCount { expected: volume, actual: weights.len() });
        }
        for w in &weights {
            if w.shape() != (c_in, c_out) {
                return Err(CoreError::Tensor(torchsparse_tensor::TensorError::ShapeMismatch {
                    op: "conv_weights",
                    lhs: w.shape(),
                    rhs: (c_in, c_out),
                }));
            }
        }
        Ok(SparseConv3d {
            name: name.into(),
            c_in,
            c_out,
            kernel_size,
            stride,
            dilation: 1,
            transposed,
            weights,
            packed: OnceLock::new(),
        })
    }

    /// Creates a convolution with Kaiming-style random weights from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_size == 0` (a configuration bug, not input data).
    pub fn with_random_weights(
        name: impl Into<String>,
        c_in: usize,
        c_out: usize,
        kernel_size: usize,
        stride: i32,
        seed: u64,
    ) -> SparseConv3d {
        assert!(kernel_size > 0, "kernel size must be positive");
        let volume = offsets::kernel_volume(kernel_size);
        let fan_in = (c_in * volume) as f32;
        let scale = (2.0 / fan_in).sqrt();
        let mut state = seed;
        let weights = (0..volume)
            .map(|_| {
                Matrix::from_fn(c_in, c_out, |_, _| {
                    // Uniform in [-scale, scale].
                    let u = (splitmix64(&mut state) >> 11) as f32 / (1u64 << 53) as f32;
                    (2.0 * u - 1.0) * scale
                })
            })
            .collect();
        // `new` only rejects weight shape mismatches; the weights above are
        // constructed with exactly `volume` matrices of `c_in x c_out`.
        #[allow(clippy::expect_used)]
        SparseConv3d::new(name, c_in, c_out, kernel_size, stride, false, weights)
            .expect("constructed weights are consistent")
    }

    /// Marks the convolution as transposed (inverse), builder style.
    #[must_use]
    pub fn into_transposed(mut self) -> SparseConv3d {
        self.transposed = true;
        self
    }

    /// Sets the dilation factor (builder style). Only stride-1,
    /// non-transposed convolutions may be dilated.
    ///
    /// # Panics
    ///
    /// Panics if `dilation < 1`, or if the layer is strided or transposed.
    #[must_use]
    pub fn with_dilation(mut self, dilation: i32) -> SparseConv3d {
        assert!(dilation >= 1, "dilation must be at least 1");
        assert!(
            self.stride == 1 && !self.transposed || dilation == 1,
            "dilation requires a stride-1 non-transposed convolution"
        );
        self.dilation = dilation;
        self
    }

    /// The dilation factor.
    pub fn dilation(&self) -> i32 {
        self.dilation
    }

    /// Input channels.
    pub fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output channels.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Kernel size.
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Convolution stride.
    pub fn stride(&self) -> i32 {
        self.stride
    }

    /// Whether this is a transposed (inverse) convolution.
    pub fn transposed(&self) -> bool {
        self.transposed
    }

    /// Whether this layer is a stride-1 submanifold convolution with an odd
    /// kernel (the case with identity center map and mirror symmetry).
    pub fn is_submanifold(&self) -> bool {
        self.stride == 1 && !self.transposed && self.kernel_size % 2 == 1
    }

    /// Stable per-layer tuning key (name).
    pub fn layer_name(&self) -> &str {
        &self.name
    }

    /// The per-offset weights.
    pub fn weights(&self) -> &[Matrix] {
        &self.weights
    }

    /// The per-offset weights in the microkernel's panel-major packed
    /// layout, built on first use and cached for the layer's lifetime.
    pub(crate) fn packed_weights(&self) -> Arc<Vec<PackedB>> {
        Arc::clone(
            self.packed.get_or_init(|| Arc::new(self.weights.iter().map(PackedB::pack).collect())),
        )
    }

    /// Acquires the kernel map and output coordinates, via the cache when
    /// possible.
    fn acquire_map(
        &self,
        coords: &[Coord],
        in_stride: i32,
        ctx: &mut Context,
    ) -> Result<(Arc<CachedMap>, bool), CoreError> {
        if self.transposed {
            let fine_stride = in_stride / self.stride;
            let key = MapKey {
                fine_stride,
                kernel_size: self.kernel_size,
                conv_stride: self.stride,
                dilation: self.dilation,
            };
            return ctx.cached_map(key).map(|m| (m, true)).ok_or(CoreError::MissingCachedMap {
                stride: in_stride,
                kernel_size: self.kernel_size,
            });
        }
        let key = MapKey {
            fine_stride: in_stride,
            kernel_size: self.kernel_size,
            conv_stride: self.stride,
            dilation: self.dilation,
        };
        if let Some(hit) = ctx.cached_map(key) {
            // Map reuse across layers sharing (stride, kernel): free, as in
            // real engines' coordinate managers. An injected cache fault
            // invalidates the entry; the map is an optimization, not a
            // correctness dependency, so the fallback is a plain rebuild.
            if !ctx.faults.should_fail(FaultSite::KernelMapCache) {
                return Ok((hit, true));
            }
            ctx.degradation
                .record(FaultSite::KernelMapCache, "injected cache invalidation; map rebuilt");
        }
        let mapping = {
            let Context { config, device, faults, degradation, runtime, .. } = ctx;
            build_layer_mapping_observed_on(
                &runtime.pool(),
                coords,
                self.kernel_size,
                self.stride,
                self.dilation,
                config,
                device,
                faults,
                degradation,
            )?
        };
        ctx.timeline.add(Stage::Mapping, mapping.latency);
        let cached = CachedMap {
            map: mapping.map,
            fine_coords: coords.to_vec(),
            coarse_coords: mapping.out_coords,
            index: compact_cached_index(mapping.index, coords, &ctx.config),
        };
        Ok((ctx.store_map(key, cached), false))
    }

    /// The plan half: derives everything this layer needs from input
    /// *geometry* alone — kernel map (built or cached), output coordinates
    /// and stride, and the frozen dataflow/grouping decision. Charges only
    /// the `Mapping` stage.
    pub(crate) fn plan(
        &self,
        coords: &[Coord],
        in_stride: i32,
        in_channels: usize,
        ctx: &mut Context,
    ) -> Result<ConvPlan, CoreError> {
        if in_channels != self.c_in {
            return Err(CoreError::ChannelMismatch { expected: self.c_in, actual: in_channels });
        }
        if coords.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let (cached, _was_hit) = self.acquire_map(coords, in_stride, ctx)?;
        // For a transposed conv the map is flipped: entries run coarse -> fine.
        let (flipped, use_fine, out_stride) = if self.transposed {
            (Some(cached.map.transposed()), true, in_stride / self.stride)
        } else if self.stride > 1 {
            (None, false, in_stride * self.stride)
        } else {
            (None, true, in_stride)
        };

        let submanifold = self.is_submanifold();
        let center = if submanifold { offsets::center_index(self.kernel_size) } else { None };

        let map_ref = match &flipped {
            Some(m) => m,
            None => &cached.map,
        };
        // The compile-time policy search may have selected a full execution
        // policy for this layer; its grouping choice outranks the grouping
        // and `(epsilon, S)` resolution below.
        let policy = ctx.policy_for(&self.name);
        // Fetch-on-demand when configured and the workload is small.
        let avg_map = map_ref.total_entries() / map_ref.num_offsets().max(1);
        let use_fod = ctx.config.fetch_on_demand_below.is_some_and(|t| avg_map < t);
        let dataflow = if use_fod {
            ConvDataflow::FetchOnDemand
        } else {
            // Grouping strategy: a tuned policy wins, then per-layer tuned
            // `(epsilon, S)` parameters if present; after a tuning failure
            // adaptive layers degrade to fixed groups.
            let strategy = match (policy.map(|p| p.grouping), ctx.tuned_for(&self.name)) {
                (Some(GroupingStrategy::Adaptive { .. }), _) | (None, _)
                    if ctx.grouping_fallback
                        && matches!(ctx.config.grouping, GroupingStrategy::Adaptive { .. }) =>
                {
                    GroupingStrategy::Fixed
                }
                (Some(s), _) => s,
                (None, Some((epsilon, s_threshold)))
                    if matches!(ctx.config.grouping, GroupingStrategy::Adaptive { .. }) =>
                {
                    GroupingStrategy::Adaptive { epsilon, s_threshold }
                }
                (None, _) => ctx.config.grouping,
            };
            ConvDataflow::Grouped(plan_groups(&map_ref.sizes(), submanifold, strategy))
        };

        // Plan-time locality reordering and scatter metadata: sort each
        // offset's entries by output row once per geometry, so every frame
        // executed against this plan streams cache-friendly panels (fused
        // route) or chunk-partitioned producer lists (unfused scatter)
        // without rebuilding any index. The per-offset work runs on the
        // worker pool — plan builds are on the serial critical path of
        // compiled sessions.
        let fused = {
            let n_out =
                if use_fine { cached.fine_coords.len() } else { cached.coarse_coords.len() };
            match policy {
                Some(p) => Arc::new(FusedOrder::build_on_chunked(
                    &ctx.runtime.pool(),
                    map_ref,
                    n_out,
                    p.chunk_rows,
                )),
                None => Arc::new(FusedOrder::build_on(&ctx.runtime.pool(), map_ref, n_out)),
            }
        };

        Ok(ConvPlan {
            cached,
            flipped,
            use_fine,
            out_stride,
            center,
            submanifold,
            dataflow,
            packed: self.packed_weights(),
            fused,
            policy,
        })
    }

    /// The execute half: runs only the feature path (gather/matmul/scatter
    /// or fetch-on-demand, plus quantization and overflow fallback) against
    /// a frozen [`ConvPlan`]. Never builds maps or plans groups.
    pub(crate) fn execute_planned(
        &self,
        input: &SparseTensor,
        plan: &ConvPlan,
        ctx: &mut Context,
    ) -> Result<SparseTensor, CoreError> {
        if input.channels() != self.c_in {
            return Err(CoreError::ChannelMismatch {
                expected: self.c_in,
                actual: input.channels(),
            });
        }
        if input.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        ctx.charge_host_op();

        let map_ref = plan.map();
        let out_coords = plan.out_coords();

        if ctx.record_workloads {
            ctx.workloads.push(LayerWorkload {
                name: self.name.clone(),
                map_sizes: map_ref.sizes(),
                c_in: self.c_in,
                c_out: self.c_out,
                submanifold: plan.submanifold,
            });
        }

        let workload = ConvWorkload {
            in_feats: input.feats(),
            weights: &self.weights,
            packed: Some(&plan.packed),
            map: map_ref,
            n_out: out_coords.len(),
            center_identity: plan.center,
            fused: Some(&plan.fused),
            policy: plan.policy,
        };

        let run_dataflow = |ctx: &mut Context| -> Result<Matrix, CoreError> {
            match &plan.dataflow {
                ConvDataflow::FetchOnDemand => run_fetch_on_demand(&workload, ctx),
                ConvDataflow::Grouped(groups) => run_gather_matmul_scatter(&workload, groups, ctx),
            }
        };

        let mut out_feats = apply_storage_precision_owned_kernel(
            &ctx.runtime.pool(),
            run_dataflow(ctx)?,
            ctx.config.precision,
            policy_kernel(&ctx.config, plan.policy.as_ref()),
        );
        if ctx.config.precision != Precision::Fp32 {
            if !out_feats.is_empty() && ctx.faults.should_fail(FaultSite::Fp16Overflow) {
                // Simulate a quantized activation saturating to infinity;
                // detection below then takes the same path as an organic
                // overflow.
                out_feats.as_mut_slice()[0] = f32::INFINITY;
            }
            if !out_feats.par_is_finite(&ctx.runtime.pool()) {
                ctx.degradation.record(
                    FaultSite::Fp16Overflow,
                    "non-finite quantized output; layer re-run in FP32",
                );
                let saved = ctx.config.precision;
                ctx.config.precision = Precision::Fp32;
                let redo = run_dataflow(ctx);
                ctx.config.precision = saved;
                // The re-run output stays FP32: precision is a storage
                // optimization, and this layer just proved it loses too much.
                out_feats = redo?;
            }
        }
        SparseTensor::with_stride(out_coords.to_vec(), out_feats, plan.out_stride)
    }
}

impl std::fmt::Debug for SparseConv3d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseConv3d")
            .field("name", &self.name)
            .field("c_in", &self.c_in)
            .field("c_out", &self.c_out)
            .field("kernel_size", &self.kernel_size)
            .field("stride", &self.stride)
            .field("transposed", &self.transposed)
            .finish()
    }
}

impl Module for SparseConv3d {
    /// Plan-then-execute: derives the geometric plan (map, output
    /// coordinates, grouping) and immediately runs the feature path against
    /// it. [`CompiledSession`](crate::CompiledSession) calls the two halves
    /// separately to amortize planning across frames.
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        let profile_start = ctx.start_layer_profile();
        let plan = self.plan(input.coords(), input.stride(), input.channels(), ctx)?;
        let out = self.execute_planned(input, &plan, ctx)?;
        ctx.finish_layer_profile(&self.name, input.len(), profile_start);
        Ok(out)
    }

    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        tracer.push(LayerOp::Conv(self));
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        self.weights.len() * self.c_in * self.c_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationConfig;
    use torchsparse_coords::Coord;
    use torchsparse_gpusim::DeviceProfile;

    fn ctx() -> Context {
        Context::new(OptimizationConfig::torchsparse(), DeviceProfile::rtx_2080ti())
    }

    fn input(c: usize) -> SparseTensor {
        let coords: Vec<Coord> = (0..20)
            .map(|i| Coord::new(0, i % 5, (i / 5) % 4, i % 3))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let feats = Matrix::from_fn(coords.len(), c, |r, cc| ((r + cc) % 7) as f32 - 3.0);
        SparseTensor::new(coords, feats).unwrap()
    }

    #[test]
    fn weight_count_validated() {
        let err =
            SparseConv3d::new("c", 2, 2, 3, 1, false, vec![Matrix::zeros(2, 2); 26]).unwrap_err();
        assert!(matches!(err, CoreError::BadWeightCount { expected: 27, actual: 26 }));
    }

    #[test]
    fn weight_shape_validated() {
        let err = SparseConv3d::new("c", 2, 2, 1, 1, false, vec![Matrix::zeros(2, 3)]).unwrap_err();
        assert!(matches!(err, CoreError::Tensor(_)));
    }

    #[test]
    fn channel_mismatch_rejected() {
        let conv = SparseConv3d::with_random_weights("c", 8, 4, 3, 1, 0);
        let mut c = ctx();
        assert!(matches!(
            conv.forward(&input(4), &mut c),
            Err(CoreError::ChannelMismatch { expected: 8, actual: 4 })
        ));
    }

    #[test]
    fn submanifold_preserves_coords_and_stride() {
        let conv = SparseConv3d::with_random_weights("c", 4, 8, 3, 1, 1);
        let mut c = ctx();
        let x = input(4);
        let y = conv.forward(&x, &mut c).unwrap();
        assert_eq!(y.coords(), x.coords());
        assert_eq!(y.stride(), 1);
        assert_eq!(y.channels(), 8);
    }

    #[test]
    fn downsample_coarsens() {
        let conv = SparseConv3d::with_random_weights("d", 4, 8, 2, 2, 2);
        let mut c = ctx();
        let x = input(4);
        let y = conv.forward(&x, &mut c).unwrap();
        assert!(y.len() < x.len());
        assert_eq!(y.stride(), 2);
    }

    #[test]
    fn transposed_restores_coords() {
        let down = SparseConv3d::with_random_weights("d", 4, 8, 2, 2, 3);
        let up = SparseConv3d::with_random_weights("u", 8, 4, 2, 2, 4).into_transposed();
        let mut c = ctx();
        let x = input(4);
        let mid = down.forward(&x, &mut c).unwrap();
        let y = up.forward(&mid, &mut c).unwrap();
        assert_eq!(y.coords(), x.coords());
        assert_eq!(y.stride(), 1);
        assert_eq!(y.channels(), 4);
    }

    #[test]
    fn transposed_without_cache_fails() {
        let up = SparseConv3d::with_random_weights("u", 4, 4, 2, 2, 5).into_transposed();
        let mut c = ctx();
        let x = SparseTensor::with_stride(input(4).coords().to_vec(), input(4).feats().clone(), 2)
            .unwrap();
        assert!(matches!(up.forward(&x, &mut c), Err(CoreError::MissingCachedMap { .. })));
    }

    #[test]
    fn map_cache_hit_skips_mapping_cost() {
        let conv1 = SparseConv3d::with_random_weights("a", 4, 4, 3, 1, 6);
        let conv2 = SparseConv3d::with_random_weights("b", 4, 4, 3, 1, 7);
        let mut c = ctx();
        let x = input(4);
        let y = conv1.forward(&x, &mut c).unwrap();
        let after_first = c.timeline.stage(Stage::Mapping);
        conv2.forward(&y, &mut c).unwrap();
        let after_second = c.timeline.stage(Stage::Mapping);
        assert_eq!(after_first, after_second, "second conv must reuse the cached map");
    }

    #[test]
    fn outputs_identical_across_engines_fp32() {
        // All FP32 engine presets compute numerically identical outputs.
        let conv = SparseConv3d::with_random_weights("c", 4, 6, 3, 1, 8);
        let x = input(4);
        let mut reference: Option<Matrix> = None;
        for cfg in [
            OptimizationConfig::baseline_fp32(),
            OptimizationConfig::minkowski_engine(),
            OptimizationConfig::spconv_fp32(),
        ] {
            let mut c = Context::new(cfg, DeviceProfile::rtx_2080ti());
            let y = conv.forward(&x, &mut c).unwrap();
            match &reference {
                None => reference = Some(y.feats().clone()),
                Some(r) => {
                    let diff = y.feats().max_abs_diff(r).unwrap();
                    assert!(diff < 1e-4, "preset output differs by {diff}");
                }
            }
        }
    }

    #[test]
    fn param_count() {
        let conv = SparseConv3d::with_random_weights("c", 4, 8, 3, 1, 9);
        assert_eq!(conv.param_count(), 27 * 4 * 8);
    }

    #[test]
    fn dilated_conv_runs_and_differs() {
        let plain = SparseConv3d::with_random_weights("c", 4, 4, 3, 1, 11);
        let dilated = SparseConv3d::with_random_weights("c", 4, 4, 3, 1, 11).with_dilation(2);
        assert_eq!(dilated.dilation(), 2);
        let x = input(4);
        let mut c1 = ctx();
        let mut c2 = ctx();
        let a = plain.forward(&x, &mut c1).unwrap();
        let b = dilated.forward(&x, &mut c2).unwrap();
        assert_eq!(a.coords(), b.coords(), "dilation keeps submanifold coords");
        assert!(a.feats().max_abs_diff(b.feats()).unwrap() > 1e-6, "different receptive fields");
    }

    #[test]
    #[should_panic(expected = "stride-1 non-transposed")]
    fn dilation_rejected_on_strided_conv() {
        let _ = SparseConv3d::with_random_weights("c", 4, 4, 2, 2, 0).with_dilation(2);
    }

    #[test]
    fn dilation_has_its_own_cache_slot() {
        let plain = SparseConv3d::with_random_weights("a", 4, 4, 3, 1, 1);
        let dilated = SparseConv3d::with_random_weights("b", 4, 4, 3, 1, 2).with_dilation(2);
        let mut c = ctx();
        let x = input(4);
        plain.forward(&x, &mut c).unwrap();
        let after_plain = c.timeline.stage(Stage::Mapping);
        dilated.forward(&x, &mut c).unwrap();
        assert!(
            c.timeline.stage(Stage::Mapping) > after_plain,
            "dilated conv must build its own map, not reuse the undilated one"
        );
    }

    #[test]
    fn workload_recording() {
        let conv = SparseConv3d::with_random_weights("c", 4, 4, 3, 1, 10);
        let mut c = ctx();
        c.record_workloads = true;
        conv.forward(&input(4), &mut c).unwrap();
        assert_eq!(c.workloads.len(), 1);
        assert_eq!(c.workloads[0].name, "c");
        assert_eq!(c.workloads[0].map_sizes.len(), 27);
        assert!(c.workloads[0].submanifold);
    }
}
