use crate::config::OptimizationConfig;
use crate::CoreError;
use std::collections::HashMap;
use std::sync::Arc;
use torchsparse_coords::{Coord, KernelMap};
use torchsparse_gpusim::{DeviceProfile, GemmModel, MemorySim, Timeline};

/// Key identifying a cached kernel map within one inference run.
///
/// Real engines key maps on (tensor stride, kernel size, conv stride) via a
/// coordinate manager (MinkowskiEngine) or `indice_key` (SpConv);
/// TorchSparse performs the same caching internally so users never annotate
/// their models (§4.1). The key always uses the *finer* tensor stride of the
/// layer, so a transposed convolution finds the map of the downsampling
/// layer it inverts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MapKey {
    /// Tensor stride of the finer (higher-resolution) side.
    pub fine_stride: i32,
    /// Kernel size.
    pub kernel_size: usize,
    /// Convolution stride.
    pub conv_stride: i32,
    /// Dilation factor.
    pub dilation: i32,
}

/// A cached map together with the coordinate lists it connects.
#[derive(Debug)]
pub struct CachedMap {
    /// The kernel map from fine to coarse coordinates.
    pub map: KernelMap,
    /// Coordinates on the fine side (inputs of the downsample).
    pub fine_coords: Vec<Coord>,
    /// Coordinates on the coarse side (outputs of the downsample). For
    /// stride-1 layers this equals `fine_coords`.
    pub coarse_coords: Vec<Coord>,
    /// The coordinate index the map search probed, retained so frozen plans
    /// can report their resident footprint
    /// ([`crate::ExecutionPlan::memory_bytes`]) and incremental re-plans
    /// can re-query — and layer a [`torchsparse_coords::DeltaIndex`] on
    /// top — without rebuilding the index. Shared (`Arc`) because a delta
    /// patch keeps the old plan's index alive as the base of the new one.
    pub index: Arc<dyn torchsparse_coords::CoordIndex>,
}

impl CachedMap {
    /// Resident bytes of this cached mapping: the CSR kernel map, the
    /// retained coordinate index, and both coordinate lists.
    pub fn memory_bytes(&self) -> u64 {
        let coords =
            (self.fine_coords.len() + self.coarse_coords.len()) * std::mem::size_of::<Coord>();
        self.map.memory_bytes() + self.index.memory_bytes() + coords as u64
    }
}

/// A per-request wall-clock deadline, checked at stage boundaries by the
/// compiled execution path ([`Context::check_deadline`]).
///
/// The serving runtime installs one on [`Context::deadline`] before each
/// frame; planning and the feature path then surface expiry as a typed
/// [`CoreError::DeadlineExceeded`] at the next boundary instead of running
/// the stream to completion past its budget.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    started: std::time::Instant,
    budget: std::time::Duration,
}

impl Deadline {
    /// A deadline of `budget` starting at the moment of the call.
    pub fn starting_now(budget: std::time::Duration) -> Deadline {
        Deadline { started: std::time::Instant::now(), budget }
    }

    /// The configured budget.
    pub fn budget(&self) -> std::time::Duration {
        self.budget
    }

    /// Wall-clock time consumed so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Whether the budget has been consumed.
    pub fn expired(&self) -> bool {
        self.elapsed() > self.budget
    }
}

/// Per-layer workload record captured during a profiling run, consumed by
/// the adaptive-grouping tuner (Algorithm 5).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWorkload {
    /// Layer name.
    pub name: String,
    /// Per-offset map sizes.
    pub map_sizes: Vec<usize>,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Whether the layer is a stride-1 submanifold conv with odd kernel
    /// (enables the symmetric pairing in grouping).
    pub submanifold: bool,
}

/// Execution context: device models, per-stage timeline, map cache, and the
/// tuned adaptive-grouping parameters.
///
/// One context corresponds to one engine instance pinned to one simulated
/// device. It is threaded mutably through every layer's `forward`.
pub struct Context {
    /// The optimization configuration in force.
    pub config: OptimizationConfig,
    /// The simulated device.
    pub device: DeviceProfile,
    /// Memory transaction/cache simulator (reset per run).
    pub mem: MemorySim,
    /// GEMM latency model.
    pub gemm: GemmModel,
    /// Per-stage latency ledger for the current run.
    pub timeline: Timeline,
    map_cache: HashMap<MapKey, Arc<CachedMap>>,
    /// Per-layer tuned `(epsilon, S)` for adaptive grouping, filled by
    /// [`crate::tuning`].
    pub tuned_groups: HashMap<String, (f64, usize)>,
    /// Per-layer tuned execution policies, filled by the compile-time
    /// policy search ([`crate::tuning::autotune_plan`]). Survives
    /// [`Context::begin_run`] like [`Context::tuned_groups`] so re-plans
    /// after a geometry change keep the tuned selections.
    pub tuned_policies: HashMap<String, crate::tuning::ExecPolicy>,
    /// Workloads recorded when `record_workloads` is on.
    pub workloads: Vec<LayerWorkload>,
    /// Whether layers should append to [`Context::workloads`].
    pub record_workloads: bool,
    /// Skip the real numerical computation and only account simulated cost.
    ///
    /// Simulated latency is a function of coordinates and maps alone, never
    /// of feature *values*, so dry runs report identical timelines while
    /// running much faster — benchmark drivers use this to afford
    /// full-scale scenes. Outputs are zero-filled in this mode.
    pub simulate_only: bool,
    /// Per-layer timeline records captured when [`Context::profile_layers`]
    /// is on (leaf layers append one entry per forward).
    pub layer_profiles: Vec<LayerProfile>,
    /// Whether leaf layers should record per-layer profiles.
    pub profile_layers: bool,
    /// Deterministic fault scheduler. Disarmed by default; survives
    /// [`Context::begin_run`] so tests arm faults before calling
    /// [`Engine::run`](crate::Engine::run).
    pub faults: crate::faults::FaultInjector,
    /// Every graceful-degradation decision of the current run (cleared by
    /// [`Context::begin_run`]).
    pub degradation: crate::faults::DegradationReport,
    /// Set when adaptive-grouping tuning failed: layers configured for
    /// adaptive grouping run with fixed grouping instead. Survives
    /// [`Context::begin_run`] like [`Context::tuned_groups`].
    pub grouping_fallback: bool,
    /// The execution runtime: shared worker pool (sized by
    /// `config.threads`) and the workspace arena of recycled feature
    /// buffers. Survives [`Context::begin_run`] so buffers are reused
    /// across forward passes, not just across layers.
    pub runtime: crate::runtime::Runtime,
    /// The active per-request deadline, if any. Caller-managed like
    /// [`Context::faults`]: survives [`Context::begin_run`] so the serving
    /// layer can install it before executing a frame; cleared by setting it
    /// back to `None`.
    pub deadline: Option<Deadline>,
}

/// One leaf layer's contribution to a run, captured by the layer profiler.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Layer name.
    pub name: String,
    /// Number of input points the layer saw.
    pub input_points: usize,
    /// The stage latencies attributable to this layer invocation.
    pub timeline: Timeline,
}

/// Host-side framework overhead per layer operation, microseconds.
///
/// TorchSparse, SpConv, and MinkowskiEngine are all PyTorch extensions:
/// every layer pays Python dispatch, tensor bookkeeping, and launch-queue
/// management on the CPU. This fixed cost is identical across engines and
/// is what keeps measured end-to-end speedups (~1.5-1.7x, Figure 11) well
/// below the product of the per-stage gains (~2.9x matmul x 2.7x movement
/// x 4.6x mapping) — and why the small 1-frame nuScenes model runs at only
/// 45 FPS even on an RTX 3090 (Figure 14).
pub const HOST_OP_OVERHEAD_US: f64 = 50.0;

impl Context {
    /// Creates a context for a configuration on a device.
    pub fn new(config: OptimizationConfig, device: DeviceProfile) -> Context {
        Context {
            runtime: crate::runtime::Runtime::new(config.threads),
            mem: MemorySim::new(&device),
            gemm: GemmModel::new(device.clone()),
            timeline: Timeline::new(),
            map_cache: HashMap::new(),
            tuned_groups: HashMap::new(),
            tuned_policies: HashMap::new(),
            workloads: Vec::new(),
            record_workloads: false,
            simulate_only: false,
            layer_profiles: Vec::new(),
            profile_layers: false,
            faults: crate::faults::FaultInjector::disarmed(),
            degradation: crate::faults::DegradationReport::new(),
            grouping_fallback: false,
            deadline: None,
            config,
            device,
        }
    }

    /// Resets per-run state (timeline, memory simulator, map cache) while
    /// keeping tuned parameters. Called by [`crate::Engine::run`] so that
    /// each inference is independent, exactly as maps are rebuilt per scene
    /// on a real engine.
    pub fn begin_run(&mut self) {
        self.timeline = Timeline::new();
        self.mem = MemorySim::new(&self.device);
        self.map_cache.clear();
        self.layer_profiles.clear();
        self.degradation.clear();
    }

    /// Snapshots the current timeline; pair with
    /// [`Context::finish_layer_profile`] around a leaf layer's work.
    pub fn start_layer_profile(&self) -> Timeline {
        self.timeline.clone()
    }

    /// Records the per-stage delta since `start` as `name`'s profile entry
    /// (no-op unless [`Context::profile_layers`] is on).
    pub fn finish_layer_profile(&mut self, name: &str, input_points: usize, start: Timeline) {
        if !self.profile_layers {
            return;
        }
        let mut delta = Timeline::new();
        for stage in torchsparse_gpusim::Stage::ALL {
            delta.add(stage, self.timeline.stage(stage) - start.stage(stage));
        }
        self.layer_profiles.push(LayerProfile {
            name: name.to_owned(),
            input_points,
            timeline: delta,
        });
    }

    /// Looks up a cached map.
    pub fn cached_map(&self, key: MapKey) -> Option<Arc<CachedMap>> {
        self.map_cache.get(&key).cloned()
    }

    /// Stores a map in the cache.
    pub fn store_map(&mut self, key: MapKey, cached: CachedMap) -> Arc<CachedMap> {
        let arc = Arc::new(cached);
        self.map_cache.insert(key, arc.clone());
        arc
    }

    /// Seeds the cache with an already-shared cached map. The delta
    /// re-planner uses this to install patched (or verified-identical)
    /// mappings before the plan walk, so the per-layer `plan()` calls hit
    /// the cache instead of re-searching.
    pub fn seed_map(&mut self, key: MapKey, cached: Arc<CachedMap>) {
        self.map_cache.insert(key, cached);
    }

    /// The tuned `(epsilon, S)` for a layer, if the tuner has produced one.
    pub fn tuned_for(&self, layer: &str) -> Option<(f64, usize)> {
        self.tuned_groups.get(layer).copied()
    }

    /// The tuned execution policy for a layer, if the compile-time policy
    /// search has selected one.
    pub fn policy_for(&self, layer: &str) -> Option<crate::tuning::ExecPolicy> {
        self.tuned_policies.get(layer).copied()
    }

    /// Charges the fixed host-side framework overhead of one layer op
    /// ([`HOST_OP_OVERHEAD_US`]) to the `Other` stage. Called by every leaf
    /// layer's `forward`.
    pub fn charge_host_op(&mut self) {
        self.timeline
            .add(torchsparse_gpusim::Stage::Other, torchsparse_gpusim::Micros(HOST_OP_OVERHEAD_US));
    }

    /// Checks the request deadline at a named stage boundary (`"mapping"`
    /// in the planning walk, `"gather-gemm-scatter"` / `"epilogue"` in the
    /// compiled feature path). The [`FaultSite::DeadlineOverrun`]
    /// (crate::FaultSite::DeadlineOverrun) site is probed first: an
    /// injected stall reports the full budget as elapsed, which keeps
    /// deadline tests deterministic with no wall-clock dependence.
    ///
    /// # Errors
    ///
    /// [`CoreError::DeadlineExceeded`] naming the stage, budget, and
    /// elapsed time.
    pub fn check_deadline(&mut self, stage: &'static str) -> Result<(), CoreError> {
        if self.faults.should_fail(crate::faults::FaultSite::DeadlineOverrun) {
            let budget_us = self.deadline.map_or(0, |d| d.budget().as_micros() as u64);
            self.degradation.record(crate::faults::FaultSite::DeadlineOverrun, "injected");
            return Err(CoreError::DeadlineExceeded { stage, budget_us, elapsed_us: budget_us });
        }
        if let Some(d) = self.deadline {
            if d.expired() {
                return Err(CoreError::DeadlineExceeded {
                    stage,
                    budget_us: d.budget().as_micros() as u64,
                    elapsed_us: d.elapsed().as_micros() as u64,
                });
            }
        }
        Ok(())
    }

    /// Fails if the context's configuration cannot run: zero-sized thread
    /// pools, resource budgets that reject every input, dataflow thresholds
    /// that can never trigger, and out-of-range adaptive-grouping
    /// parameters. Called by [`Engine::new`](crate::Engine::new) and
    /// [`Engine::with_config`](crate::Engine::with_config) so a broken
    /// configuration fails at construction, not mid-inference.
    pub fn validate(&self) -> Result<(), CoreError> {
        let invalid = |reason: &str| CoreError::InvalidConfig { reason: reason.to_owned() };
        let cfg = &self.config;
        if cfg.threads == Some(0) {
            return Err(invalid("threads must be at least 1 when set"));
        }
        if cfg.validation.max_points == Some(0) {
            return Err(invalid("validation.max_points of 0 rejects every non-empty input"));
        }
        if cfg.validation.max_grid_cells == 0 {
            return Err(invalid("validation.max_grid_cells of 0 rejects every input extent"));
        }
        if cfg.grid_cell_limit == 0 {
            return Err(invalid("grid_cell_limit of 0 makes the grid mapping strategy unusable"));
        }
        if cfg.fetch_on_demand_below == Some(0) {
            return Err(invalid(
                "fetch_on_demand_below of 0 can never trigger; use None to disable",
            ));
        }
        if let crate::config::GroupingStrategy::Adaptive { epsilon, .. } = cfg.grouping {
            if !epsilon.is_finite() || !(0.0..=1.0).contains(&epsilon) {
                return Err(invalid("adaptive grouping epsilon must be within [0, 1]"));
            }
        }
        if !cfg.delta_replan_max_churn.is_finite()
            || !(0.0..=1.0).contains(&cfg.delta_replan_max_churn)
        {
            return Err(invalid("delta_replan_max_churn must be within [0, 1]"));
        }
        Ok(())
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("device", &self.device.name)
            .field("config", &self.config)
            .field("timeline", &self.timeline)
            .field("cached_maps", &self.map_cache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_coords::kernel_map::MapEntry;
    use torchsparse_gpusim::{Micros, Stage};

    fn ctx() -> Context {
        Context::new(OptimizationConfig::torchsparse(), DeviceProfile::rtx_2080ti())
    }

    fn dummy_cached() -> CachedMap {
        let per_offset = {
            let mut v = vec![Vec::new(); 27];
            v[13] = vec![MapEntry { input: 0, output: 0 }];
            v
        };
        CachedMap {
            map: KernelMap::from_parts(3, 1, per_offset, Default::default()).unwrap(),
            fine_coords: vec![Coord::new(0, 0, 0, 0)],
            coarse_coords: vec![Coord::new(0, 0, 0, 0)],
            index: Arc::new(torchsparse_coords::CoordHashMap::build(&[Coord::new(0, 0, 0, 0)]).0),
        }
    }

    #[test]
    fn map_cache_roundtrip() {
        let mut c = ctx();
        let key = MapKey { fine_stride: 1, kernel_size: 3, conv_stride: 1, dilation: 1 };
        assert!(c.cached_map(key).is_none());
        c.store_map(key, dummy_cached());
        assert!(c.cached_map(key).is_some());
    }

    #[test]
    fn begin_run_clears_cache_and_timeline() {
        let mut c = ctx();
        let key = MapKey { fine_stride: 1, kernel_size: 3, conv_stride: 1, dilation: 1 };
        c.store_map(key, dummy_cached());
        c.timeline.add(Stage::MatMul, Micros(5.0));
        c.begin_run();
        assert!(c.cached_map(key).is_none());
        assert_eq!(c.timeline.total(), Micros::ZERO);
    }

    #[test]
    fn begin_run_keeps_tuning() {
        let mut c = ctx();
        c.tuned_groups.insert("conv1".to_owned(), (0.25, 100_000));
        c.begin_run();
        assert_eq!(c.tuned_for("conv1"), Some((0.25, 100_000)));
        assert_eq!(c.tuned_for("conv2"), None);
    }

    #[test]
    fn debug_impl_nonempty() {
        assert!(!format!("{:?}", ctx()).is_empty());
    }

    #[test]
    fn deadline_checks_at_stage_boundaries() {
        let mut c = ctx();
        // No deadline installed: every check passes.
        assert!(c.check_deadline("mapping").is_ok());
        // An already-expired budget fails at the next boundary with the
        // stage name attached.
        c.deadline = Some(Deadline::starting_now(std::time::Duration::ZERO));
        std::thread::sleep(std::time::Duration::from_millis(1));
        let err = c.check_deadline("gather-gemm-scatter").unwrap_err();
        match err {
            CoreError::DeadlineExceeded { stage, budget_us, elapsed_us } => {
                assert_eq!(stage, "gather-gemm-scatter");
                assert_eq!(budget_us, 0);
                assert!(elapsed_us >= budget_us);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // A generous budget passes.
        c.deadline = Some(Deadline::starting_now(std::time::Duration::from_secs(3600)));
        assert!(c.check_deadline("epilogue").is_ok());
        // Deadlines survive begin_run (caller-managed, like faults).
        c.begin_run();
        assert!(c.deadline.is_some());
    }

    #[test]
    fn injected_overrun_fails_deterministically() {
        use crate::faults::FaultSite;
        let mut c = ctx();
        c.faults.arm(FaultSite::DeadlineOverrun);
        // Fires even with no wall-clock deadline installed.
        let err = c.check_deadline("mapping").unwrap_err();
        assert!(matches!(err, CoreError::DeadlineExceeded { stage: "mapping", .. }));
        assert_eq!(c.degradation.count(FaultSite::DeadlineOverrun), 1);
        // Armed count consumed: the next check passes.
        assert!(c.check_deadline("mapping").is_ok());
    }

    #[test]
    fn begin_run_clears_degradation_but_keeps_armed_faults() {
        use crate::faults::FaultSite;
        let mut c = ctx();
        c.faults.arm(FaultSite::GridTableBuild);
        c.degradation.record(FaultSite::Fp16Overflow, "stale");
        c.begin_run();
        assert!(c.degradation.is_empty());
        assert!(c.faults.is_armed());
    }
}
