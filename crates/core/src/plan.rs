//! The layer-op IR and the frozen per-layer execution plans.
//!
//! Dynamic execution re-derives everything per frame: each
//! [`Engine::run`](crate::Engine::run) re-walks the module tree, rebuilds
//! every kernel map, and re-plans matmul grouping. For streaming inference
//! over frames with identical geometry that work is pure overhead — mapping
//! and tuning are amortizable preprocessing (§4.4 tunes once per workload
//! group and reuses the decision). This module provides the pieces a
//! [`CompiledSession`](crate::CompiledSession) freezes at plan time:
//!
//! - [`LayerOp`]: one typed op of the flattened IR a [`Tracer`] collects
//!   from any [`Module`](crate::Module) tree (including residual and UNet
//!   skip topologies, expressed with a small value stack);
//! - [`ConvPlan`] / [`PoolPlan`] (crate-internal): per-layer frozen state —
//!   kernel maps, output coordinates, grouping plans, dataflow choice;
//! - [`geometry_fingerprint`]: the hash of input geometry a plan is keyed
//!   by, used to detect when a plan must be rebuilt;
//! - [`PlanCacheStats`]: hit/miss/invalidation counters for plan reuse.

use crate::context::CachedMap;
use crate::dataflow::FusedOrder;
use crate::grouping::GroupPlan;
use crate::{BatchNorm, GlobalPool, ReLU, SparseConv3d, SparseMaxPool3d};
use std::sync::Arc;
use torchsparse_coords::{Coord, KernelMap};
use torchsparse_tensor::PackedB;

/// One typed operation in the flattened layer IR.
///
/// Ops borrow their layers from the traced model (`'m`), so the IR adds no
/// parameter copies. Control flow (residual and UNet skips) is expressed
/// with a small value stack: [`LayerOp::Push`] saves the current tensor,
/// [`LayerOp::PopConcat`] and [`LayerOp::ResidualAdd`] consume the most
/// recent save.
#[derive(Debug, Clone, Copy)]
pub enum LayerOp<'m> {
    /// A sparse convolution (submanifold, strided, or transposed).
    Conv(&'m SparseConv3d),
    /// A sparse pooling layer.
    Pool(&'m SparseMaxPool3d),
    /// Inference-mode batch normalization.
    BatchNorm(&'m BatchNorm),
    /// Rectified linear unit.
    Relu(&'m ReLU),
    /// Global average pooling over each batch.
    GlobalPool(&'m GlobalPool),
    /// Save the current tensor on the value stack (start of a skip).
    Push,
    /// Pop the most recent saved tensor and concatenate its features onto
    /// the current tensor (UNet skip connection).
    PopConcat,
    /// Pop the most recent saved tensor and add it to the current features,
    /// optionally through a 1x1x1 projection convolution first (residual
    /// connection).
    ResidualAdd {
        /// Projection applied to the shortcut when channel counts differ.
        projection: Option<&'m SparseConv3d>,
    },
}

/// Collects the flattened [`LayerOp`] sequence of a module tree.
///
/// Modules append their ops via [`Module::trace`](crate::Module::trace);
/// containers recurse into children so arbitrary nesting flattens into one
/// linear sequence.
#[derive(Debug, Default)]
pub struct Tracer<'m> {
    ops: Vec<LayerOp<'m>>,
}

impl<'m> Tracer<'m> {
    /// Creates an empty tracer.
    pub fn new() -> Tracer<'m> {
        Tracer { ops: Vec::new() }
    }

    /// Appends one op.
    pub fn push(&mut self, op: LayerOp<'m>) {
        self.ops.push(op);
    }

    /// The ops collected so far.
    pub fn ops(&self) -> &[LayerOp<'m>] {
        &self.ops
    }

    /// Consumes the tracer, returning the collected ops.
    pub fn into_ops(self) -> Vec<LayerOp<'m>> {
        self.ops
    }
}

/// The dataflow frozen for one convolution at plan time: either
/// fetch-on-demand (small workloads under MinkowskiEngine-style configs) or
/// gather-matmul-scatter with a fixed grouping plan.
#[derive(Debug, Clone)]
pub(crate) enum ConvDataflow {
    /// Fetch-on-demand: no explicit gather/scatter buffers.
    FetchOnDemand,
    /// Gather-matmul-scatter with the grouping plan resolved at plan time
    /// (including per-layer tuned `(epsilon, S)` when present).
    Grouped(GroupPlan),
}

/// Everything a [`SparseConv3d`] derives from input *geometry* alone,
/// frozen at plan time so `execute` touches only the feature path.
#[derive(Debug, Clone)]
pub(crate) struct ConvPlan {
    /// The cached kernel map and both coordinate lists (kept alive by the
    /// plan even after the context's per-run map cache is cleared).
    pub(crate) cached: Arc<CachedMap>,
    /// The flipped (coarse-to-fine) map of a transposed convolution.
    pub(crate) flipped: Option<KernelMap>,
    /// Whether output coordinates come from the fine side of the map.
    pub(crate) use_fine: bool,
    /// Output tensor stride.
    pub(crate) out_stride: i32,
    /// Center-offset index for submanifold identity handling.
    pub(crate) center: Option<usize>,
    /// Whether the layer is submanifold (enables symmetric grouping).
    pub(crate) submanifold: bool,
    /// The frozen dataflow decision.
    pub(crate) dataflow: ConvDataflow,
    /// Panel-major packed per-offset weights, shared with the layer's
    /// lazy pack cache: packing happens once per layer, and every frame
    /// executed against this plan streams the packed panels.
    pub(crate) packed: Arc<Vec<PackedB>>,
    /// Plan-time locality ordering and scatter metadata (map entries
    /// re-sorted by output row, split at output-chunk boundaries, with
    /// original-index producer links). The fused executor streams it and
    /// the unfused scatter partitions by it, so it is built unconditionally
    /// — once per geometry, on the worker pool.
    pub(crate) fused: Arc<FusedOrder>,
    /// The tuned per-layer execution policy selected by the compile-time
    /// policy search, or `None` when untuned (global config behavior).
    pub(crate) policy: Option<crate::tuning::ExecPolicy>,
}

impl ConvPlan {
    /// The map to execute with (flipped for transposed convolutions).
    pub(crate) fn map(&self) -> &KernelMap {
        match &self.flipped {
            Some(m) => m,
            None => &self.cached.map,
        }
    }

    /// Resident bytes of this convolution's frozen geometry state: the
    /// shared cached mapping (CSR map + coordinate index + coordinate
    /// lists), the flipped map of a transposed layer, and the locality
    /// order's metadata. Packed weights are excluded — they belong to the
    /// layer, not the plan.
    fn memory_bytes(&self) -> u64 {
        let flipped = self.flipped.as_ref().map_or(0, KernelMap::memory_bytes);
        self.cached.memory_bytes() + flipped + self.fused.memory_bytes()
    }

    /// The output coordinate list.
    pub(crate) fn out_coords(&self) -> &[Coord] {
        if self.use_fine {
            &self.cached.fine_coords
        } else {
            &self.cached.coarse_coords
        }
    }
}

/// A pooling layer's frozen plan: the shared kernel map plus output
/// geometry.
#[derive(Debug, Clone)]
pub(crate) struct PoolPlan {
    /// The cached kernel map and coordinate lists.
    pub(crate) cached: Arc<CachedMap>,
    /// Whether output coordinates come from the fine side.
    pub(crate) use_fine: bool,
    /// Output tensor stride.
    pub(crate) out_stride: i32,
}

impl PoolPlan {
    /// The output coordinate list.
    pub(crate) fn out_coords(&self) -> &[Coord] {
        if self.use_fine {
            &self.cached.fine_coords
        } else {
            &self.cached.coarse_coords
        }
    }
}

/// The frozen state for one [`LayerOp`], index-aligned with the traced op
/// list.
#[derive(Debug, Clone)]
pub(crate) enum StepPlan {
    /// Convolution plan.
    Conv(ConvPlan),
    /// Pooling plan.
    Pool(PoolPlan),
    /// Pointwise op (batch norm / ReLU): nothing geometric to freeze.
    Pointwise,
    /// Global pooling: output geometry derives from batches at execute.
    GlobalPool,
    /// Stack push.
    Push,
    /// Stack pop + feature concatenation.
    PopConcat,
    /// Residual addition, with the shortcut projection's plan when the
    /// block projects.
    Residual {
        /// Plan for the 1x1x1 projection convolution, if any.
        projection: Option<ConvPlan>,
    },
}

/// An immutable execution plan: every kernel map, output coordinate list,
/// grouping plan, and dataflow decision for one model on one input
/// geometry, keyed by that geometry's fingerprint.
///
/// Built once by [`CompiledSession::compile`](crate::CompiledSession) and
/// replaced wholesale when the fingerprint changes — never mutated.
#[derive(Debug)]
pub struct ExecutionPlan {
    pub(crate) fingerprint: u64,
    pub(crate) steps: Vec<StepPlan>,
}

impl ExecutionPlan {
    /// The geometry fingerprint this plan was built for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of planned steps (equals the traced op count).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Resident bytes of the plan's frozen geometry state: every step's
    /// kernel maps (CSR entries + bounds), retained coordinate indexes,
    /// coordinate lists, and locality-order metadata.
    ///
    /// Steps sharing one [`CachedMap`] (convolution and pooling layers with
    /// the same map key, or a UNet encoder/decoder pair) count it once.
    pub fn memory_bytes(&self) -> u64 {
        fn charge_shared(counted: &mut Vec<*const CachedMap>, cached: &Arc<CachedMap>) -> u64 {
            let shared = Arc::as_ptr(cached);
            if counted.contains(&shared) {
                0
            } else {
                counted.push(shared);
                cached.memory_bytes()
            }
        }
        let mut counted: Vec<*const CachedMap> = Vec::new();
        let mut total = 0u64;
        for step in &self.steps {
            match step {
                StepPlan::Conv(p) | StepPlan::Residual { projection: Some(p) } => {
                    // Per-plan extras (flipped map, locality order) always
                    // count; the shared cached mapping only on first sight.
                    total += p.memory_bytes() - p.cached.memory_bytes();
                    total += charge_shared(&mut counted, &p.cached);
                }
                StepPlan::Pool(p) => total += charge_shared(&mut counted, &p.cached),
                _ => {}
            }
        }
        total
    }
}

/// Plan-reuse counters of a [`CompiledSession`](crate::CompiledSession).
///
/// `misses` counts plan builds (the initial compile and every re-plan);
/// `hits` counts executes that reused the frozen plan; `invalidations`
/// counts executes whose input fingerprint mismatched, forcing a re-plan;
/// `plan_bytes` reports the resident footprint
/// ([`ExecutionPlan::memory_bytes`]) of the plan currently in the slot.
///
/// Every plan build is also classified by *how* it was built:
/// `misses == full_replans + delta_patches + delta_fallbacks` always holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Executes that reused the frozen plan.
    pub hits: u64,
    /// Plan builds (initial compile + re-plans).
    pub misses: u64,
    /// Executes whose geometry fingerprint mismatched the plan.
    pub invalidations: u64,
    /// Resident bytes of the plan currently in the slot (maps, coordinate
    /// indexes, coordinate lists, locality orders).
    pub plan_bytes: u64,
    /// Plan builds that ran the full mapping pipeline from scratch (the
    /// initial compile, re-plans with delta re-planning disabled, and
    /// geometry changes with no prior plan to patch against).
    pub full_replans: u64,
    /// Plan builds served by the incremental delta path: changed voxels
    /// were diffed against the frozen plan and only the affected mapping
    /// structures were patched.
    pub delta_patches: u64,
    /// Plan builds where the delta path was attempted but bailed (churn
    /// above `delta_replan_max_churn`, unsupported op pattern, duplicate
    /// coordinates, ...) and a full rebuild ran instead.
    pub delta_fallbacks: u64,
}

/// Fingerprints input geometry: a streaming FNV-1a hash over the tensor
/// stride and every coordinate (batch, x, y, z).
///
/// Two inputs with equal fingerprints share kernel maps, output coordinate
/// lists, and grouping plans, so a [`CompiledSession`](crate::CompiledSession)
/// reuses its frozen plan; a mismatch triggers re-planning. Feature values
/// never enter the hash — plans depend on geometry alone.
pub fn geometry_fingerprint(coords: &[Coord], stride: i32) -> u64 {
    let mut h = torchsparse_coords::fnv::Fnv1a::new();
    h.write_i32(stride);
    h.write_i32(coords.len() as i32);
    for c in coords {
        h.write_i32(c.batch);
        h.write_i32(c.x);
        h.write_i32(c.y);
        h.write_i32(c.z);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords() -> Vec<Coord> {
        (0..10).map(|i| Coord::new(0, i, i % 3, 1)).collect()
    }

    #[test]
    fn fingerprint_is_deterministic() {
        assert_eq!(geometry_fingerprint(&coords(), 1), geometry_fingerprint(&coords(), 1));
    }

    #[test]
    fn fingerprint_depends_on_stride_and_coords() {
        let base = geometry_fingerprint(&coords(), 1);
        assert_ne!(base, geometry_fingerprint(&coords(), 2));
        let mut moved = coords();
        moved[3].x += 1;
        assert_ne!(base, geometry_fingerprint(&moved, 1));
        assert_ne!(base, geometry_fingerprint(&coords()[..9], 1));
    }

    #[test]
    fn fingerprint_ignores_nothing_on_empty() {
        // Empty inputs at different strides still disagree.
        assert_ne!(geometry_fingerprint(&[], 1), geometry_fingerprint(&[], 2));
    }

    #[test]
    fn tracer_collects_in_order() {
        let relu = ReLU::new("r");
        let bn = BatchNorm::identity("b", 4);
        let mut t = Tracer::new();
        t.push(LayerOp::Relu(&relu));
        t.push(LayerOp::BatchNorm(&bn));
        t.push(LayerOp::Push);
        assert_eq!(t.ops().len(), 3);
        let ops = t.into_ops();
        assert!(matches!(ops[0], LayerOp::Relu(_)));
        assert!(matches!(ops[1], LayerOp::BatchNorm(_)));
        assert!(matches!(ops[2], LayerOp::Push));
    }

    #[test]
    fn stats_default_to_zero() {
        let s = PlanCacheStats::default();
        assert_eq!((s.hits, s.misses, s.invalidations), (0, 0, 0));
    }
}
