//! The engine's execution runtime: the shared worker pool plus a workspace
//! arena of recycled feature buffers.
//!
//! Both halves attack host-side overheads that the paper's GPU engine never
//! pays but a CPU reproduction does:
//!
//! - [`ThreadPool`] (re-exported from `torchsparse-runtime`): map search,
//!   gather/scatter, and GEMM panels all dispatch onto one persistent pool
//!   threaded through [`crate::Context`] instead of spawning threads per
//!   call. `OptimizationConfig::threads == Some(1)` reproduces the serial
//!   engine exactly.
//! - [`WorkspacePool`]: gather buffers, partial sums, and fetch-on-demand
//!   scratch matrices are taken from and returned to an arena that survives
//!   layers *and* forward passes ([`crate::Context::begin_run`] keeps it),
//!   so steady-state inference performs no feature-buffer heap allocation —
//!   the CPU analogue of the paper's reuse of device workspace memory.

use std::sync::Arc;
use torchsparse_tensor::Matrix;

pub use torchsparse_runtime::{default_threads, modeled_makespan, Task, TaskTrace, ThreadPool};

/// An arena of reusable [`Matrix`] buffers.
///
/// [`WorkspacePool::take`] returns a zeroed `rows x cols` matrix, recycling
/// the backing storage of a previously [`WorkspacePool::give`]n buffer when
/// one with enough capacity exists. The counters make reuse observable:
/// after warm-up, a forward pass should drive `reuses` without moving
/// `fresh_allocations`.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Vec<Matrix>,
    /// Buffers served by growing the heap (no free buffer had capacity).
    pub fresh_allocations: u64,
    /// Buffers served entirely from recycled storage.
    pub reuses: u64,
}

/// Free-list bound: beyond this many parked buffers, give-backs drop the
/// smallest instead of growing the arena without limit.
const MAX_FREE_BUFFERS: usize = 64;

impl WorkspacePool {
    /// Creates an empty pool.
    pub fn new() -> WorkspacePool {
        WorkspacePool::default()
    }

    /// Returns a zeroed `rows x cols` matrix, reusing pooled storage when a
    /// parked buffer's capacity suffices.
    ///
    /// Best-fit policy: the smallest parked buffer that fits is chosen, so
    /// large buffers stay available for large requests.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let needed = rows * cols;
        let mut best: Option<usize> = None;
        for (i, m) in self.free.iter().enumerate() {
            if m.capacity() >= needed && best.is_none_or(|b| m.capacity() < self.free[b].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut m = self.free.swap_remove(i);
                m.reshape_zeroed(rows, cols);
                self.reuses += 1;
                m
            }
            None => {
                // Recycle the largest parked buffer anyway (its Vec grows
                // once) rather than abandoning it, unless the pool is empty.
                self.fresh_allocations += 1;
                if let Some(mut m) = self.free.pop() {
                    m.reshape_zeroed(rows, cols);
                    m
                } else {
                    Matrix::zeros(rows, cols)
                }
            }
        }
    }

    /// Parks a buffer for later reuse. Zero-capacity buffers are dropped.
    pub fn give(&mut self, m: Matrix) {
        if m.capacity() == 0 {
            return;
        }
        if self.free.len() >= MAX_FREE_BUFFERS {
            // Keep the largest buffers: evict the smallest parked one.
            if let Some((smallest, _)) =
                self.free.iter().enumerate().min_by_key(|(_, b)| b.capacity())
            {
                self.free.swap_remove(smallest);
            }
        }
        self.free.push(m);
    }

    /// Number of parked buffers.
    pub fn parked(&self) -> usize {
        self.free.len()
    }

    /// Total `take` calls served (fresh or recycled). The fused
    /// gather–GEMM–scatter executor never takes movement buffers at all,
    /// so under `fused_execution` a steady-state forward pass leaves this
    /// counter unchanged — a stronger property than "no fresh
    /// allocations", which recycling alone already provides.
    pub fn total_takes(&self) -> u64 {
        self.fresh_allocations + self.reuses
    }

    /// Drops every parked buffer (counters are kept).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

/// The execution runtime carried by [`crate::Context`]: a handle to the
/// worker pool plus the workspace arena.
#[derive(Debug)]
pub struct Runtime {
    pool: Arc<ThreadPool>,
    /// The matrix workspace arena (see [`WorkspacePool`]).
    pub workspaces: WorkspacePool,
}

impl Runtime {
    /// Creates a runtime. `threads: None` shares the process-wide pool
    /// (sized by `TORCHSPARSE_THREADS` / available parallelism);
    /// `Some(n)` owns a private pool of `n` lanes — `Some(1)` reproduces
    /// the serial engine exactly.
    pub fn new(threads: Option<usize>) -> Runtime {
        let pool = match threads {
            None => ThreadPool::global().clone(),
            Some(n) => Arc::new(ThreadPool::new(n)),
        };
        Runtime { pool, workspaces: WorkspacePool::new() }
    }

    /// A clonable handle to the pool (an `Arc`, so holding it does not
    /// borrow the runtime — callers can use the pool and the workspace
    /// arena simultaneously).
    pub fn pool(&self) -> Arc<ThreadPool> {
        self.pool.clone()
    }

    /// Replaces the pool — used by benchmarks to install a recording pool
    /// ([`ThreadPool::new_recording`]) and capture task traces.
    pub fn set_pool(&mut self, pool: Arc<ThreadPool>) {
        self.pool = pool;
    }

    /// Concurrency lanes of the current pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

impl Default for Runtime {
    fn default() -> Runtime {
        Runtime::new(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_fresh_then_reuse() {
        let mut pool = WorkspacePool::new();
        let a = pool.take(10, 4);
        assert_eq!(a.shape(), (10, 4));
        assert_eq!(pool.fresh_allocations, 1);
        assert_eq!(pool.reuses, 0);
        pool.give(a);
        let b = pool.take(5, 8);
        assert_eq!(b.shape(), (5, 8));
        assert!(b.as_slice().iter().all(|&v| v == 0.0), "reused buffer must be zeroed");
        assert_eq!(pool.fresh_allocations, 1);
        assert_eq!(pool.reuses, 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut pool = WorkspacePool::new();
        let big = pool.take(100, 10);
        let small = pool.take(4, 4);
        pool.give(big);
        pool.give(small);
        let m = pool.take(2, 2);
        // The 16-element buffer fits 4 elements; the 1000-element one must
        // stay parked for bigger requests.
        assert!(m.capacity() >= 4 && m.capacity() < 1000);
        assert!(pool.free.iter().any(|b| b.capacity() >= 1000));
    }

    #[test]
    fn undersized_buffers_still_recycled() {
        let mut pool = WorkspacePool::new();
        let small = pool.take(2, 2);
        pool.give(small);
        let big = pool.take(50, 50);
        assert_eq!(big.shape(), (50, 50));
        // Counted as fresh (the Vec had to grow), and the pool is drained.
        assert_eq!(pool.fresh_allocations, 2);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = WorkspacePool::new();
        for i in 1..=(MAX_FREE_BUFFERS + 20) {
            pool.give(Matrix::zeros(i, 1));
        }
        assert!(pool.parked() <= MAX_FREE_BUFFERS);
        // Eviction keeps the largest buffers.
        assert!(pool.free.iter().any(|b| b.capacity() >= MAX_FREE_BUFFERS));
    }

    #[test]
    fn runtime_thread_options() {
        assert_eq!(Runtime::new(Some(1)).threads(), 1);
        assert_eq!(Runtime::new(Some(3)).threads(), 3);
        let shared = Runtime::new(None);
        assert!(Arc::ptr_eq(&shared.pool(), ThreadPool::global()));
    }

    #[test]
    fn set_pool_replaces() {
        let mut rt = Runtime::new(Some(1));
        rt.set_pool(Arc::new(ThreadPool::new_recording()));
        assert!(rt.pool().is_recording());
    }
}
