//! Compiled inference sessions: plan once, execute per frame.
//!
//! Streaming workloads (LiDAR at 10-20 Hz) feed the network frames whose
//! *geometry* is often identical — multi-frame fused inputs reuse the same
//! voxel grid, and benchmark replay repeats one scene exactly. Dynamic
//! execution still rebuilds every kernel map and re-plans matmul grouping
//! per frame. A [`CompiledSession`] splits that work: [`Engine::compile`]
//! traces the model into a flat [`LayerOp`] sequence and runs every
//! geometric derivation once, freezing the results into an immutable
//! [`ExecutionPlan`] keyed by the input's [`geometry_fingerprint`];
//! [`CompiledSession::execute`] then runs only the feature path. A frame
//! with a different fingerprint transparently re-plans (counted in
//! [`PlanCacheStats`]).
//!
//! Planning also freezes each convolution's weights in the SIMD
//! microkernel's panel-major packed layout (shared with the layer's lazy
//! pack cache), so steady-state frames stream pre-packed GEMM panels and
//! never touch row-major weights.
//!
//! For multi-stream serving the session splits along the share/own line:
//! [`CompiledModel`] is the frozen, `Sync` half (traced ops + compile-time
//! plan behind `Arc`) that N streams execute against concurrently, while
//! [`StreamState`] is one stream's private half (engine context with its
//! workspace arena and degradation report, plus that stream's plan slot
//! and cache stats). [`CompiledSession`] remains the single-stream
//! composition of the two; [`CompiledSession::into_parts`] opens it up.

use crate::config::{CoordIndexChoice, OptimizationConfig};
use crate::context::Context;
use crate::engine::Engine;
use crate::faults::DegradationReport;
use crate::module::Module;
use crate::plan::{
    geometry_fingerprint, ConvPlan, ExecutionPlan, LayerOp, PlanCacheStats, StepPlan, Tracer,
};
use crate::{CoreError, SparseTensor};
use std::sync::Arc;
use torchsparse_coords::Coord;
use torchsparse_gpusim::{DeviceProfile, Micros, Timeline};

/// The geometry cursor threaded through planning: what the tensor flowing
/// through the network looks like after each op, without any features.
#[derive(Debug, Clone)]
struct Geometry {
    coords: Vec<Coord>,
    stride: i32,
    channels: usize,
}

/// A model compiled against one input geometry.
///
/// Created by [`Engine::compile`]; owns the engine for its lifetime and
/// borrows the model's layers (`'m`).
///
/// # Example
///
/// ```
/// use torchsparse_core::{Engine, EnginePreset, ReLU, Sequential, SparseConv3d, SparseTensor};
/// use torchsparse_coords::Coord;
/// use torchsparse_gpusim::DeviceProfile;
/// use torchsparse_tensor::Matrix;
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let model = Sequential::new("net")
///     .push(SparseConv3d::with_random_weights("conv", 2, 4, 3, 1, 7))
///     .push(ReLU::new("act"));
/// let frame = SparseTensor::new(
///     vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)],
///     Matrix::filled(2, 2, 1.0),
/// )?;
/// let engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
/// let mut session = engine.compile(&model, &frame)?;
/// let y = session.execute(&frame)?;        // feature path only
/// assert_eq!(y.channels(), 4);
/// assert_eq!(session.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
pub struct CompiledSession<'m> {
    shared: CompiledModel<'m>,
    stream: StreamState,
}

/// The shared, immutable half of a compiled model: the traced op sequence
/// plus the plan frozen at compile time, behind [`Arc`].
///
/// `CompiledModel` is `Sync` — it holds no interior mutability beyond the
/// layers' `OnceLock` pack caches — so N serving streams execute against
/// one instance concurrently, each bringing its own [`StreamState`]. A
/// stream whose frame geometry matches the compile-time fingerprint
/// re-attaches to the shared plan without rebuilding; a stream with
/// different geometry re-plans into its *own* slot, never touching the
/// shared base plan or any other stream.
pub struct CompiledModel<'m> {
    ops: Vec<LayerOp<'m>>,
    base_plan: Arc<ExecutionPlan>,
    config: OptimizationConfig,
    device: DeviceProfile,
    /// Outcome of the compile-time policy search, when autotuning ran.
    /// Fresh streams inherit its per-layer policies so their private
    /// re-plans keep the tuned selections.
    tuning: Option<crate::tuning::TuningReport>,
}

/// One stream's private execution state: its engine (context with the
/// workspace arena, fault injector, and degradation report), its plan
/// slot, and its plan-cache counters.
///
/// Created by [`CompiledModel::new_stream`] — and rebuilt the same way
/// when a serving supervisor quarantines a poisoned stream: the state is
/// discarded wholesale and reconstructed from the shared plan, so nothing
/// a panicking request touched survives into the next frame.
pub struct StreamState {
    engine: Engine,
    plan: Option<Arc<ExecutionPlan>>,
    stats: PlanCacheStats,
    planning: Timeline,
    planning_degradation: DegradationReport,
}

impl<'m> CompiledModel<'m> {
    /// Creates a fresh stream against this model: a new engine with the
    /// model's configuration and device, its plan slot pre-attached to the
    /// shared compile-time plan.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the stored configuration fails
    /// [`Context::validate`] (cannot happen for configurations that came
    /// through [`Engine::compile`], which validated at construction).
    pub fn new_stream(&self) -> Result<StreamState, CoreError> {
        let mut engine = Engine::try_with_config(self.config.clone(), self.device.clone())?;
        if let Some(report) = &self.tuning {
            engine.context_mut().tuned_policies = report.policies.clone();
        }
        Ok(StreamState {
            engine,
            plan: Some(self.base_plan.clone()),
            stats: PlanCacheStats {
                plan_bytes: self.base_plan.memory_bytes(),
                ..PlanCacheStats::default()
            },
            planning: Timeline::new(),
            planning_degradation: DegradationReport::new(),
        })
    }

    /// Runs one frame of `stream` through this model: only feature-path
    /// work executes when the frame's geometry fingerprint matches the
    /// stream's plan slot. On a mismatch the stream first re-attaches to
    /// the shared compile-time plan (if the fingerprint matches it) or
    /// re-plans into its own slot — other streams' slots and the shared
    /// plan are never written.
    ///
    /// # Errors
    ///
    /// Validation failures, [`CoreError::DeadlineExceeded`] when the
    /// context's deadline expires at a stage boundary, plus any
    /// [`CoreError`] from the layers.
    pub fn execute_on(
        &self,
        stream: &mut StreamState,
        input: &SparseTensor,
    ) -> Result<SparseTensor, CoreError> {
        let ctx = stream.engine.context_mut();
        ctx.begin_run();
        let sanitized = {
            let Context { config, faults, degradation, .. } = ctx;
            crate::validate::validate_input(input, &config.validation, faults, degradation)?
        };
        let tensor = sanitized.as_ref().unwrap_or(input);
        let fingerprint = geometry_fingerprint(tensor.coords(), tensor.stride());
        let slot_matches = stream.plan.as_ref().is_some_and(|p| p.fingerprint == fingerprint);
        if slot_matches {
            stream.stats.hits += 1;
        } else {
            if stream.plan.is_some() {
                stream.stats.invalidations += 1;
            }
            if self.base_plan.fingerprint == fingerprint {
                // The geometry returned to the compile-time plan: re-attach
                // to the shared Arc instead of rebuilding. Counted as a hit
                // (misses counts plan *builds*).
                stream.stats.hits += 1;
                stream.plan = Some(self.base_plan.clone());
            } else {
                // Geometry changed: rebuild the plan into this stream's
                // slot — incrementally patched from the old plan when the
                // delta path applies, from scratch otherwise. The re-plan
                // cost lands in this frame's timeline, exactly like a
                // dynamic run.
                let old = stream.plan.clone();
                let plan = replan_into_slot(
                    &self.ops,
                    tensor,
                    fingerprint,
                    old.as_deref(),
                    &mut stream.stats,
                    ctx,
                )?;
                stream.planning = ctx.timeline.clone();
                stream.planning_degradation = ctx.degradation.clone();
                stream.plan = Some(Arc::new(plan));
            }
        }
        let plan = match &stream.plan {
            Some(p) => p.clone(),
            None => self.base_plan.clone(),
        };
        stream.stats.plan_bytes = plan.memory_bytes();
        run_steps(&self.ops, &plan, tensor, stream.engine.context_mut())
    }

    /// The plan frozen at compile time, shared by every stream whose
    /// geometry matches it.
    pub fn base_plan(&self) -> &Arc<ExecutionPlan> {
        &self.base_plan
    }

    /// Number of traced layer ops.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// The optimization configuration new streams are built with.
    pub fn config(&self) -> &OptimizationConfig {
        &self.config
    }

    /// The device profile new streams are built with.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The compile-time policy search's report: per-layer selections plus
    /// measurement and warm-start counters. `None` when autotuning was
    /// disabled at compile time.
    pub fn tuning_report(&self) -> Option<&crate::tuning::TuningReport> {
        self.tuning.as_ref()
    }
}

impl std::fmt::Debug for CompiledModel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledModel")
            .field("ops", &self.ops.len())
            .field("fingerprint", &self.base_plan.fingerprint)
            .finish()
    }
}

impl StreamState {
    /// The stream's engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (e.g. to arm faults or install a deadline
    /// between frames).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Plan-reuse counters for this stream.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// The plan currently in this stream's slot, if any.
    pub fn plan(&self) -> Option<&ExecutionPlan> {
        self.plan.as_deref()
    }

    /// Per-stage cost of this stream's most recent private re-plan (zero
    /// while the stream still rides the shared compile-time plan).
    pub fn planning_timeline(&self) -> &Timeline {
        &self.planning
    }

    /// Degradation decisions of this stream's most recent private re-plan.
    pub fn planning_degradation(&self) -> &DegradationReport {
        &self.planning_degradation
    }

    /// Per-stage latency of the stream's last executed frame.
    pub fn last_timeline(&self) -> &Timeline {
        self.engine.last_timeline()
    }

    /// Total simulated latency of the stream's last executed frame.
    pub fn last_latency(&self) -> Micros {
        self.engine.last_latency()
    }

    /// Degradation decisions of the stream's last executed frame.
    pub fn degradation_report(&self) -> &DegradationReport {
        self.engine.degradation_report()
    }
}

impl std::fmt::Debug for StreamState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamState")
            .field("fingerprint", &self.plan.as_ref().map(|p| p.fingerprint))
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'m> CompiledSession<'m> {
    /// Traces `model`, plans every layer against `input`'s geometry, and
    /// freezes the result. Called via [`Engine::compile`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Untraceable`] for models without a `trace`
    /// implementation, plus validation and mapping errors from planning.
    pub(crate) fn compile<M: Module + ?Sized>(
        mut engine: Engine,
        model: &'m M,
        input: &SparseTensor,
    ) -> Result<CompiledSession<'m>, CoreError> {
        let mut tracer = Tracer::new();
        model.trace(&mut tracer)?;
        let ops = tracer.into_ops();

        let ctx = engine.context_mut();
        // Compiled sessions freeze their coordinate sets at plan time, so
        // `Auto` resolves to the succinct MPHF index here — on the session's
        // own config copy, which new streams and private re-plans inherit.
        // Dynamic runs (and explicit Hashmap/Grid choices) are unaffected.
        if ctx.config.coord_index == CoordIndexChoice::Auto {
            ctx.config.coord_index = CoordIndexChoice::Mphf;
        }
        ctx.begin_run();
        let sanitized = {
            let Context { config, faults, degradation, .. } = ctx;
            crate::validate::validate_input(input, &config.validation, faults, degradation)?
        };
        let tensor = sanitized.as_ref().unwrap_or(input);
        let fingerprint = geometry_fingerprint(tensor.coords(), tensor.stride());
        let mut plan = build_plan(&ops, tensor, fingerprint, ctx)?;
        // Policy search runs against the frozen plan: warm-start from the
        // on-disk tuning database when a matching geometry class exists,
        // otherwise prune with the cost-model prior and microbench the
        // short list, rewriting the plan's per-layer policies in place.
        let tuning = if crate::config::autotune_enabled(&ctx.config) {
            Some(crate::tuning::autotune_plan(&ops, &mut plan, ctx))
        } else {
            None
        };
        let planning = ctx.timeline.clone();
        let planning_degradation = ctx.degradation.clone();
        let config = ctx.config.clone();
        let device = ctx.device.clone();

        let base_plan = Arc::new(plan);
        Ok(CompiledSession {
            shared: CompiledModel { ops, base_plan: base_plan.clone(), config, device, tuning },
            stream: StreamState {
                engine,
                stats: PlanCacheStats {
                    misses: 1,
                    full_replans: 1,
                    plan_bytes: base_plan.memory_bytes(),
                    ..PlanCacheStats::default()
                },
                plan: Some(base_plan),
                planning,
                planning_degradation,
            },
        })
    }

    /// Runs one frame through the frozen plan: only feature-path work
    /// (gather/matmul/scatter, reductions, pointwise sweeps) executes.
    ///
    /// If the frame's geometry fingerprint mismatches the plan, the session
    /// transparently re-plans against the new geometry first — that frame
    /// pays the mapping cost again and the miss is counted in
    /// [`CompiledSession::stats`].
    ///
    /// # Errors
    ///
    /// Validation failures, plus any [`CoreError`] from the layers.
    pub fn execute(&mut self, input: &SparseTensor) -> Result<SparseTensor, CoreError> {
        self.shared.execute_on(&mut self.stream, input)
    }

    /// Splits the session into its shared and per-stream halves — the
    /// entry point for multi-stream serving: share the [`CompiledModel`],
    /// then [`CompiledModel::new_stream`] once per additional stream.
    pub fn into_parts(self) -> (CompiledModel<'m>, StreamState) {
        (self.shared, self.stream)
    }

    /// The shared half: traced ops plus the compile-time plan.
    pub fn model(&self) -> &CompiledModel<'m> {
        &self.shared
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        self.stream.engine()
    }

    /// Mutable engine access (e.g. to arm faults between frames).
    pub fn engine_mut(&mut self) -> &mut Engine {
        self.stream.engine_mut()
    }

    /// Plan-reuse counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stream.stats()
    }

    /// The frozen execution plan currently in force.
    pub fn plan(&self) -> &ExecutionPlan {
        match self.stream.plan() {
            Some(p) => p,
            None => &self.shared.base_plan,
        }
    }

    /// Number of traced layer ops.
    pub fn num_ops(&self) -> usize {
        self.shared.num_ops()
    }

    /// Per-stage cost of the most recent planning pass (the compile, or the
    /// last re-plan). This is the work [`CompiledSession::execute`] no
    /// longer pays on plan hits.
    pub fn planning_timeline(&self) -> &Timeline {
        self.stream.planning_timeline()
    }

    /// Degradation decisions taken during the most recent planning pass
    /// (e.g. an injected grid-table fault degrading the mapping strategy).
    pub fn planning_degradation(&self) -> &DegradationReport {
        self.stream.planning_degradation()
    }

    /// Per-stage latency of the last [`CompiledSession::execute`].
    pub fn last_timeline(&self) -> &Timeline {
        self.stream.last_timeline()
    }

    /// Total simulated latency of the last [`CompiledSession::execute`].
    pub fn last_latency(&self) -> Micros {
        self.stream.last_latency()
    }

    /// Degradation decisions of the last [`CompiledSession::execute`].
    pub fn degradation_report(&self) -> &DegradationReport {
        self.stream.degradation_report()
    }

    /// The compile-time policy search's report, when autotuning ran.
    pub fn tuning_report(&self) -> Option<&crate::tuning::TuningReport> {
        self.shared.tuning_report()
    }
}

impl std::fmt::Debug for CompiledSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSession")
            .field("ops", &self.shared.ops.len())
            .field("fingerprint", &self.plan().fingerprint)
            .field("stats", &self.stream.stats)
            .finish()
    }
}

/// Rebuilds a stream's plan for a frame whose geometry fingerprint
/// mismatched its slot.
///
/// The fingerprint is computed exactly once per frame — in
/// [`CompiledModel::execute_on`] (or [`CompiledSession::compile`]) — and
/// threaded through to here and into the frozen [`ExecutionPlan`];
/// re-hashing the coordinate list on this path would double the fingerprint
/// cost of every invalidated frame, so callers must pass the value they
/// already computed for the slot comparison.
///
/// When delta re-planning is enabled and the stream holds a previous plan,
/// the incremental path diffs the new geometry against that plan and
/// patches only the affected mapping structures, seeding the context's map
/// cache so [`build_plan`] below reuses them verbatim. Every build is
/// classified into exactly one of the [`PlanCacheStats`] partitions —
/// `delta_patches` on a successful patch, `delta_fallbacks` on a
/// conservative bail, `full_replans` otherwise — keeping
/// `misses == full_replans + delta_patches + delta_fallbacks`.
fn replan_into_slot(
    ops: &[LayerOp<'_>],
    input: &SparseTensor,
    fingerprint: u64,
    old_plan: Option<&ExecutionPlan>,
    stats: &mut PlanCacheStats,
    ctx: &mut Context,
) -> Result<ExecutionPlan, CoreError> {
    stats.misses += 1;
    let attempted = old_plan.is_some() && crate::config::delta_replan_enabled(&ctx.config);
    let patched = match old_plan {
        Some(old) if attempted => crate::delta::try_seed_delta_maps(ops, old, input, ctx)?,
        _ => false,
    };
    if patched {
        stats.delta_patches += 1;
    } else if attempted {
        stats.delta_fallbacks += 1;
    } else {
        stats.full_replans += 1;
    }
    build_plan(ops, input, fingerprint, ctx)
}

/// Plans every op against the geometry cursor, producing the index-aligned
/// [`StepPlan`] list. Only geometric work happens here (map building,
/// output coordinate computation, grouping); features are never read.
fn build_plan(
    ops: &[LayerOp<'_>],
    input: &SparseTensor,
    fingerprint: u64,
    ctx: &mut Context,
) -> Result<ExecutionPlan, CoreError> {
    let mut cur = Geometry {
        coords: input.coords().to_vec(),
        stride: input.stride(),
        channels: input.channels(),
    };
    let mut stack: Vec<Geometry> = Vec::new();
    let mut steps = Vec::with_capacity(ops.len());
    for op in ops {
        ctx.check_deadline("mapping")?;
        let step = match op {
            LayerOp::Conv(conv) => {
                let p = conv.plan(&cur.coords, cur.stride, cur.channels, ctx)?;
                cur = Geometry {
                    coords: p.out_coords().to_vec(),
                    stride: p.out_stride,
                    channels: conv.c_out(),
                };
                StepPlan::Conv(p)
            }
            LayerOp::Pool(pool) => {
                let p = pool.plan(&cur.coords, cur.stride, ctx)?;
                cur = Geometry {
                    coords: p.out_coords().to_vec(),
                    stride: p.out_stride,
                    channels: cur.channels,
                };
                StepPlan::Pool(p)
            }
            LayerOp::BatchNorm(bn) => {
                if cur.channels != bn.channels() {
                    return Err(CoreError::ChannelMismatch {
                        expected: bn.channels(),
                        actual: cur.channels,
                    });
                }
                StepPlan::Pointwise
            }
            LayerOp::Relu(_) => StepPlan::Pointwise,
            LayerOp::GlobalPool(_) => {
                if cur.coords.is_empty() {
                    return Err(CoreError::EmptyInput);
                }
                let mut batches: Vec<i32> = cur.coords.iter().map(|c| c.batch).collect();
                batches.sort_unstable();
                batches.dedup();
                cur.coords = batches.iter().map(|&b| Coord::new(b, 0, 0, 0)).collect();
                StepPlan::GlobalPool
            }
            LayerOp::Push => {
                stack.push(cur.clone());
                StepPlan::Push
            }
            LayerOp::PopConcat => {
                let saved = stack
                    .pop()
                    .ok_or(CoreError::PlanMismatch { reason: "concat pops an empty stack" })?;
                cur.channels += saved.channels;
                StepPlan::PopConcat
            }
            LayerOp::ResidualAdd { projection } => {
                let saved = stack
                    .pop()
                    .ok_or(CoreError::PlanMismatch { reason: "residual pops an empty stack" })?;
                let proj: Option<ConvPlan> = match projection {
                    Some(conv) => {
                        Some(conv.plan(&saved.coords, saved.stride, saved.channels, ctx)?)
                    }
                    None => None,
                };
                StepPlan::Residual { projection: proj }
            }
        };
        steps.push(step);
    }
    Ok(ExecutionPlan { fingerprint, steps })
}

/// Runs the feature path of every op against its frozen step plan.
///
/// Profile wrapping matches dynamic execution exactly: convolution, batch
/// norm, and ReLU wrap their work in a per-layer profile; pooling and
/// global pooling do not (their dynamic `forward`s never did).
fn run_steps(
    ops: &[LayerOp<'_>],
    plan: &ExecutionPlan,
    input: &SparseTensor,
    ctx: &mut Context,
) -> Result<SparseTensor, CoreError> {
    if ops.len() != plan.steps.len() {
        return Err(CoreError::PlanMismatch { reason: "op/step count differs" });
    }
    let mut cur: Option<SparseTensor> = None;
    let mut stack: Vec<SparseTensor> = Vec::new();
    for (op, step) in ops.iter().zip(&plan.steps) {
        // Deadline boundary: the gather-GEMM-scatter stage covers
        // convolution steps (including residual projections); everything
        // else — pointwise sweeps, pooling, concat/residual joins — is
        // epilogue work.
        let stage = match op {
            LayerOp::Conv(_) | LayerOp::ResidualAdd { projection: Some(_) } => {
                "gather-gemm-scatter"
            }
            _ => "epilogue",
        };
        ctx.check_deadline(stage)?;
        let x = match &cur {
            Some(t) => t,
            None => input,
        };
        let next = match (op, step) {
            (LayerOp::Conv(conv), StepPlan::Conv(p)) => {
                let profile_start = ctx.start_layer_profile();
                let out = conv.execute_planned(x, p, ctx)?;
                ctx.finish_layer_profile(conv.layer_name(), x.len(), profile_start);
                Some(out)
            }
            (LayerOp::Pool(pool), StepPlan::Pool(p)) => Some(pool.execute_planned(x, p, ctx)?),
            (LayerOp::BatchNorm(bn), StepPlan::Pointwise) => {
                let profile_start = ctx.start_layer_profile();
                let out = bn.execute_planned(x, ctx)?;
                ctx.finish_layer_profile(bn.name(), x.len(), profile_start);
                Some(out)
            }
            (LayerOp::Relu(relu), StepPlan::Pointwise) => {
                let profile_start = ctx.start_layer_profile();
                let out = relu.execute_planned(x, ctx)?;
                ctx.finish_layer_profile(relu.name(), x.len(), profile_start);
                Some(out)
            }
            (LayerOp::GlobalPool(gp), StepPlan::GlobalPool) => Some(gp.execute_planned(x, ctx)?),
            (LayerOp::Push, StepPlan::Push) => {
                stack.push(x.clone());
                cur.clone()
            }
            (LayerOp::PopConcat, StepPlan::PopConcat) => {
                let saved = stack
                    .pop()
                    .ok_or(CoreError::PlanMismatch { reason: "concat pops an empty stack" })?;
                Some(x.cat_features(&saved)?)
            }
            (LayerOp::ResidualAdd { projection }, StepPlan::Residual { projection: proj }) => {
                let saved = stack
                    .pop()
                    .ok_or(CoreError::PlanMismatch { reason: "residual pops an empty stack" })?;
                let shortcut = match (projection, proj) {
                    (Some(conv), Some(p)) => {
                        let profile_start = ctx.start_layer_profile();
                        let out = conv.execute_planned(&saved, p, ctx)?;
                        ctx.finish_layer_profile(conv.layer_name(), saved.len(), profile_start);
                        out
                    }
                    (None, None) => saved,
                    _ => {
                        return Err(CoreError::PlanMismatch {
                            reason: "residual projection presence differs",
                        })
                    }
                };
                let sum = x.feats() + shortcut.feats();
                Some(x.with_feats(sum)?)
            }
            _ => return Err(CoreError::PlanMismatch { reason: "op/step kind differs" }),
        };
        if next.is_some() {
            cur = next;
        }
    }
    match cur {
        Some(t) => Ok(t),
        None => Ok(input.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnginePreset;
    use crate::{ReLU, Sequential, SparseConv3d, SparseMaxPool3d};
    use torchsparse_gpusim::{DeviceProfile, Stage};
    use torchsparse_tensor::Matrix;

    fn scene(seed: i32) -> SparseTensor {
        let coords: Vec<Coord> = (0..30)
            .map(|i| Coord::new(0, (i + seed) % 7, (i / 7) % 4, i % 3))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = coords.len();
        SparseTensor::new(coords, Matrix::from_fn(n, 4, |r, c| ((r * 3 + c) % 5) as f32 - 2.0))
            .unwrap()
    }

    fn model() -> Sequential {
        Sequential::new("net")
            .push(SparseConv3d::with_random_weights("conv1", 4, 8, 3, 1, 1))
            .push(ReLU::new("act1"))
            .push(SparseMaxPool3d::new("pool", 2, 2))
            .push(SparseConv3d::with_random_weights("conv2", 8, 4, 3, 1, 2))
    }

    fn engine() -> Engine {
        Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti())
    }

    #[test]
    fn compiled_matches_dynamic_bitwise() {
        let m = model();
        let x = scene(0);
        let mut dynamic = engine();
        let expected = dynamic.run(&m, &x).unwrap();
        let mut session = engine().compile(&m, &x).unwrap();
        let got = session.execute(&x).unwrap();
        assert_eq!(expected.coords(), got.coords());
        let a: Vec<u32> = expected.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = got.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "compiled output must be bitwise identical");
    }

    #[test]
    fn execute_skips_mapping_on_plan_hit() {
        let m = model();
        let x = scene(0);
        let mut dynamic = engine();
        dynamic.run(&m, &x).unwrap();
        let dyn_mapping = dynamic.last_timeline().stage(Stage::Mapping);
        assert!(dyn_mapping.as_f64() > 0.0);

        let mut session = engine().compile(&m, &x).unwrap();
        assert!(session.planning_timeline().stage(Stage::Mapping).as_f64() > 0.0);
        session.execute(&x).unwrap();
        assert_eq!(
            session.last_timeline().stage(Stage::Mapping).as_f64(),
            0.0,
            "plan hits must not rebuild maps"
        );
        assert!(session.last_latency() < dynamic.last_latency());
    }

    #[test]
    fn geometry_change_invalidates_and_replans() {
        let m = model();
        let a = scene(0);
        let b = scene(3);
        let mut session = engine().compile(&m, &a).unwrap();
        session.execute(&a).unwrap();
        let y = session.execute(&b).unwrap();
        let s = session.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
        assert!(s.plan_bytes > 0, "a frozen plan has a resident footprint");
        let mut dynamic = engine();
        let expected = dynamic.run(&m, &b).unwrap();
        assert_eq!(expected.feats(), y.feats(), "replanned output must match dynamic");
        // The invalidated frame pays mapping again.
        assert!(session.last_timeline().stage(Stage::Mapping).as_f64() > 0.0);
    }

    #[test]
    fn untraceable_module_fails_to_compile() {
        struct Opaque;
        impl Module for Opaque {
            fn forward(
                &self,
                input: &SparseTensor,
                _ctx: &mut Context,
            ) -> Result<SparseTensor, CoreError> {
                Ok(input.clone())
            }
            fn name(&self) -> &str {
                "opaque"
            }
        }
        let x = scene(0);
        let err = engine().compile(&Opaque, &x).unwrap_err();
        assert!(matches!(err, CoreError::Untraceable { .. }));
    }

    #[test]
    fn empty_op_list_is_identity() {
        let m = Sequential::new("empty");
        let x = scene(0);
        let mut session = engine().compile(&m, &x).unwrap();
        assert_eq!(session.num_ops(), 0);
        let y = session.execute(&x).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn shared_halves_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExecutionPlan>();
        assert_send_sync::<CompiledModel<'static>>();
        // StreamState moves into per-stream worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<StreamState>();
    }

    #[test]
    fn new_streams_match_session_bitwise() {
        let m = model();
        let x = scene(0);
        let mut session = engine().compile(&m, &x).unwrap();
        let expected = session.execute(&x).unwrap();
        let (shared, _original) = session.into_parts();
        let mut stream = shared.new_stream().unwrap();
        let got = shared.execute_on(&mut stream, &x).unwrap();
        let a: Vec<u32> = expected.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = got.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "a fresh stream must reproduce the session bitwise");
        // The fresh stream rode the shared plan: a hit, no build.
        let s = stream.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 0, 0));
        assert_eq!(s.plan_bytes, shared.base_plan().memory_bytes());
    }

    #[test]
    fn stream_plan_slots_are_independent() {
        let m = model();
        let a = scene(0);
        let b = scene(3);
        let session = engine().compile(&m, &a).unwrap();
        let (shared, mut s1) = session.into_parts();
        let mut s2 = shared.new_stream().unwrap();

        // Stream 2 re-plans for its own geometry...
        let base_fp = shared.base_plan().fingerprint;
        shared.execute_on(&mut s2, &b).unwrap();
        let s2_fp = s2.plan().map(|p| p.fingerprint);
        assert_ne!(s2_fp, Some(base_fp), "stream 2 must have re-planned");

        // ...without touching stream 1's slot or the shared base plan.
        assert_eq!(s1.plan().map(|p| p.fingerprint), Some(base_fp));
        assert_eq!(shared.base_plan().fingerprint, base_fp);
        shared.execute_on(&mut s1, &a).unwrap();
        // misses:1 is the compile-time build this stream inherited.
        let s = s1.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 0));

        // Interleaving keeps each stream on its own plan: stream 2's next
        // frame of geometry b is a hit, not a rebuild.
        shared.execute_on(&mut s2, &b).unwrap();
        let s = s2.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 1));

        // Returning to the compile-time geometry re-attaches to the shared
        // plan without a rebuild (hit + invalidation, no miss).
        shared.execute_on(&mut s2, &a).unwrap();
        let s = s2.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (2, 1, 2));
        assert_eq!(s2.plan().map(|p| p.fingerprint), Some(base_fp));
    }

    #[test]
    fn injected_deadline_overrun_fails_execute_with_typed_error() {
        use crate::faults::FaultSite;
        let m = model();
        let x = scene(0);
        let mut session = engine().compile(&m, &x).unwrap();
        session.execute(&x).unwrap();
        session.engine_mut().context_mut().faults.arm(FaultSite::DeadlineOverrun);
        let err = session.execute(&x).unwrap_err();
        assert!(
            matches!(err, CoreError::DeadlineExceeded { .. }),
            "expected DeadlineExceeded, got {err:?}"
        );
        // The stream is not poisoned: the next frame succeeds and matches.
        let y = session.execute(&x).unwrap();
        assert_eq!(y.channels(), 4);
    }

    #[test]
    fn profile_wrapping_matches_dynamic() {
        let m = model();
        let x = scene(0);
        let mut dynamic = engine();
        dynamic.context_mut().profile_layers = true;
        dynamic.run(&m, &x).unwrap();
        let dyn_names: Vec<String> =
            dynamic.context().layer_profiles.iter().map(|p| p.name.clone()).collect();

        let mut session = engine().compile(&m, &x).unwrap();
        session.engine_mut().context_mut().profile_layers = true;
        session.execute(&x).unwrap();
        let ses_names: Vec<String> =
            session.engine().context().layer_profiles.iter().map(|p| p.name.clone()).collect();
        assert_eq!(dyn_names, ses_names, "same layers must profile in both paths");
    }
}
