//! Compiled inference sessions: plan once, execute per frame.
//!
//! Streaming workloads (LiDAR at 10-20 Hz) feed the network frames whose
//! *geometry* is often identical — multi-frame fused inputs reuse the same
//! voxel grid, and benchmark replay repeats one scene exactly. Dynamic
//! execution still rebuilds every kernel map and re-plans matmul grouping
//! per frame. A [`CompiledSession`] splits that work: [`Engine::compile`]
//! traces the model into a flat [`LayerOp`] sequence and runs every
//! geometric derivation once, freezing the results into an immutable
//! [`ExecutionPlan`] keyed by the input's [`geometry_fingerprint`];
//! [`CompiledSession::execute`] then runs only the feature path. A frame
//! with a different fingerprint transparently re-plans (counted in
//! [`PlanCacheStats`]).
//!
//! Planning also freezes each convolution's weights in the SIMD
//! microkernel's panel-major packed layout (shared with the layer's lazy
//! pack cache), so steady-state frames stream pre-packed GEMM panels and
//! never touch row-major weights.

use crate::context::Context;
use crate::engine::Engine;
use crate::faults::DegradationReport;
use crate::module::Module;
use crate::plan::{
    geometry_fingerprint, ConvPlan, ExecutionPlan, LayerOp, PlanCacheStats, StepPlan, Tracer,
};
use crate::{CoreError, SparseTensor};
use torchsparse_coords::Coord;
use torchsparse_gpusim::{Micros, Timeline};

/// The geometry cursor threaded through planning: what the tensor flowing
/// through the network looks like after each op, without any features.
#[derive(Debug, Clone)]
struct Geometry {
    coords: Vec<Coord>,
    stride: i32,
    channels: usize,
}

/// A model compiled against one input geometry.
///
/// Created by [`Engine::compile`]; owns the engine for its lifetime and
/// borrows the model's layers (`'m`).
///
/// # Example
///
/// ```
/// use torchsparse_core::{Engine, EnginePreset, ReLU, Sequential, SparseConv3d, SparseTensor};
/// use torchsparse_coords::Coord;
/// use torchsparse_gpusim::DeviceProfile;
/// use torchsparse_tensor::Matrix;
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let model = Sequential::new("net")
///     .push(SparseConv3d::with_random_weights("conv", 2, 4, 3, 1, 7))
///     .push(ReLU::new("act"));
/// let frame = SparseTensor::new(
///     vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)],
///     Matrix::filled(2, 2, 1.0),
/// )?;
/// let engine = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_3090());
/// let mut session = engine.compile(&model, &frame)?;
/// let y = session.execute(&frame)?;        // feature path only
/// assert_eq!(y.channels(), 4);
/// assert_eq!(session.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
pub struct CompiledSession<'m> {
    engine: Engine,
    ops: Vec<LayerOp<'m>>,
    plan: ExecutionPlan,
    stats: PlanCacheStats,
    planning: Timeline,
    planning_degradation: DegradationReport,
}

impl<'m> CompiledSession<'m> {
    /// Traces `model`, plans every layer against `input`'s geometry, and
    /// freezes the result. Called via [`Engine::compile`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Untraceable`] for models without a `trace`
    /// implementation, plus validation and mapping errors from planning.
    pub(crate) fn compile<M: Module + ?Sized>(
        mut engine: Engine,
        model: &'m M,
        input: &SparseTensor,
    ) -> Result<CompiledSession<'m>, CoreError> {
        let mut tracer = Tracer::new();
        model.trace(&mut tracer)?;
        let ops = tracer.into_ops();

        let ctx = engine.context_mut();
        ctx.begin_run();
        let sanitized = {
            let Context { config, faults, degradation, .. } = ctx;
            crate::validate::validate_input(input, &config.validation, faults, degradation)?
        };
        let tensor = sanitized.as_ref().unwrap_or(input);
        let fingerprint = geometry_fingerprint(tensor.coords(), tensor.stride());
        let plan = build_plan(&ops, tensor, fingerprint, ctx)?;
        let planning = ctx.timeline.clone();
        let planning_degradation = ctx.degradation.clone();

        Ok(CompiledSession {
            engine,
            ops,
            plan,
            stats: PlanCacheStats { hits: 0, misses: 1, invalidations: 0 },
            planning,
            planning_degradation,
        })
    }

    /// Runs one frame through the frozen plan: only feature-path work
    /// (gather/matmul/scatter, reductions, pointwise sweeps) executes.
    ///
    /// If the frame's geometry fingerprint mismatches the plan, the session
    /// transparently re-plans against the new geometry first — that frame
    /// pays the mapping cost again and the miss is counted in
    /// [`CompiledSession::stats`].
    ///
    /// # Errors
    ///
    /// Validation failures, plus any [`CoreError`] from the layers.
    pub fn execute(&mut self, input: &SparseTensor) -> Result<SparseTensor, CoreError> {
        let ctx = self.engine.context_mut();
        ctx.begin_run();
        let sanitized = {
            let Context { config, faults, degradation, .. } = ctx;
            crate::validate::validate_input(input, &config.validation, faults, degradation)?
        };
        let tensor = sanitized.as_ref().unwrap_or(input);
        let fingerprint = geometry_fingerprint(tensor.coords(), tensor.stride());
        if fingerprint == self.plan.fingerprint {
            self.stats.hits += 1;
        } else {
            // Geometry changed: rebuild the whole plan. The re-plan cost
            // lands in this frame's timeline, exactly like a dynamic run.
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            self.plan = build_plan(&self.ops, tensor, fingerprint, ctx)?;
            self.planning = ctx.timeline.clone();
            self.planning_degradation = ctx.degradation.clone();
        }
        run_steps(&self.ops, &self.plan, tensor, self.engine.context_mut())
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (e.g. to arm faults between frames).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Plan-reuse counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// The frozen execution plan currently in force.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// Number of traced layer ops.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Per-stage cost of the most recent planning pass (the compile, or the
    /// last re-plan). This is the work [`CompiledSession::execute`] no
    /// longer pays on plan hits.
    pub fn planning_timeline(&self) -> &Timeline {
        &self.planning
    }

    /// Degradation decisions taken during the most recent planning pass
    /// (e.g. an injected grid-table fault degrading the mapping strategy).
    pub fn planning_degradation(&self) -> &DegradationReport {
        &self.planning_degradation
    }

    /// Per-stage latency of the last [`CompiledSession::execute`].
    pub fn last_timeline(&self) -> &Timeline {
        self.engine.last_timeline()
    }

    /// Total simulated latency of the last [`CompiledSession::execute`].
    pub fn last_latency(&self) -> Micros {
        self.engine.last_latency()
    }

    /// Degradation decisions of the last [`CompiledSession::execute`].
    pub fn degradation_report(&self) -> &DegradationReport {
        self.engine.degradation_report()
    }
}

impl std::fmt::Debug for CompiledSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledSession")
            .field("ops", &self.ops.len())
            .field("fingerprint", &self.plan.fingerprint)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Plans every op against the geometry cursor, producing the index-aligned
/// [`StepPlan`] list. Only geometric work happens here (map building,
/// output coordinate computation, grouping); features are never read.
fn build_plan(
    ops: &[LayerOp<'_>],
    input: &SparseTensor,
    fingerprint: u64,
    ctx: &mut Context,
) -> Result<ExecutionPlan, CoreError> {
    let mut cur = Geometry {
        coords: input.coords().to_vec(),
        stride: input.stride(),
        channels: input.channels(),
    };
    let mut stack: Vec<Geometry> = Vec::new();
    let mut steps = Vec::with_capacity(ops.len());
    for op in ops {
        let step = match op {
            LayerOp::Conv(conv) => {
                let p = conv.plan(&cur.coords, cur.stride, cur.channels, ctx)?;
                cur = Geometry {
                    coords: p.out_coords().to_vec(),
                    stride: p.out_stride,
                    channels: conv.c_out(),
                };
                StepPlan::Conv(p)
            }
            LayerOp::Pool(pool) => {
                let p = pool.plan(&cur.coords, cur.stride, ctx)?;
                cur = Geometry {
                    coords: p.out_coords().to_vec(),
                    stride: p.out_stride,
                    channels: cur.channels,
                };
                StepPlan::Pool(p)
            }
            LayerOp::BatchNorm(bn) => {
                if cur.channels != bn.channels() {
                    return Err(CoreError::ChannelMismatch {
                        expected: bn.channels(),
                        actual: cur.channels,
                    });
                }
                StepPlan::Pointwise
            }
            LayerOp::Relu(_) => StepPlan::Pointwise,
            LayerOp::GlobalPool(_) => {
                if cur.coords.is_empty() {
                    return Err(CoreError::EmptyInput);
                }
                let mut batches: Vec<i32> = cur.coords.iter().map(|c| c.batch).collect();
                batches.sort_unstable();
                batches.dedup();
                cur.coords = batches.iter().map(|&b| Coord::new(b, 0, 0, 0)).collect();
                StepPlan::GlobalPool
            }
            LayerOp::Push => {
                stack.push(cur.clone());
                StepPlan::Push
            }
            LayerOp::PopConcat => {
                let saved = stack
                    .pop()
                    .ok_or(CoreError::PlanMismatch { reason: "concat pops an empty stack" })?;
                cur.channels += saved.channels;
                StepPlan::PopConcat
            }
            LayerOp::ResidualAdd { projection } => {
                let saved = stack
                    .pop()
                    .ok_or(CoreError::PlanMismatch { reason: "residual pops an empty stack" })?;
                let proj: Option<ConvPlan> = match projection {
                    Some(conv) => {
                        Some(conv.plan(&saved.coords, saved.stride, saved.channels, ctx)?)
                    }
                    None => None,
                };
                StepPlan::Residual { projection: proj }
            }
        };
        steps.push(step);
    }
    Ok(ExecutionPlan { fingerprint, steps })
}

/// Runs the feature path of every op against its frozen step plan.
///
/// Profile wrapping matches dynamic execution exactly: convolution, batch
/// norm, and ReLU wrap their work in a per-layer profile; pooling and
/// global pooling do not (their dynamic `forward`s never did).
fn run_steps(
    ops: &[LayerOp<'_>],
    plan: &ExecutionPlan,
    input: &SparseTensor,
    ctx: &mut Context,
) -> Result<SparseTensor, CoreError> {
    if ops.len() != plan.steps.len() {
        return Err(CoreError::PlanMismatch { reason: "op/step count differs" });
    }
    let mut cur: Option<SparseTensor> = None;
    let mut stack: Vec<SparseTensor> = Vec::new();
    for (op, step) in ops.iter().zip(&plan.steps) {
        let x = match &cur {
            Some(t) => t,
            None => input,
        };
        let next = match (op, step) {
            (LayerOp::Conv(conv), StepPlan::Conv(p)) => {
                let profile_start = ctx.start_layer_profile();
                let out = conv.execute_planned(x, p, ctx)?;
                ctx.finish_layer_profile(conv.layer_name(), x.len(), profile_start);
                Some(out)
            }
            (LayerOp::Pool(pool), StepPlan::Pool(p)) => Some(pool.execute_planned(x, p, ctx)?),
            (LayerOp::BatchNorm(bn), StepPlan::Pointwise) => {
                let profile_start = ctx.start_layer_profile();
                let out = bn.execute_planned(x, ctx)?;
                ctx.finish_layer_profile(bn.name(), x.len(), profile_start);
                Some(out)
            }
            (LayerOp::Relu(relu), StepPlan::Pointwise) => {
                let profile_start = ctx.start_layer_profile();
                let out = relu.execute_planned(x, ctx)?;
                ctx.finish_layer_profile(relu.name(), x.len(), profile_start);
                Some(out)
            }
            (LayerOp::GlobalPool(gp), StepPlan::GlobalPool) => Some(gp.execute_planned(x, ctx)?),
            (LayerOp::Push, StepPlan::Push) => {
                stack.push(x.clone());
                cur.clone()
            }
            (LayerOp::PopConcat, StepPlan::PopConcat) => {
                let saved = stack
                    .pop()
                    .ok_or(CoreError::PlanMismatch { reason: "concat pops an empty stack" })?;
                Some(x.cat_features(&saved)?)
            }
            (LayerOp::ResidualAdd { projection }, StepPlan::Residual { projection: proj }) => {
                let saved = stack
                    .pop()
                    .ok_or(CoreError::PlanMismatch { reason: "residual pops an empty stack" })?;
                let shortcut = match (projection, proj) {
                    (Some(conv), Some(p)) => {
                        let profile_start = ctx.start_layer_profile();
                        let out = conv.execute_planned(&saved, p, ctx)?;
                        ctx.finish_layer_profile(conv.layer_name(), saved.len(), profile_start);
                        out
                    }
                    (None, None) => saved,
                    _ => {
                        return Err(CoreError::PlanMismatch {
                            reason: "residual projection presence differs",
                        })
                    }
                };
                let sum = x.feats() + shortcut.feats();
                Some(x.with_feats(sum)?)
            }
            _ => return Err(CoreError::PlanMismatch { reason: "op/step kind differs" }),
        };
        if next.is_some() {
            cur = next;
        }
    }
    match cur {
        Some(t) => Ok(t),
        None => Ok(input.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnginePreset;
    use crate::{ReLU, Sequential, SparseConv3d, SparseMaxPool3d};
    use torchsparse_gpusim::{DeviceProfile, Stage};
    use torchsparse_tensor::Matrix;

    fn scene(seed: i32) -> SparseTensor {
        let coords: Vec<Coord> = (0..30)
            .map(|i| Coord::new(0, (i + seed) % 7, (i / 7) % 4, i % 3))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = coords.len();
        SparseTensor::new(coords, Matrix::from_fn(n, 4, |r, c| ((r * 3 + c) % 5) as f32 - 2.0))
            .unwrap()
    }

    fn model() -> Sequential {
        Sequential::new("net")
            .push(SparseConv3d::with_random_weights("conv1", 4, 8, 3, 1, 1))
            .push(ReLU::new("act1"))
            .push(SparseMaxPool3d::new("pool", 2, 2))
            .push(SparseConv3d::with_random_weights("conv2", 8, 4, 3, 1, 2))
    }

    fn engine() -> Engine {
        Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti())
    }

    #[test]
    fn compiled_matches_dynamic_bitwise() {
        let m = model();
        let x = scene(0);
        let mut dynamic = engine();
        let expected = dynamic.run(&m, &x).unwrap();
        let mut session = engine().compile(&m, &x).unwrap();
        let got = session.execute(&x).unwrap();
        assert_eq!(expected.coords(), got.coords());
        let a: Vec<u32> = expected.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = got.feats().as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "compiled output must be bitwise identical");
    }

    #[test]
    fn execute_skips_mapping_on_plan_hit() {
        let m = model();
        let x = scene(0);
        let mut dynamic = engine();
        dynamic.run(&m, &x).unwrap();
        let dyn_mapping = dynamic.last_timeline().stage(Stage::Mapping);
        assert!(dyn_mapping.as_f64() > 0.0);

        let mut session = engine().compile(&m, &x).unwrap();
        assert!(session.planning_timeline().stage(Stage::Mapping).as_f64() > 0.0);
        session.execute(&x).unwrap();
        assert_eq!(
            session.last_timeline().stage(Stage::Mapping).as_f64(),
            0.0,
            "plan hits must not rebuild maps"
        );
        assert!(session.last_latency() < dynamic.last_latency());
    }

    #[test]
    fn geometry_change_invalidates_and_replans() {
        let m = model();
        let a = scene(0);
        let b = scene(3);
        let mut session = engine().compile(&m, &a).unwrap();
        session.execute(&a).unwrap();
        let y = session.execute(&b).unwrap();
        assert_eq!(session.stats(), PlanCacheStats { hits: 1, misses: 2, invalidations: 1 });
        let mut dynamic = engine();
        let expected = dynamic.run(&m, &b).unwrap();
        assert_eq!(expected.feats(), y.feats(), "replanned output must match dynamic");
        // The invalidated frame pays mapping again.
        assert!(session.last_timeline().stage(Stage::Mapping).as_f64() > 0.0);
    }

    #[test]
    fn untraceable_module_fails_to_compile() {
        struct Opaque;
        impl Module for Opaque {
            fn forward(
                &self,
                input: &SparseTensor,
                _ctx: &mut Context,
            ) -> Result<SparseTensor, CoreError> {
                Ok(input.clone())
            }
            fn name(&self) -> &str {
                "opaque"
            }
        }
        let x = scene(0);
        let err = engine().compile(&Opaque, &x).unwrap_err();
        assert!(matches!(err, CoreError::Untraceable { .. }));
    }

    #[test]
    fn empty_op_list_is_identity() {
        let m = Sequential::new("empty");
        let x = scene(0);
        let mut session = engine().compile(&m, &x).unwrap();
        assert_eq!(session.num_ops(), 0);
        let y = session.execute(&x).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn profile_wrapping_matches_dynamic() {
        let m = model();
        let x = scene(0);
        let mut dynamic = engine();
        dynamic.context_mut().profile_layers = true;
        dynamic.run(&m, &x).unwrap();
        let dyn_names: Vec<String> =
            dynamic.context().layer_profiles.iter().map(|p| p.name.clone()).collect();

        let mut session = engine().compile(&m, &x).unwrap();
        session.engine_mut().context_mut().profile_layers = true;
        session.execute(&x).unwrap();
        let ses_names: Vec<String> =
            session.engine().context().layer_profiles.iter().map(|p| p.name.clone()).collect();
        assert_eq!(dyn_names, ses_names, "same layers must profile in both paths");
    }
}
