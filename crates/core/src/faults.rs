//! Deterministic fault injection and degradation accounting.
//!
//! Production sparse-conv engines fail in a handful of well-understood
//! places: the dense grid table can exceed its memory budget, reduced
//! precision can overflow to infinity, the kernel-map cache can be
//! invalidated between layers, and resource budgets can be exhausted by
//! adversarial inputs. This module makes those failures *schedulable*: a
//! [`FaultInjector`] threaded through [`Context`](crate::Context) forces a
//! failure at a named [`FaultSite`], either on explicitly armed calls or
//! probabilistically from a seeded generator — never from wall-clock time,
//! so every run is reproducible.
//!
//! Each site has a documented graceful-degradation policy (see
//! `DESIGN.md`). When the engine takes a fallback path — injected or
//! organic — it records a [`DegradationEvent`] in the context's
//! [`DegradationReport`], which [`Engine::degradation_report`]
//! (crate::Engine::degradation_report) exposes after the run.

use std::fmt;

/// A named location where the engine can fail and degrade.
///
/// Every variant has a documented fallback; the integration tests prove
/// that injecting a fault at each site still yields a completed inference
/// with report evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// Grid-table construction reports `GridTooLarge`.
    /// Fallback: rebuild the coordinate table as a hashmap (§4.4's
    /// "conventional" strategy) and continue.
    GridTableBuild,
    /// A quantized (FP16/INT8) layer produces Inf/NaN output.
    /// Fallback: transparently re-run that layer's dataflow in FP32.
    Fp16Overflow,
    /// A kernel-map cache entry is invalidated at lookup time.
    /// Fallback: rebuild the map from coordinates (the cache is an
    /// optimization, not a correctness dependency).
    KernelMapCache,
    /// The input-validation resource budget reports exhaustion.
    /// Fallback under [`ValidationPolicy::Sanitize`]
    /// (crate::ValidationPolicy::Sanitize): shed points down to the
    /// budget; under `Reject`: a typed [`CoreError::BudgetExceeded`]
    /// (crate::CoreError::BudgetExceeded), never a panic.
    ResourceBudget,
    /// Adaptive-grouping tuning fails mid-search.
    /// Fallback: install fixed grouping (one matmul per kernel offset)
    /// for subsequent runs.
    GroupTuning,
    /// Report-only site: input sanitization rewrote the tensor (zeroed
    /// non-finite features, dropped duplicate coordinates). The injector
    /// never probes this site; it exists so sanitization decisions show up
    /// in the same [`DegradationReport`] as runtime fallbacks.
    InputValidation,
    /// Serving-path site: a request-scoped panic inside a stream worker.
    /// Fallback (in `torchsparse-serve`): the per-request `catch_unwind`
    /// boundary contains the panic, the stream is quarantined, and the
    /// supervisor rebuilds its state from the shared compiled plan while
    /// other streams keep serving.
    WorkerPanic,
    /// Serving-path site: an injected stall that makes the next
    /// stage-boundary deadline check report expiry. Fallback: the frame
    /// fails with a typed [`CoreError::DeadlineExceeded`]
    /// (crate::CoreError::DeadlineExceeded) — transient, so the serving
    /// retry policy may re-run it; the stream itself stays healthy.
    DeadlineOverrun,
}

impl FaultSite {
    /// The sites the engine actually probes for injected faults, in
    /// declaration order ([`FaultSite::InputValidation`] is report-only).
    pub fn all() -> [FaultSite; 5] {
        [
            FaultSite::GridTableBuild,
            FaultSite::Fp16Overflow,
            FaultSite::KernelMapCache,
            FaultSite::ResourceBudget,
            FaultSite::GroupTuning,
        ]
    }

    /// The serving-path sites probed by `torchsparse-serve` around each
    /// request, in declaration order. Separate from [`FaultSite::all`]
    /// because the single-forward engine never probes them.
    pub fn serving() -> [FaultSite; 2] {
        [FaultSite::WorkerPanic, FaultSite::DeadlineOverrun]
    }

    /// Retry taxonomy for the serving runtime: `true` when the documented
    /// fallback makes re-running the same frame worthwhile (cache
    /// invalidation, precision overflow re-run, an injected stall that
    /// passes on retry); `false` when the same input deterministically
    /// fails again (validation rejects, oversized extents, tuning
    /// failures) or the failure already poisoned the stream (worker
    /// panic — handled by quarantine, not retry).
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            FaultSite::KernelMapCache | FaultSite::Fp16Overflow | FaultSite::DeadlineOverrun
        )
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultSite::GridTableBuild => "grid-table-build",
            FaultSite::Fp16Overflow => "fp16-overflow",
            FaultSite::KernelMapCache => "kernel-map-cache",
            FaultSite::ResourceBudget => "resource-budget",
            FaultSite::GroupTuning => "group-tuning",
            FaultSite::InputValidation => "input-validation",
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::DeadlineOverrun => "deadline-overrun",
        };
        f.write_str(name)
    }
}

/// Deterministic fault scheduler.
///
/// Two modes compose:
///
/// - **Armed counts**: [`arm`](FaultInjector::arm) /
///   [`arm_count`](FaultInjector::arm_count) force the next `n` probes of a
///   site to fail. This is what the integration tests use.
/// - **Probabilistic**: [`with_probability`](FaultInjector::with_probability)
///   makes every probe of a site fail with probability `p`, drawn from a
///   seeded xorshift generator — reproducible chaos testing with no
///   wall-clock dependence.
///
/// A disarmed injector (the default) never fires and costs one hash lookup
/// per probe.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    /// Remaining forced failures per site.
    armed: std::collections::HashMap<FaultSite, u32>,
    /// Per-site failure probability in `[0, 1]`.
    probability: std::collections::HashMap<FaultSite, f64>,
    /// xorshift64* state for probabilistic mode; 0 = unseeded.
    state: u64,
    /// Every fault actually injected, in order.
    injected: Vec<FaultSite>,
}

impl FaultInjector {
    /// An injector that never fires.
    pub fn disarmed() -> FaultInjector {
        FaultInjector::default()
    }

    /// Arms one forced failure at `site` (cumulative with prior arms).
    pub fn arm(&mut self, site: FaultSite) {
        self.arm_count(site, 1);
    }

    /// Arms `n` forced failures at `site` (cumulative with prior arms).
    pub fn arm_count(&mut self, site: FaultSite, n: u32) {
        *self.armed.entry(site).or_insert(0) += n;
    }

    /// Sets the seed for probabilistic mode. Any nonzero scrambled state is
    /// accepted; the same seed always reproduces the same fault schedule.
    pub fn seed(&mut self, seed: u64) {
        // splitmix64 scramble so seed 0/1/2... give unrelated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.state = (z ^ (z >> 31)) | 1;
    }

    /// Makes every probe of `site` fail with probability `p` (clamped to
    /// `[0, 1]`), drawn from the seeded generator. Call [`seed`]
    /// (FaultInjector::seed) first; an unseeded injector self-seeds from 0.
    pub fn with_probability(&mut self, site: FaultSite, p: f64) {
        self.probability.insert(site, p.clamp(0.0, 1.0));
        if self.state == 0 {
            self.seed(0);
        }
    }

    /// Probes `site`: returns `true` when a fault fires here. Consumes one
    /// armed count first; otherwise draws from the probabilistic schedule.
    pub fn should_fail(&mut self, site: FaultSite) -> bool {
        if let Some(n) = self.armed.get_mut(&site) {
            if *n > 0 {
                *n -= 1;
                self.injected.push(site);
                return true;
            }
        }
        if let Some(&p) = self.probability.get(&site) {
            if p > 0.0 && self.next_unit() < p {
                self.injected.push(site);
                return true;
            }
        }
        false
    }

    /// Whether any fault configuration is active (armed or probabilistic).
    pub fn is_armed(&self) -> bool {
        self.armed.values().any(|&n| n > 0) || self.probability.values().any(|&p| p > 0.0)
    }

    /// Every fault injected so far, in order.
    pub fn injected(&self) -> &[FaultSite] {
        &self.injected
    }

    /// Clears armed counts, probabilities, and the injection log.
    pub fn reset(&mut self) {
        self.armed.clear();
        self.probability.clear();
        self.injected.clear();
    }

    /// Next uniform draw in `[0, 1)` (xorshift64*).
    fn next_unit(&mut self) -> f64 {
        if self.state == 0 {
            self.seed(0);
        }
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One merged degradation record: the engine took the fallback for `site`
/// `count` times for the same `cause`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// Where the engine degraded.
    pub site: FaultSite,
    /// Human-readable cause, stable per call site (used as the merge key).
    pub cause: String,
    /// How many times this (site, cause) pair fired.
    pub count: usize,
}

/// Observable record of every graceful-degradation decision in a run.
///
/// Events are merged by `(site, cause)` so a 20-layer network that falls
/// back 20 times produces one event with `count == 20`, not 20 entries.
/// Cleared by [`Context::begin_run`](crate::Context::begin_run), so after
/// [`Engine::run`](crate::Engine::run) it describes exactly that run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradationReport {
    events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// An empty report.
    pub fn new() -> DegradationReport {
        DegradationReport::default()
    }

    /// Records one degradation occurrence, merging with an existing
    /// `(site, cause)` event when present.
    pub fn record(&mut self, site: FaultSite, cause: &str) {
        if let Some(e) = self.events.iter_mut().find(|e| e.site == site && e.cause == cause) {
            e.count += 1;
        } else {
            self.events.push(DegradationEvent { site, cause: cause.to_owned(), count: 1 });
        }
    }

    /// All merged events, in first-occurrence order.
    pub fn events(&self) -> &[DegradationEvent] {
        &self.events
    }

    /// Total occurrences at `site` across all causes.
    pub fn count(&self, site: FaultSite) -> usize {
        self.events.iter().filter(|e| e.site == site).map(|e| e.count).sum()
    }

    /// Total occurrences across all sites.
    pub fn total(&self) -> usize {
        self.events.iter().map(|e| e.count).sum()
    }

    /// Whether no degradation happened.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops all events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Adds every event of `other` into this report, merging by
    /// `(site, cause)` — used to roll per-request reports up into a
    /// per-stream or service-wide window.
    pub fn merge(&mut self, other: &DegradationReport) {
        for e in &other.events {
            if let Some(own) =
                self.events.iter_mut().find(|own| own.site == e.site && own.cause == e.cause)
            {
                own.count += e.count;
            } else {
                self.events.push(e.clone());
            }
        }
    }

    /// Takes the events accumulated since the previous snapshot (or since
    /// construction), leaving the live report empty. Long-running streams
    /// report per-window *deltas* this way instead of process-lifetime
    /// monotonic counters; the service `HealthReport` consumes these.
    pub fn snapshot(&mut self) -> DegradationReport {
        std::mem::take(self)
    }

    /// Starts a fresh window, discarding accumulated events (equivalent to
    /// dropping the result of [`DegradationReport::snapshot`]).
    pub fn reset(&mut self) {
        self.events.clear();
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return f.write_str("no degradation");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{} x{}: {}", e.site, e.count, e.cause)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injector_never_fires() {
        let mut inj = FaultInjector::disarmed();
        for site in FaultSite::all() {
            for _ in 0..100 {
                assert!(!inj.should_fail(site));
            }
        }
        assert!(inj.injected().is_empty());
        assert!(!inj.is_armed());
    }

    #[test]
    fn armed_counts_fire_exactly_n_times() {
        let mut inj = FaultInjector::disarmed();
        inj.arm_count(FaultSite::GridTableBuild, 3);
        inj.arm(FaultSite::Fp16Overflow);
        let fired: Vec<bool> = (0..5).map(|_| inj.should_fail(FaultSite::GridTableBuild)).collect();
        assert_eq!(fired, vec![true, true, true, false, false]);
        assert!(inj.should_fail(FaultSite::Fp16Overflow));
        assert!(!inj.should_fail(FaultSite::Fp16Overflow));
        // Other sites are unaffected.
        assert!(!inj.should_fail(FaultSite::KernelMapCache));
        assert_eq!(inj.injected().len(), 4);
    }

    #[test]
    fn probabilistic_mode_is_deterministic_per_seed() {
        let schedule = |seed: u64| -> Vec<bool> {
            let mut inj = FaultInjector::disarmed();
            inj.seed(seed);
            inj.with_probability(FaultSite::KernelMapCache, 0.5);
            (0..64).map(|_| inj.should_fail(FaultSite::KernelMapCache)).collect()
        };
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8));
        let fires = schedule(7).iter().filter(|&&b| b).count();
        assert!(fires > 10 && fires < 54, "p=0.5 fired {fires}/64 times");
    }

    #[test]
    fn probability_edges() {
        let mut inj = FaultInjector::disarmed();
        inj.seed(1);
        inj.with_probability(FaultSite::ResourceBudget, 0.0);
        assert!((0..50).all(|_| !inj.should_fail(FaultSite::ResourceBudget)));
        inj.with_probability(FaultSite::ResourceBudget, 1.0);
        assert!((0..50).all(|_| inj.should_fail(FaultSite::ResourceBudget)));
    }

    #[test]
    fn report_merges_by_site_and_cause() {
        let mut r = DegradationReport::new();
        assert!(r.is_empty());
        r.record(FaultSite::GridTableBuild, "grid too large");
        r.record(FaultSite::GridTableBuild, "grid too large");
        r.record(FaultSite::GridTableBuild, "injected");
        r.record(FaultSite::Fp16Overflow, "non-finite output");
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.count(FaultSite::GridTableBuild), 3);
        assert_eq!(r.count(FaultSite::Fp16Overflow), 1);
        assert_eq!(r.total(), 4);
        let shown = r.to_string();
        assert!(shown.contains("grid-table-build x2"), "{shown}");
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn serving_sites_follow_naming_conventions() {
        assert_eq!(FaultSite::WorkerPanic.to_string(), "worker-panic");
        assert_eq!(FaultSite::DeadlineOverrun.to_string(), "deadline-overrun");
        // Serving sites are probed/armed exactly like engine sites.
        let mut inj = FaultInjector::disarmed();
        inj.arm(FaultSite::WorkerPanic);
        assert!(inj.should_fail(FaultSite::WorkerPanic));
        assert!(!inj.should_fail(FaultSite::WorkerPanic));
        // ...but stay out of the engine-probed list.
        assert!(!FaultSite::all().contains(&FaultSite::WorkerPanic));
        assert!(!FaultSite::all().contains(&FaultSite::DeadlineOverrun));
        assert_eq!(FaultSite::serving(), [FaultSite::WorkerPanic, FaultSite::DeadlineOverrun]);
    }

    #[test]
    fn retry_taxonomy_classifies_sites() {
        assert!(FaultSite::KernelMapCache.is_transient());
        assert!(FaultSite::Fp16Overflow.is_transient());
        assert!(FaultSite::DeadlineOverrun.is_transient());
        assert!(!FaultSite::ResourceBudget.is_transient());
        assert!(!FaultSite::InputValidation.is_transient());
        assert!(!FaultSite::GridTableBuild.is_transient());
        assert!(!FaultSite::GroupTuning.is_transient());
        assert!(!FaultSite::WorkerPanic.is_transient());
    }

    #[test]
    fn merge_combines_by_site_and_cause() {
        let mut a = DegradationReport::new();
        a.record(FaultSite::Fp16Overflow, "non-finite output");
        let mut b = DegradationReport::new();
        b.record(FaultSite::Fp16Overflow, "non-finite output");
        b.record(FaultSite::KernelMapCache, "invalidated");
        a.merge(&b);
        assert_eq!(a.count(FaultSite::Fp16Overflow), 2);
        assert_eq!(a.count(FaultSite::KernelMapCache), 1);
        assert_eq!(a.events().len(), 2);
    }

    #[test]
    fn snapshot_returns_window_delta_and_resets() {
        let mut r = DegradationReport::new();
        r.record(FaultSite::GridTableBuild, "injected");
        let window = r.snapshot();
        assert_eq!(window.count(FaultSite::GridTableBuild), 1);
        assert!(r.is_empty(), "snapshot must start a fresh window");
        // The next window only sees new events.
        r.record(FaultSite::Fp16Overflow, "non-finite output");
        let window2 = r.snapshot();
        assert_eq!(window2.count(FaultSite::GridTableBuild), 0);
        assert_eq!(window2.count(FaultSite::Fp16Overflow), 1);
        r.record(FaultSite::GroupTuning, "injected");
        r.reset();
        assert!(r.is_empty());
    }

    #[test]
    fn reset_clears_schedule_and_log() {
        let mut inj = FaultInjector::disarmed();
        inj.arm_count(FaultSite::GroupTuning, 5);
        inj.with_probability(FaultSite::Fp16Overflow, 1.0);
        assert!(inj.should_fail(FaultSite::GroupTuning));
        inj.reset();
        assert!(!inj.is_armed());
        assert!(inj.injected().is_empty());
        assert!(!inj.should_fail(FaultSite::GroupTuning));
    }
}
