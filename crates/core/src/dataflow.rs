//! Sparse convolution dataflows (§2.2, §4.3 of the paper).
//!
//! Two dataflows are implemented, matching the systems the paper discusses:
//!
//! - [`run_gather_matmul_scatter`]: Algorithm 2 with every §4.3 optimization
//!   independently toggleable — FP16/INT8 quantization, vectorized memory
//!   access, fused gather/scatter phases, locality-aware (input-stationary
//!   gather, output-stationary scatter) ordering, matmul grouping, and the
//!   §4.2.1 center-offset shortcut.
//! - [`run_fetch_on_demand`]: MinkowskiEngine's alternative that computes
//!   partial sums directly from the input features without materializing
//!   gather/scatter buffers; it wins on small workloads and loses GEMM
//!   utilization on large ones (§5.2).
//!
//! Both execute the *real* computation on the CPU (their FP32 outputs are
//! bit-identical) while emitting their memory access traces through the GPU
//! simulator in exactly the order the corresponding CUDA kernels would, so
//! that cache behaviour — and therefore latency — differs the way the
//! paper measures.

use crate::config::{OptimizationConfig, Precision, SimdPolicy};
use crate::context::Context;
use crate::grouping::GroupPlan;
use crate::runtime::{Task, ThreadPool};
use crate::tuning::ExecPolicy;
use crate::CoreError;
use torchsparse_coords::kernel_map::MapEntry;
use torchsparse_coords::KernelMap;
use torchsparse_gpusim::Precision as GemmPrecision;
use torchsparse_gpusim::{AccessMode, ElemWidth, GemmShape, Stage};
use torchsparse_tensor::accum::ExactAccumulator;
use torchsparse_tensor::gemm::GemmOpts;
use torchsparse_tensor::microkernel::{self, Kernel, PackedB};
use torchsparse_tensor::{gemm, quant, Matrix};

/// Everything a dataflow needs to execute one convolution.
#[derive(Debug)]
pub struct ConvWorkload<'a> {
    /// Input features (`n_in x c_in`), already in storage precision.
    pub in_feats: &'a Matrix,
    /// Per-offset weight matrices (`c_in x c_out` each).
    pub weights: &'a [Matrix],
    /// The same weights pre-packed into the microkernel's panel-major
    /// layout (one [`PackedB`] per offset, built once at plan time and
    /// reused across frames). `None` streams the row-major `weights`.
    pub packed: Option<&'a [PackedB]>,
    /// The kernel map.
    pub map: &'a KernelMap,
    /// Number of output points.
    pub n_out: usize,
    /// The center offset index if this is a submanifold layer whose center
    /// map is the identity (enables the §4.2.1 shortcut).
    pub center_identity: Option<usize>,
    /// Plan-time locality ordering for the fused gather–GEMM–scatter
    /// executor. `None` (or simulate-only mode, or
    /// `fused_execution = false`) keeps the materialized gather/psum
    /// buffer path.
    pub fused: Option<&'a FusedOrder>,
    /// The tuned per-layer execution policy, when the plan carries one.
    /// `None` resolves every knob from the global [`OptimizationConfig`].
    /// Every selectable policy is bitwise-neutral — it changes execution
    /// speed and schedule, never the output bits.
    pub policy: Option<ExecPolicy>,
}

/// Resolves a [`SimdPolicy`] to a concrete compute kernel.
fn kernel_for(simd: SimdPolicy) -> Kernel {
    match simd {
        SimdPolicy::Auto => microkernel::active(),
        SimdPolicy::Portable => Kernel::Portable,
        SimdPolicy::Scalar => Kernel::Scalar,
    }
}

/// The compute kernel for one workload: a tuned policy's SIMD choice wins
/// over the global config. All kernels are bit-exact against each other,
/// so this only changes instruction throughput.
pub(crate) fn policy_kernel(config: &OptimizationConfig, policy: Option<&ExecPolicy>) -> Kernel {
    kernel_for(policy.map_or(config.simd, |p| p.simd))
}

/// The effective fused-execution switch for one workload: the
/// `TORCHSPARSE_FUSED` override outranks the plan's tuned policy, which
/// outranks the global `fused_execution` flag.
fn fused_for(config: &OptimizationConfig, policy: Option<&ExecPolicy>) -> bool {
    match crate::config::fused_override() {
        Some(forced) => forced,
        None => policy.map_or(config.fused_execution, |p| p.fused),
    }
}

/// GEMM options for one workload: the resolved kernel, FMA only if the
/// config opted in, and the tuned policy's row-panel width when present.
fn gemm_opts(config: &OptimizationConfig, policy: Option<&ExecPolicy>) -> GemmOpts {
    GemmOpts {
        kernel: Some(policy_kernel(config, policy)),
        fma: config.fma_gemm,
        panel_rows: policy.map(|p| p.panel_rows),
    }
}

impl ConvWorkload<'_> {
    fn c_in(&self) -> usize {
        self.in_feats.cols()
    }

    fn c_out(&self) -> usize {
        self.weights.first().map_or(0, Matrix::cols)
    }
}

/// Memory access modes implied by a precision/vectorization choice.
struct Modes {
    /// Mode for reading/writing feature and gather-buffer elements.
    feat: AccessMode,
    /// Mode for partial sums and outputs (INT8 falls back to 16-bit here —
    /// the paper's reason INT8 yields diminishing returns, §4.3.1).
    psum: AccessMode,
}

fn modes(precision: Precision, vectorized: bool) -> Modes {
    let vec = |elem: ElemWidth| {
        // Vectorized access moves 4 bytes per thread (e.g. `half2`).
        let width = if vectorized { (4 / elem.bytes()).max(1) } else { 1 };
        AccessMode { elem, vector_width: width }
    };
    match precision {
        Precision::Fp32 => Modes { feat: vec(ElemWidth::F32), psum: vec(ElemWidth::F32) },
        Precision::Fp16 => Modes { feat: vec(ElemWidth::F16), psum: vec(ElemWidth::F16) },
        Precision::Int8 => Modes { feat: vec(ElemWidth::I8), psum: vec(ElemWidth::F16) },
    }
}

/// GEMM precision used for a storage precision (INT8 runs its GEMMs at
/// FP16-class throughput in this model).
fn gemm_precision(p: Precision) -> GemmPrecision {
    match p {
        Precision::Fp32 => GemmPrecision::Fp32,
        Precision::Fp16 | Precision::Int8 => GemmPrecision::Fp16,
    }
}

/// Rounds a matrix to its storage precision (identity for FP32).
///
/// Applied at layer boundaries so that numerical results reflect genuine
/// quantized storage while GEMMs accumulate in FP32 (tensor-core semantics).
pub fn apply_storage_precision(pool: &ThreadPool, m: &Matrix, precision: Precision) -> Matrix {
    match precision {
        Precision::Fp32 => m.clone(),
        _ => apply_storage_precision_owned(pool, m.clone(), precision),
    }
}

/// [`apply_storage_precision`] consuming its input: FP32 is a true identity
/// (no copy at all) and the quantized precisions round in place. The conv
/// layer uses this on the freshly computed output matrix, so the FP32 path
/// of a forward pass allocates nothing here. The rounding sweep runs on the
/// worker pool; per-element rounding is independent, so results are bitwise
/// identical at any thread count.
pub fn apply_storage_precision_owned(pool: &ThreadPool, m: Matrix, precision: Precision) -> Matrix {
    apply_storage_precision_owned_kernel(pool, m, precision, microkernel::active())
}

/// [`apply_storage_precision_owned`] with an explicit compute kernel (the
/// engine resolves its [`SimdPolicy`] once per layer). The SIMD sweeps are
/// bit-exact against the scalar per-element conversions for every input,
/// so the kernel choice never changes results.
pub fn apply_storage_precision_owned_kernel(
    pool: &ThreadPool,
    mut m: Matrix,
    precision: Precision,
    kernel: Kernel,
) -> Matrix {
    match precision {
        Precision::Fp32 => {}
        Precision::Fp16 => quant::round_trip_f16_in_place_kernel(pool, &mut m, kernel),
        Precision::Int8 => {
            let q = quant::Int8Quantizer::calibrate(m.as_slice());
            q.round_trip_in_place_kernel(pool, &mut m, kernel);
        }
    }
    m
}

/// Rows per gather/scatter task. Fixed (never derived from the thread
/// count) so the partition — and therefore every task's output — is
/// identical at any pool width.
const MOVE_CHUNK: usize = 64;

/// Plan-time locality reordering for the fused dataflow: the paper's
/// §4.3.2 locality-aware access orders, applied to the real CPU executor.
///
/// For every kernel offset the map entries are viewed in *output-row*
/// order and split at [`MOVE_CHUNK`]-row output boundaries. A fused
/// execution task that owns output rows `[c*MOVE_CHUNK, (c+1)*MOVE_CHUNK)`
/// then streams exactly `view(map, n).entries[starts[n][c]..starts[n][c+1]]`
/// for each offset `n` — contiguous and without scanning the rest of the
/// map. Because the per-offset in/out maps are partial bijections, each
/// output row appears at most once per offset, and the per-element
/// accumulation order (offsets ascending, one FP32 add per entry) is
/// exactly the unfused serial engine's.
///
/// Forward searches emit CSR ranges already sorted by output row, so for
/// them the order stores *only* the chunk split points and the view is the
/// map's own CSR slice — no entry copy, no producer permutation. Only
/// transposed decoder maps (whose mirrored ranges are input-sorted) pay a
/// materialized stable re-sort plus the original-index permutation.
///
/// Built once per [`ConvPlan`](crate::plan::ConvPlan), so compiled
/// sessions pay the (mostly metadata-only) build once per geometry and
/// reuse it every frame.
#[derive(Debug, Clone)]
pub struct FusedOrder {
    /// Per-offset chunk split points (`chunks + 1` values each):
    /// `starts[n][c]..starts[n][c + 1]` indexes the output-sorted view of
    /// offset `n` restricted to output-row chunk `c`.
    starts: Vec<Vec<u32>>,
    /// Per-offset materialized re-sort, present only when the map's CSR
    /// range is not already output-ascending: `.0` is the entries stably
    /// sorted by output row, `.1` the original entry index of each sorted
    /// position — exactly the partial-sum row the GEMM wrote, so a scatter
    /// task can stream `psums[n].row(orig[i])` without rebuilding producer
    /// lists at execute time. `None` = the CSR slice itself is the view
    /// and the producer index is the identity.
    resort: Vec<Option<Resort>>,
    /// Output rows per chunk this order was split at ([`MOVE_CHUNK`] unless
    /// a tuned policy chose otherwise). The executors partition their
    /// output blocks at exactly this width; any width produces identical
    /// bits because each output row lives in exactly one chunk and its
    /// per-entry accumulation order is unchanged.
    chunk_rows: usize,
}

/// One offset's materialized re-sort: the entries stably sorted by output
/// row, and the original entry index of each sorted position.
type Resort = (Vec<MapEntry>, Vec<u32>);

/// A borrowed output-sorted view of one offset's entries: the map's own
/// CSR slice for forward (already-sorted) offsets, or the plan-time
/// re-sorted copy for transposed ones.
#[derive(Debug, Clone, Copy)]
pub struct OffsetView<'a> {
    /// The offset's entries, sorted by output row.
    pub entries: &'a [MapEntry],
    orig: Option<&'a [u32]>,
}

impl OffsetView<'_> {
    /// The original map-entry index (the partial-sum producer row) of
    /// sorted position `i`.
    #[inline]
    pub fn producer(&self, i: usize) -> u32 {
        match self.orig {
            Some(orig) => orig[i],
            None => i as u32,
        }
    }
}

/// One offset's share of a [`FusedOrder`]: the chunk split points, plus the
/// materialized re-sort when the CSR range is not already output-sorted.
fn order_one_offset(
    src: &[MapEntry],
    chunks: usize,
    chunk_rows: usize,
) -> (Vec<u32>, Option<Resort>) {
    // Forward maps are already output-ascending; only transposed maps
    // actually pay the sort (stable, so entry order among equal outputs is
    // preserved) and the materialized copy.
    let resort = if src.windows(2).all(|w| w[0].output <= w[1].output) {
        None
    } else {
        let mut orig: Vec<u32> = (0..src.len() as u32).collect();
        orig.sort_by_key(|&i| src[i as usize].output);
        let entries: Vec<MapEntry> = orig.iter().map(|&i| src[i as usize]).collect();
        Some((entries, orig))
    };
    let entries = match &resort {
        Some((sorted, _)) => sorted.as_slice(),
        None => src,
    };
    let mut s = Vec::with_capacity(chunks + 1);
    let mut i = 0usize;
    for c in 0..chunks {
        s.push(i as u32);
        let hi = ((c + 1) * chunk_rows) as u32;
        while i < entries.len() && entries[i].output < hi {
            i += 1;
        }
    }
    s.push(i as u32);
    debug_assert_eq!(i, entries.len(), "map output out of range");
    (s, resort)
}

impl FusedOrder {
    /// Splits `map`'s entries (and re-sorts any non-output-sorted offsets)
    /// for a convolution producing `n_out` output rows, at the default
    /// [`MOVE_CHUNK`] width.
    #[must_use]
    pub fn build(map: &KernelMap, n_out: usize) -> FusedOrder {
        FusedOrder::build_chunked(map, n_out, MOVE_CHUNK)
    }

    /// [`build`](FusedOrder::build) with an explicit chunk width (the
    /// autotuner's gather/scatter granularity axis).
    #[must_use]
    pub fn build_chunked(map: &KernelMap, n_out: usize, chunk_rows: usize) -> FusedOrder {
        let chunk_rows = chunk_rows.max(1);
        let chunks = n_out.div_ceil(chunk_rows);
        let volume = map.num_offsets();
        let mut starts = Vec::with_capacity(volume);
        let mut resort = Vec::with_capacity(volume);
        for n in 0..volume {
            let (s, r) = order_one_offset(map.entries(n), chunks, chunk_rows);
            starts.push(s);
            resort.push(r);
        }
        FusedOrder { starts, resort, chunk_rows }
    }

    /// [`build`](FusedOrder::build) with the per-offset sort/split work
    /// running as tasks on the worker pool. Plan builds sit on the serial
    /// critical path of compiled sessions (and of every re-plan), so
    /// spreading the K³ independent offsets across lanes directly raises
    /// the engine's parallel fraction. The per-offset results are
    /// identical to the serial builder's — offsets are fully independent —
    /// so the constructed order is bitwise the same at any pool width.
    #[must_use]
    pub fn build_on(pool: &ThreadPool, map: &KernelMap, n_out: usize) -> FusedOrder {
        FusedOrder::build_on_chunked(pool, map, n_out, MOVE_CHUNK)
    }

    /// [`build_on`](FusedOrder::build_on) with an explicit chunk width.
    #[must_use]
    pub fn build_on_chunked(
        pool: &ThreadPool,
        map: &KernelMap,
        n_out: usize,
        chunk_rows: usize,
    ) -> FusedOrder {
        let chunk_rows = chunk_rows.max(1);
        let chunks = n_out.div_ceil(chunk_rows);
        let volume = map.num_offsets();
        let mut slots: Vec<Option<(Vec<u32>, Option<Resort>)>> = vec![None; volume];
        let tasks: Vec<Task<'_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(n, slot)| {
                Box::new(move || *slot = Some(order_one_offset(map.entries(n), chunks, chunk_rows)))
                    as Task<'_>
            })
            .collect();
        pool.run(tasks);
        let mut starts = Vec::with_capacity(volume);
        let mut resort = Vec::with_capacity(volume);
        for slot in slots.into_iter().flatten() {
            starts.push(slot.0);
            resort.push(slot.1);
        }
        debug_assert_eq!(starts.len(), volume, "every offset task must have run");
        FusedOrder { starts, resort, chunk_rows }
    }

    /// Output rows per chunk this order was split at.
    #[inline]
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// The chunk split points of offset `n`.
    #[inline]
    pub fn starts(&self, n: usize) -> &[u32] {
        &self.starts[n]
    }

    /// The output-sorted entry view of offset `n`. `map` must be the map
    /// this order was built from.
    #[inline]
    pub fn view<'a>(&'a self, map: &'a KernelMap, n: usize) -> OffsetView<'a> {
        match &self.resort[n] {
            Some((entries, orig)) => OffsetView { entries, orig: Some(orig) },
            None => OffsetView { entries: map.entries(n), orig: None },
        }
    }

    /// How many offsets carry a materialized re-sort (zero for forward
    /// maps — the slice-view property the plan-memory accounting relies
    /// on).
    pub fn resorted_offsets(&self) -> usize {
        self.resort.iter().filter(|r| r.is_some()).count()
    }

    /// Bytes this order occupies beyond the kernel map it views (for the
    /// frozen-plan memory accounting).
    pub fn memory_bytes(&self) -> u64 {
        let starts: usize = self.starts.iter().map(|s| s.len() * 4).sum();
        let resort: usize = self
            .resort
            .iter()
            .flatten()
            .map(|(e, o)| e.len() * std::mem::size_of::<MapEntry>() + o.len() * 4)
            .sum();
        (starts + resort) as u64
    }
}

/// Process-wide count of [`FusedOrder`]s built *inside* the scatter because
/// the caller provided none. Engine paths always thread the plan-time order
/// through [`ConvWorkload::fused`], so steady-state compiled frames keep
/// this at zero — the regression test in `tests/fused_dataflow.rs` asserts
/// exactly that. Nonzero counts mean some call site is silently paying a
/// per-call metadata rebuild.
static SCATTER_FALLBACK_BUILDS: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);

/// Total scatter-metadata fallback builds since process start (see
/// [`SCATTER_FALLBACK_BUILDS`]).
pub fn scatter_fallback_builds() -> usize {
    SCATTER_FALLBACK_BUILDS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Copies `in_feats[entries[i].input] -> f[i]` for all entries, partitioned
/// into [`MOVE_CHUNK`]-row tasks on the pool. Rows of `f` beyond
/// `entries.len()` are untouched (callers pre-zero padded buffers). Row
/// copies go through the microkernel's wide-vector path on SIMD hosts —
/// identical bytes, fewer instructions per feature row.
fn gather_rows(
    pool: &ThreadPool,
    kernel: Kernel,
    in_feats: &Matrix,
    entries: &[MapEntry],
    f: &mut Matrix,
) {
    let c_in = in_feats.cols();
    if entries.is_empty() || c_in == 0 {
        return;
    }
    if (pool.threads() <= 1 && !pool.is_recording()) || entries.len() <= MOVE_CHUNK {
        for (i, e) in entries.iter().enumerate() {
            microkernel::copy_row(kernel, f.row_mut(i), in_feats.row(e.input as usize));
        }
        return;
    }
    let dest = &mut f.as_mut_slice()[..entries.len() * c_in];
    let tasks: Vec<Task<'_>> = dest
        .chunks_mut(MOVE_CHUNK * c_in)
        .zip(entries.chunks(MOVE_CHUNK))
        .map(|(block, chunk)| {
            Box::new(move || {
                for (row, e) in block.chunks_mut(c_in).zip(chunk) {
                    microkernel::copy_row(kernel, row, in_feats.row(e.input as usize));
                }
            }) as Task<'_>
        })
        .collect();
    pool.run(tasks);
}

std::thread_local! {
    /// Per-worker superaccumulator grid for one output chunk of the exact
    /// scatter (`rows_in_chunk x c_out` accumulators). Thread-local so the
    /// persistent pool workers reach steady state with zero allocation.
    static EXACT_GRID: std::cell::RefCell<Vec<ExactAccumulator>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Per-worker staging tile for the fused exact epilogue: the
    /// microkernel writes one offset batch's products here before they are
    /// folded into the accumulator grid.
    static EXACT_TILE: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Reduces one output chunk through exact accumulators: seeds the grid with
/// the chunk's current values (the zero init or the §4.2.1 center-shortcut
/// GEMM result), folds in every partial-sum row the plan-time order assigns
/// to the chunk, and writes back each element's single correctly rounded
/// total. Addition into a superaccumulator is order-independent, so this
/// produces identical bits no matter how chunks are scheduled — and
/// identical bits to the fused epilogue, which feeds the same per-entry
/// product values through the same accumulators.
fn exact_scatter_chunk(
    order: &FusedOrder,
    map: &KernelMap,
    psums: &[Option<Matrix>],
    c: usize,
    c_out: usize,
    block: &mut [f32],
) {
    EXACT_GRID.with(|cell| {
        let mut grid = cell.borrow_mut();
        grid.clear();
        grid.resize(block.len(), ExactAccumulator::new());
        for (acc, &v) in grid.iter_mut().zip(block.iter()) {
            acc.add(v);
        }
        let base = (c * order.chunk_rows()) as u32;
        for (n, p) in psums.iter().enumerate() {
            let Some(p) = p else { continue };
            let view = order.view(map, n);
            let lo = order.starts(n)[c] as usize;
            let hi = order.starts(n)[c + 1] as usize;
            for (i, e) in view.entries[lo..hi].iter().enumerate() {
                let src = view.producer(lo + i);
                let rel = (e.output - base) as usize * c_out;
                // `+ 0.0` canonicalizes a -0.0 partial sum to +0.0, exactly
                // as the fused route's zero-initialized staging tile does —
                // keeping the two routes' addend multisets bitwise equal.
                for (acc, &v) in grid[rel..rel + c_out].iter_mut().zip(p.row(src as usize)) {
                    acc.add(v + 0.0);
                }
            }
        }
        for (dst, acc) in block.iter_mut().zip(grid.iter()) {
            *dst = acc.round();
        }
    });
}

/// Scatter-accumulates every offset's partial sums into `out` (FP32
/// accumulation registers).
///
/// With exact accumulation on, output rows are partitioned into fixed
/// [`MOVE_CHUNK`] blocks that reduce through per-chunk superaccumulator
/// grids ([`exact_scatter_chunk`]) as pool tasks — each element becomes the
/// correctly rounded sum of its producers, bitwise identical at any thread
/// count *by arithmetic*, with no ordering constraint on the schedule.
///
/// With exact accumulation off, the historical bits are preserved: serial
/// (`threads == 1`) iterates offset-major exactly like the original engine,
/// and the parallel path walks each chunk offset-major through the
/// plan-time order — the same per-element `(offset, entry)`-ascending FP32
/// addition order as the serial loop, so results still match serial bits at
/// every pool width.
///
/// `order` is the plan-time scatter metadata; `None` (hand-built workloads
/// only) falls back to an on-the-spot build, counted by
/// [`scatter_fallback_builds`].
fn scatter_accumulate(
    pool: &ThreadPool,
    kernel: Kernel,
    map: &KernelMap,
    psums: &[Option<Matrix>],
    out: &mut Matrix,
    order: Option<&FusedOrder>,
    exact: bool,
) {
    let c_out = out.cols();
    if out.rows() == 0 || c_out == 0 {
        return;
    }
    if !exact && pool.threads() <= 1 && !pool.is_recording() {
        for (n, p) in psums.iter().enumerate() {
            let Some(p) = p else { continue };
            for (i, e) in map.entries(n).iter().enumerate() {
                let dst = out.row_mut(e.output as usize);
                microkernel::accumulate_row(kernel, dst, p.row(i));
            }
        }
        return;
    }
    let built;
    let order = match order {
        Some(o) => o,
        None => {
            SCATTER_FALLBACK_BUILDS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            built = FusedOrder::build(map, out.rows());
            &built
        }
    };
    let chunk = order.chunk_rows();
    let run_chunk = |c: usize, block: &mut [f32]| {
        if exact {
            exact_scatter_chunk(order, map, psums, c, c_out, block);
            return;
        }
        let base = (c * chunk) as u32;
        for (n, p) in psums.iter().enumerate() {
            let Some(p) = p else { continue };
            let view = order.view(map, n);
            let lo = order.starts(n)[c] as usize;
            let hi = order.starts(n)[c + 1] as usize;
            for (i, e) in view.entries[lo..hi].iter().enumerate() {
                let src = view.producer(lo + i);
                let rel = (e.output - base) as usize * c_out;
                microkernel::accumulate_row(
                    kernel,
                    &mut block[rel..rel + c_out],
                    p.row(src as usize),
                );
            }
        }
    };
    if pool.threads() <= 1 && !pool.is_recording() {
        for (c, block) in out.as_mut_slice().chunks_mut(chunk * c_out).enumerate() {
            run_chunk(c, block);
        }
        return;
    }
    let run_chunk = &run_chunk;
    let tasks: Vec<Task<'_>> = out
        .as_mut_slice()
        .chunks_mut(chunk * c_out)
        .enumerate()
        .map(|(c, block)| Box::new(move || run_chunk(c, block)) as Task<'_>)
        .collect();
    pool.run(tasks);
}

/// Layout of the simulated buffers of one convolution.
struct Buffers {
    in_base: u64,
    gather_base: u64,
    psum_base: u64,
    out_base: u64,
    /// The map/neighbor-list metadata buffer: both gather and scatter
    /// kernels stream the (input, output) index pairs that drive them.
    map_base: u64,
    map_bytes: u64,
    /// Per-offset starting row in the gather/psum buffers (padding included
    /// for bmm groups).
    seg_start: Vec<u64>,
    feat_row_bytes: u64,
    psum_row_bytes: u64,
}

/// Bytes of map metadata read per map entry by a movement kernel (one
/// 2x u32 index pair).
const MAP_ENTRY_BYTES: u64 = 8;

fn layout(w: &ConvWorkload<'_>, plan: &GroupPlan, m: &Modes, ctx: &mut Context) -> Buffers {
    let volume = w.map.num_offsets();
    let mut seg_start = vec![0u64; volume];
    let mut rows = 0u64;
    for g in &plan.groups {
        for &n in &g.offsets {
            seg_start[n] = rows;
            rows += if g.use_bmm { g.padded_rows as u64 } else { w.map.entries(n).len() as u64 };
        }
    }
    let feat_row_bytes = (w.c_in() as u64) * m.feat.elem.bytes();
    let psum_row_bytes = (w.c_out() as u64) * m.psum.elem.bytes();
    let map_bytes = w.map.total_entries() as u64 * MAP_ENTRY_BYTES;
    Buffers {
        in_base: ctx.mem.alloc(w.in_feats.rows() as u64 * feat_row_bytes),
        gather_base: ctx.mem.alloc(rows * feat_row_bytes),
        psum_base: ctx.mem.alloc(rows * psum_row_bytes),
        out_base: ctx.mem.alloc(w.n_out as u64 * psum_row_bytes),
        map_base: ctx.mem.alloc(map_bytes.max(1)),
        map_bytes,
        seg_start,
        feat_row_bytes,
        psum_row_bytes,
    }
}

/// Charges the streaming read of the map metadata slices that drive a
/// movement kernel over the given offsets (identical for every ordering, so
/// it moderates relative speedups exactly as the real index traffic does).
fn charge_map_read(w: &ConvWorkload<'_>, offsets: &[usize], bufs: &Buffers, ctx: &mut Context) {
    let _ = bufs.map_bytes;
    for &n in offsets {
        let entries = w.map.entries(n).len() as u64;
        ctx.mem.read(
            bufs.map_base,
            bufs.seg_start[n] * MAP_ENTRY_BYTES,
            entries * MAP_ENTRY_BYTES,
            AccessMode::scalar_f32(),
        );
    }
}

/// Whether a group is the bare center-identity offset that the §4.2.1
/// shortcut can compute without data movement.
fn is_center_shortcut(w: &ConvWorkload<'_>, offsets: &[usize], ctx: &Context) -> bool {
    ctx.config.skip_center_movement && offsets.len() == 1 && Some(offsets[0]) == w.center_identity
}

/// Executes the real numerics of one convolution through the fused
/// gather–GEMM–scatter microkernel: kernel-map rows stream straight from
/// `in_feats` through MR-row register tiles into `out`, with no gathered
/// or partial-sum buffer in between.
///
/// Per output element, with exact accumulation off, the accumulation order
/// is exactly the unfused engine's — a zero-initialized k-ascending dot
/// product per map entry (the GEMM into a zeroed psum row), optional f16
/// rounding of that product (the 16-bit psum store), then one FP32 add per
/// entry with offsets ascending (the scatter) — so results are bitwise
/// identical to the buffered path at any thread count. With exact
/// accumulation on, each offset batch's products stage through a zeroed
/// per-worker tile and fold into the chunk's superaccumulator grid, making
/// the result the correctly rounded sum of the same addend multiset the
/// unfused exact scatter reduces — bitwise equal across routes *and*
/// schedules. Parallel tasks own disjoint output-row blocks of the order's
/// chunk width; the partition never depends on the pool width.
#[allow(clippy::too_many_arguments)]
fn run_fused_numerics(
    w: &ConvWorkload<'_>,
    fused: &FusedOrder,
    shortcut: Option<usize>,
    round_f16: bool,
    exact: bool,
    pool: &ThreadPool,
    kernel: Kernel,
    out: &mut Matrix,
) {
    /// Identity row mapping for the exact path's staging tile: batch entry
    /// `j`'s product lands in tile row `j`.
    const IDENTITY: [u32; MOVE_CHUNK] = {
        let mut a = [0u32; MOVE_CHUNK];
        let mut i = 0;
        while i < MOVE_CHUNK {
            a[i] = i as u32;
            i += 1;
        }
        a
    };
    let (c_in, c_out) = (w.c_in(), w.c_out());
    if out.rows() == 0 || c_out == 0 {
        return;
    }
    let a = w.in_feats.as_slice();
    let operand = |n: usize| match w.packed {
        Some(packed) => microkernel::BOperand::Packed(&packed[n]),
        None => microkernel::BOperand::Dense(w.weights[n].as_slice()),
    };
    let volume = w.map.num_offsets();
    let chunk = fused.chunk_rows();
    let run_chunk = |c: usize, block: &mut [f32]| {
        let base = (c * chunk) as u32;
        let mut in_rows = [0u32; MOVE_CHUNK];
        let mut out_rel = [0u32; MOVE_CHUNK];
        if exact {
            EXACT_GRID.with(|gcell| {
                EXACT_TILE.with(|tcell| {
                    let mut grid = gcell.borrow_mut();
                    let mut tile = tcell.borrow_mut();
                    grid.clear();
                    grid.resize(block.len(), ExactAccumulator::new());
                    for (acc, &v) in grid.iter_mut().zip(block.iter()) {
                        acc.add(v);
                    }
                    for n in 0..volume {
                        if Some(n) == shortcut {
                            continue;
                        }
                        let lo = fused.starts(n)[c] as usize;
                        let hi = fused.starts(n)[c + 1] as usize;
                        let entries = &fused.view(w.map, n).entries[lo..hi];
                        let mut i = 0;
                        while i < entries.len() {
                            let cnt = (entries.len() - i).min(MOVE_CHUNK);
                            for (j, e) in entries[i..i + cnt].iter().enumerate() {
                                in_rows[j] = e.input;
                                out_rel[j] = e.output - base;
                            }
                            tile.clear();
                            tile.resize(cnt * c_out, 0.0);
                            microkernel::gemm_gather_scatter(
                                kernel,
                                a,
                                c_in,
                                &in_rows[..cnt],
                                operand(n),
                                c_out,
                                round_f16,
                                &mut tile,
                                &IDENTITY[..cnt],
                            );
                            for (j, &rel) in out_rel[..cnt].iter().enumerate() {
                                let dst = rel as usize * c_out;
                                let src = &tile[j * c_out..(j + 1) * c_out];
                                for (acc, &v) in grid[dst..dst + c_out].iter_mut().zip(src) {
                                    acc.add(v);
                                }
                            }
                            i += cnt;
                        }
                    }
                    for (dst, acc) in block.iter_mut().zip(grid.iter()) {
                        *dst = acc.round();
                    }
                });
            });
            return;
        }
        for n in 0..volume {
            if Some(n) == shortcut {
                continue;
            }
            let lo = fused.starts(n)[c] as usize;
            let hi = fused.starts(n)[c + 1] as usize;
            let entries = &fused.view(w.map, n).entries[lo..hi];
            // The register staging tiles are fixed at MOVE_CHUNK rows, so
            // wider tuned chunks (and degenerate hand-built maps) stream
            // through this sub-chunk loop in MOVE_CHUNK-entry batches —
            // per-row accumulation order is unchanged either way.
            let mut i = 0;
            while i < entries.len() {
                let cnt = (entries.len() - i).min(MOVE_CHUNK);
                for (j, e) in entries[i..i + cnt].iter().enumerate() {
                    in_rows[j] = e.input;
                    out_rel[j] = e.output - base;
                }
                microkernel::gemm_gather_scatter(
                    kernel,
                    a,
                    c_in,
                    &in_rows[..cnt],
                    operand(n),
                    c_out,
                    round_f16,
                    block,
                    &out_rel[..cnt],
                );
                i += cnt;
            }
        }
    };
    if pool.threads() <= 1 && !pool.is_recording() {
        for (c, block) in out.as_mut_slice().chunks_mut(chunk * c_out).enumerate() {
            run_chunk(c, block);
        }
        return;
    }
    let run_chunk = &run_chunk;
    let tasks: Vec<Task<'_>> = out
        .as_mut_slice()
        .chunks_mut(chunk * c_out)
        .enumerate()
        .map(|(c, block)| Box::new(move || run_chunk(c, block)) as Task<'_>)
        .collect();
    pool.run(tasks);
}

/// Executes Algorithm 2 with the configured optimizations; returns the
/// output feature matrix (`n_out x c_out`).
///
/// # Errors
///
/// Returns [`CoreError::Tensor`] if weight shapes are inconsistent with the
/// input features.
pub fn run_gather_matmul_scatter(
    w: &ConvWorkload<'_>,
    plan: &GroupPlan,
    ctx: &mut Context,
) -> Result<Matrix, CoreError> {
    let m = modes(ctx.config.precision, ctx.config.vectorized);
    let bufs = layout(w, plan, &m, ctx);
    let pool = ctx.runtime.pool();
    let kernel = policy_kernel(&ctx.config, w.policy.as_ref());
    let opts = gemm_opts(&ctx.config, w.policy.as_ref());
    let mut out = Matrix::zeros(w.n_out, w.c_out());

    // ---- Real computation (order-independent). -------------------------
    // Fused route: no gather/psum buffers at all — map rows stream through
    // the microkernel straight into `out`, with the §4.2.1 center shortcut
    // still running as one dense GEMM first. Grouping is bitwise-neutral
    // for numerics (bmm pad rows are zero and never scattered), so the
    // fused path ignores it; the simulated cost below still models the
    // configured grouping/movement kernels either way.
    let exact = crate::config::exact_accum_enabled(&ctx.config);
    let fused_order = if ctx.simulate_only || !fused_for(&ctx.config, w.policy.as_ref()) {
        None
    } else {
        w.fused
    };
    if let Some(order) = fused_order {
        let shortcut = plan
            .groups
            .iter()
            .find(|g| is_center_shortcut(w, &g.offsets, ctx))
            .map(|g| g.offsets[0]);
        if let Some(n0) = shortcut {
            match w.packed {
                Some(packed) => {
                    gemm::mm_into_packed_on(&pool, w.in_feats, &packed[n0], &mut out, opts)?;
                }
                None => gemm::mm_into_with(&pool, w.in_feats, &w.weights[n0], &mut out, opts)?,
            }
        }
        let round_f16 = ctx.config.precision != Precision::Fp32;
        run_fused_numerics(w, order, shortcut, round_f16, exact, &pool, kernel, &mut out);
    }
    // Unfused route: gather per-offset feature matrices, run the (b)mm,
    // keep partial sums. Gather/psum buffers come from the context's
    // workspace arena and are returned after the scatter, so steady-state
    // forward passes allocate no feature buffers. Skipped entirely in
    // simulate-only mode: latency depends on the map structure, never on
    // feature values.
    let mut psums: Vec<Option<Matrix>> = vec![None; w.map.num_offsets()];
    let run_numerics = !ctx.simulate_only && fused_order.is_none();
    for g in plan.groups.iter().filter(|_| run_numerics) {
        if is_center_shortcut(w, &g.offsets, ctx) {
            // out += in . W_center, rows aligned by the identity map.
            match w.packed {
                Some(packed) => gemm::mm_into_packed_on(
                    &pool,
                    w.in_feats,
                    &packed[g.offsets[0]],
                    &mut out,
                    opts,
                )?,
                None => {
                    gemm::mm_into_with(&pool, w.in_feats, &w.weights[g.offsets[0]], &mut out, opts)?
                }
            }
            continue;
        }
        let members: Vec<usize> =
            g.offsets.iter().copied().filter(|&n| !w.map.entries(n).is_empty()).collect();
        if g.use_bmm && members.len() > 1 {
            // Grouped bmm (Algorithm 4): gather every member into a padded
            // workspace buffer, then one batched GEMM whose row panels of
            // *all* members run as a single task wave — group members are
            // concurrent, not sequential.
            let mut gathered: Vec<Matrix> = Vec::with_capacity(members.len());
            for &n in &members {
                let mut f = ctx.runtime.workspaces.take(g.padded_rows, w.c_in());
                gather_rows(&pool, kernel, w.in_feats, w.map.entries(n), &mut f);
                gathered.push(f);
            }
            let mut products: Vec<Matrix> = members
                .iter()
                .map(|_| ctx.runtime.workspaces.take(g.padded_rows, w.c_out()))
                .collect();
            let a_refs: Vec<&Matrix> = gathered.iter().collect();
            match w.packed {
                Some(packed) => {
                    let b_refs: Vec<&PackedB> = members.iter().map(|&n| &packed[n]).collect();
                    gemm::bmm_into_packed_on(&pool, &a_refs, &b_refs, &mut products, opts)?;
                }
                None => {
                    let b_refs: Vec<&Matrix> = members.iter().map(|&n| &w.weights[n]).collect();
                    gemm::bmm_into_with(&pool, &a_refs, &b_refs, &mut products, opts)?;
                }
            }
            for f in gathered {
                ctx.runtime.workspaces.give(f);
            }
            for (&n, mut p) in members.iter().zip(products) {
                if ctx.config.precision != Precision::Fp32 {
                    // Partial sums are stored in 16-bit buffers.
                    quant::round_trip_f16_in_place_kernel(&pool, &mut p, kernel);
                }
                psums[n] = Some(p);
            }
        } else {
            for &n in &members {
                let entries = w.map.entries(n);
                let rows = if g.use_bmm { g.padded_rows } else { entries.len() };
                let mut f = ctx.runtime.workspaces.take(rows, w.c_in());
                gather_rows(&pool, kernel, w.in_feats, entries, &mut f);
                let mut p = ctx.runtime.workspaces.take(rows, w.c_out());
                match w.packed {
                    Some(packed) => {
                        gemm::mm_into_packed_on(&pool, &f, &packed[n], &mut p, opts)?;
                    }
                    None => gemm::mm_into_with(&pool, &f, &w.weights[n], &mut p, opts)?,
                }
                ctx.runtime.workspaces.give(f);
                if ctx.config.precision != Precision::Fp32 {
                    // Partial sums are stored in 16-bit buffers.
                    quant::round_trip_f16_in_place_kernel(&pool, &mut p, kernel);
                }
                psums[n] = Some(p);
            }
        }
    }
    // Scatter-accumulate (FP32 accumulation registers).
    if run_numerics {
        scatter_accumulate(&pool, kernel, w.map, &psums, &mut out, w.fused, exact);
    }
    for p in psums.drain(..).flatten() {
        ctx.runtime.workspaces.give(p);
    }

    // ---- Simulated cost (order faithful to the configured kernels). ----
    if ctx.config.fused_gather_scatter {
        simulate_gather(w, plan, &m, &bufs, ctx);
        simulate_matmuls(w, plan, &bufs, ctx);
        simulate_scatter(w, plan, &m, &bufs, ctx);
    } else {
        // Algorithm 2: per-group gather -> matmul -> scatter, with the GEMM
        // streaming through the L2 in between (the reuse-destroying pattern
        // of Figure 9a).
        for g in &plan.groups {
            let single = GroupPlan { groups: vec![g.clone()] };
            simulate_gather(w, &single, &m, &bufs, ctx);
            simulate_matmuls(w, &single, &bufs, ctx);
            simulate_scatter(w, &single, &m, &bufs, ctx);
        }
    }

    Ok(out)
}

/// Counting-sorts the map entries of `offsets` into per-row buckets keyed
/// by `key(entry)`: returns `(starts, slots)` where row `r`'s producers are
/// `slots[starts[r]..starts[r + 1]]` as `(offset, entry_index)` pairs, in
/// the same (offset-ascending, entry-ascending) order the previous
/// `Vec<Vec<_>>` build pushed them — the simulated access sequence is
/// unchanged, the per-row allocations are gone.
fn bucket_by(
    rows: usize,
    offsets: &[usize],
    map: &KernelMap,
    key: impl Fn(&MapEntry) -> u32,
) -> (Vec<u32>, Vec<(u32, u32)>) {
    let mut starts = vec![0u32; rows + 1];
    for &n in offsets {
        for e in map.entries(n) {
            starts[key(e) as usize + 1] += 1;
        }
    }
    for r in 0..rows {
        starts[r + 1] += starts[r];
    }
    let mut fill: Vec<u32> = starts[..rows].to_vec();
    let mut slots = vec![(0u32, 0u32); starts[rows] as usize];
    for &n in offsets {
        for (i, e) in map.entries(n).iter().enumerate() {
            let f = &mut fill[key(e) as usize];
            slots[*f as usize] = (n as u32, i as u32);
            *f += 1;
        }
    }
    (starts, slots)
}

fn simulate_gather(
    w: &ConvWorkload<'_>,
    plan: &GroupPlan,
    m: &Modes,
    bufs: &Buffers,
    ctx: &mut Context,
) {
    // Offsets actually gathered (the §4.2.1 center shortcut skips its own).
    let offsets: Vec<usize> = plan
        .groups
        .iter()
        .filter(|g| !is_center_shortcut(w, &g.offsets, ctx))
        .flat_map(|g| g.offsets.iter().copied())
        .collect();
    charge_map_read(w, &offsets, bufs, ctx);
    if ctx.config.locality_aware {
        // Input-stationary order (Figure 9b): one pass over the inputs in
        // ascending index order, covering every offset at once; each feature
        // row is read from DRAM once, held in registers, and written to
        // every gather slot that needs it. The per-input neighbor lists are
        // counting-sorted into one flat buffer (three allocations instead of
        // one `Vec` per input row) in the same (offset, entry) order.
        let (starts, slots) = bucket_by(w.in_feats.rows(), &offsets, w.map, |e| e.input);
        for j in 0..w.in_feats.rows() {
            let range = starts[j] as usize..starts[j + 1] as usize;
            if range.is_empty() {
                continue;
            }
            ctx.mem.read(bufs.in_base, j as u64 * bufs.feat_row_bytes, bufs.feat_row_bytes, m.feat);
            for &(n, i) in &slots[range] {
                ctx.mem.write(
                    bufs.gather_base,
                    (bufs.seg_start[n as usize] + u64::from(i)) * bufs.feat_row_bytes,
                    bufs.feat_row_bytes,
                    m.feat,
                );
            }
        }
    } else {
        // Weight-stationary order (Figure 9a): per offset, every input
        // index is unique, so there is no within-offset reuse.
        for &n in &offsets {
            for (i, e) in w.map.entries(n).iter().enumerate() {
                ctx.mem.read(
                    bufs.in_base,
                    e.input as u64 * bufs.feat_row_bytes,
                    bufs.feat_row_bytes,
                    m.feat,
                );
                ctx.mem.write(
                    bufs.gather_base,
                    (bufs.seg_start[n] + i as u64) * bufs.feat_row_bytes,
                    bufs.feat_row_bytes,
                    m.feat,
                );
            }
        }
    }
    let report = ctx.mem.take_report();
    let mut latency = report.latency(&ctx.device);
    // One gather kernel per group in the fused case, per offset otherwise.
    let launches = plan.kernel_count() as f64;
    latency += torchsparse_gpusim::Micros(launches * ctx.device.launch_overhead_us * 0.5);
    ctx.timeline.add(Stage::Gather, latency);
}

fn simulate_matmuls(w: &ConvWorkload<'_>, plan: &GroupPlan, bufs: &Buffers, ctx: &mut Context) {
    let precision = gemm_precision(ctx.config.precision);
    for g in &plan.groups {
        let (shape_rows, latency) = if is_center_shortcut(w, &g.offsets, ctx) {
            let shape = GemmShape::mm(w.in_feats.rows(), w.c_in(), w.c_out());
            (w.in_feats.rows() as u64, ctx.gemm.latency(shape, precision))
        } else if g.use_bmm {
            let shape = GemmShape::bmm(g.offsets.len(), g.padded_rows, w.c_in(), w.c_out());
            ((g.offsets.len() * g.padded_rows) as u64, ctx.gemm.latency(shape, precision))
        } else {
            let mut total = torchsparse_gpusim::Micros::ZERO;
            let mut rows = 0u64;
            for &n in &g.offsets {
                let size = w.map.entries(n).len();
                if size == 0 {
                    continue;
                }
                total += ctx.gemm.latency(GemmShape::mm(size, w.c_in(), w.c_out()), precision);
                rows += size as u64;
            }
            (rows, total)
        };
        ctx.timeline.add(Stage::MatMul, latency);
        // The GEMM streams its operands/results through the L2; this is not
        // charged to any movement phase but evicts resident gather data —
        // exactly the pollution that makes unfused scatter/gather slow
        // (§4.3.2). The center shortcut reads input features directly.
        let gather_bytes = shape_rows * bufs.feat_row_bytes;
        let psum_bytes = shape_rows * bufs.psum_row_bytes;
        ctx.mem.pollute_cache(gather_bytes + psum_bytes);
        let _ = bufs.gather_base; // buffers touched via pollution model
    }
}

fn simulate_scatter(
    w: &ConvWorkload<'_>,
    plan: &GroupPlan,
    m: &Modes,
    bufs: &Buffers,
    ctx: &mut Context,
) {
    let offsets: Vec<usize> = plan
        .groups
        .iter()
        .filter(|g| !is_center_shortcut(w, &g.offsets, ctx))
        .flat_map(|g| g.offsets.iter().copied())
        .collect();
    charge_map_read(w, &offsets, bufs, ctx);
    if ctx.config.locality_aware {
        // Output-stationary order: one pass over the outputs, reading every
        // partial sum for a point, reducing in registers, and writing the
        // output row once. Producer lists are counting-sorted into one flat
        // buffer (same (offset, entry) order, no per-output allocations).
        let (starts, slots) = bucket_by(w.n_out, &offsets, w.map, |e| e.output);
        for k in 0..w.n_out {
            let range = starts[k] as usize..starts[k + 1] as usize;
            if range.is_empty() {
                continue;
            }
            for &(n, i) in &slots[range] {
                ctx.mem.read(
                    bufs.psum_base,
                    (bufs.seg_start[n as usize] + u64::from(i)) * bufs.psum_row_bytes,
                    bufs.psum_row_bytes,
                    m.psum,
                );
            }
            ctx.mem.write(
                bufs.out_base,
                k as u64 * bufs.psum_row_bytes,
                bufs.psum_row_bytes,
                m.psum,
            );
        }
    } else {
        // Weight-stationary scatter: sequential partial sums, random
        // read-modify-write of the output rows.
        for &n in &offsets {
            for (i, e) in w.map.entries(n).iter().enumerate() {
                ctx.mem.read(
                    bufs.psum_base,
                    (bufs.seg_start[n] + i as u64) * bufs.psum_row_bytes,
                    bufs.psum_row_bytes,
                    m.psum,
                );
                ctx.mem.read(
                    bufs.out_base,
                    e.output as u64 * bufs.psum_row_bytes,
                    bufs.psum_row_bytes,
                    m.psum,
                );
                ctx.mem.write(
                    bufs.out_base,
                    e.output as u64 * bufs.psum_row_bytes,
                    bufs.psum_row_bytes,
                    m.psum,
                );
            }
        }
    }
    let report = ctx.mem.take_report();
    let mut latency = report.latency(&ctx.device);
    let launches = plan.kernel_count() as f64;
    latency += torchsparse_gpusim::Micros(launches * ctx.device.launch_overhead_us * 0.5);
    ctx.timeline.add(Stage::Scatter, latency);
}

/// Utilization ceiling for fetch-on-demand's matrix-vector style compute:
/// each output row is produced by streaming the weight matrix with no
/// register-tile reuse, so throughput saturates early regardless of
/// workload size. This is why MinkowskiEngine only uses the dataflow for
/// small workloads (§5.2): below the ceiling it matches gather-matmul-
/// scatter while avoiding all buffer traffic; above it, GEMM pulls away.
const FETCH_ON_DEMAND_UTIL_CAP: f64 = 0.18;

/// Executes the fetch-on-demand dataflow: partial sums are computed straight
/// from the input features and accumulated into the outputs, with no
/// gather/scatter buffers (Lin et al. 2021; used by MinkowskiEngine for
/// small workloads, §5.2).
///
/// # Errors
///
/// Returns [`CoreError::Tensor`] on inconsistent weight shapes.
pub fn run_fetch_on_demand(w: &ConvWorkload<'_>, ctx: &mut Context) -> Result<Matrix, CoreError> {
    let m = modes(ctx.config.precision, ctx.config.vectorized);
    let feat_row_bytes = (w.c_in() as u64) * m.feat.elem.bytes();
    let out_row_bytes = (w.c_out() as u64) * m.psum.elem.bytes();
    let in_base = ctx.mem.alloc(w.in_feats.rows() as u64 * feat_row_bytes);
    let out_base = ctx.mem.alloc(w.n_out as u64 * out_row_bytes);

    let mut out = Matrix::zeros(w.n_out, w.c_out());
    let precision = gemm_precision(ctx.config.precision);
    let mut compute = torchsparse_gpusim::Micros::ZERO;
    let pool = ctx.runtime.pool();
    let kernel = policy_kernel(&ctx.config, w.policy.as_ref());
    let opts = gemm_opts(&ctx.config, w.policy.as_ref());
    // Fused route: stream map rows straight through the microkernel into
    // `out` — no scratch buffers taken at all. Fetch-on-demand keeps its
    // partial sums in FP32 (no 16-bit psum store), hence `round_f16:
    // false`, and never uses the center shortcut.
    let exact = crate::config::exact_accum_enabled(&ctx.config);
    let fused_order = if ctx.simulate_only || !fused_for(&ctx.config, w.policy.as_ref()) {
        None
    } else {
        w.fused
    };
    if let Some(order) = fused_order {
        run_fused_numerics(w, order, None, false, exact, &pool, kernel, &mut out);
    }
    let run_numerics = !ctx.simulate_only && fused_order.is_none();
    // Unfused route, exact accumulation off: one scratch pair reused across
    // all K^3 neighborhoods (previously a fresh gather matrix was allocated
    // per offset): reshape keeps the backing storage whenever capacity
    // suffices, and the buffers return to the workspace arena afterwards
    // for the next layer or forward pass.
    let mut buffers = (run_numerics && !exact).then(|| {
        (ctx.runtime.workspaces.take(0, w.c_in()), ctx.runtime.workspaces.take(0, w.c_out()))
    });
    // Unfused route, exact accumulation on: partial sums are kept per
    // offset (fetch-on-demand stays FP32, no 16-bit psum store) and the
    // whole reduction runs through the shared exact scatter at the end —
    // the same addend multiset the fused route folds, so both routes round
    // to identical bits.
    let mut psums: Vec<Option<Matrix>> =
        if run_numerics && exact { vec![None; w.map.num_offsets()] } else { Vec::new() };

    for n in 0..w.map.num_offsets() {
        let entries = w.map.entries(n);
        if entries.is_empty() {
            continue;
        }
        if let Some((scratch, psum)) = &mut buffers {
            // Real compute: out[k] += in[j] . W_n per entry. Executed as one
            // blocked GEMM over the offset's rows — numerically identical to
            // the per-entry row-by-matrix products of the device kernel.
            scratch.reshape_zeroed(entries.len(), w.c_in());
            gather_rows(&pool, kernel, w.in_feats, entries, scratch);
            psum.reshape_zeroed(entries.len(), w.c_out());
            match w.packed {
                Some(packed) => {
                    gemm::mm_into_packed_on(&pool, &*scratch, &packed[n], psum, opts)?;
                }
                None => gemm::mm_into_with(&pool, &*scratch, &w.weights[n], psum, opts)?,
            }
            for (i, e) in entries.iter().enumerate() {
                let dst = out.row_mut(e.output as usize);
                microkernel::accumulate_row(kernel, dst, psum.row(i));
            }
        } else if run_numerics && exact {
            let mut f = ctx.runtime.workspaces.take(entries.len(), w.c_in());
            gather_rows(&pool, kernel, w.in_feats, entries, &mut f);
            let mut p = ctx.runtime.workspaces.take(entries.len(), w.c_out());
            match w.packed {
                Some(packed) => gemm::mm_into_packed_on(&pool, &f, &packed[n], &mut p, opts)?,
                None => gemm::mm_into_with(&pool, &f, &w.weights[n], &mut p, opts)?,
            }
            ctx.runtime.workspaces.give(f);
            psums[n] = Some(p);
        }
        for e in entries {
            // Memory: read the input row, read-modify-write the output row.
            ctx.mem.read(in_base, e.input as u64 * feat_row_bytes, feat_row_bytes, m.feat);
            ctx.mem.read(out_base, e.output as u64 * out_row_bytes, out_row_bytes, m.psum);
            ctx.mem.write(out_base, e.output as u64 * out_row_bytes, out_row_bytes, m.psum);
        }
        let shape = GemmShape::mm(entries.len(), w.c_in(), w.c_out());
        let util = ctx.gemm.utilization(shape).min(FETCH_ON_DEMAND_UTIL_CAP);
        let tflops = ctx.gemm.peak_tflops(precision) * util;
        let compute_us = if tflops > 0.0 { shape.flops() / (tflops * 1e6) } else { 0.0 };
        compute += torchsparse_gpusim::Micros(compute_us + ctx.device.launch_overhead_us);
    }

    if let Some((scratch, psum)) = buffers {
        ctx.runtime.workspaces.give(scratch);
        ctx.runtime.workspaces.give(psum);
    }
    if run_numerics && exact {
        scatter_accumulate(&pool, kernel, w.map, &psums, &mut out, w.fused, true);
        for p in psums.drain(..).flatten() {
            ctx.runtime.workspaces.give(p);
        }
    }
    let report = ctx.mem.take_report();
    ctx.timeline.add(Stage::Gather, report.latency(&ctx.device));
    ctx.timeline.add(Stage::MatMul, compute);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GroupingStrategy, OptimizationConfig};
    use crate::grouping::plan_groups;
    use torchsparse_coords::kernel_map::search;
    use torchsparse_coords::{Coord, CoordHashMap};
    use torchsparse_gpusim::DeviceProfile;

    /// Deterministic pseudo-random matrix without a rand dependency.
    fn pseudo_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32 - 1000.0) / 500.0
        })
    }

    fn scene(n: i32) -> Vec<Coord> {
        let mut v = Vec::new();
        for x in 0..n {
            for y in 0..n {
                if (x + y) % 3 != 0 {
                    v.push(Coord::new(0, x, y, (x * 2 + y) % 5));
                }
            }
        }
        v
    }

    fn workload_parts(c_in: usize, c_out: usize) -> (Vec<Coord>, Matrix, Vec<Matrix>, KernelMap) {
        let coords = scene(9);
        let feats = pseudo_matrix(coords.len(), c_in, 7);
        let weights: Vec<Matrix> =
            (0..27).map(|n| pseudo_matrix(c_in, c_out, 100 + n as u64)).collect();
        let (table, _) = CoordHashMap::build(&coords);
        let map = search(&coords, &table, 3, 1).unwrap();
        (coords, feats, weights, map)
    }

    fn ctx_with(config: OptimizationConfig) -> Context {
        Context::new(config, DeviceProfile::rtx_2080ti())
    }

    /// Reference computation straight from the map definition (Equation 1).
    fn reference_output(
        feats: &Matrix,
        weights: &[Matrix],
        map: &KernelMap,
        n_out: usize,
    ) -> Matrix {
        let c_out = weights[0].cols();
        let mut out = Matrix::zeros(n_out, c_out);
        for (n, weight) in weights.iter().enumerate().take(map.num_offsets()) {
            for e in map.entries(n) {
                for co in 0..c_out {
                    let mut acc = 0.0f32;
                    for ci in 0..feats.cols() {
                        acc += feats[(e.input as usize, ci)] * weight[(ci, co)];
                    }
                    out[(e.output as usize, co)] += acc;
                }
            }
        }
        out
    }

    #[test]
    fn all_fp32_configs_agree_with_reference() {
        let (coords, feats, weights, map) = workload_parts(8, 16);
        let n_out = coords.len();
        let expect = reference_output(&feats, &weights, &map, n_out);

        let strategies = [
            GroupingStrategy::Separate,
            GroupingStrategy::Symmetric,
            GroupingStrategy::Fixed,
            GroupingStrategy::Adaptive { epsilon: 0.3, s_threshold: usize::MAX },
            GroupingStrategy::Adaptive { epsilon: 1.0, s_threshold: 0 },
        ];
        for strategy in strategies {
            for fused in [false, true] {
                for locality in [false, true] {
                    for skip_center in [false, true] {
                        let mut cfg = OptimizationConfig::baseline_fp32();
                        cfg.grouping = strategy;
                        cfg.fused_gather_scatter = fused;
                        cfg.locality_aware = locality;
                        cfg.skip_center_movement = skip_center;
                        let mut ctx = ctx_with(cfg);
                        let plan = plan_groups(&map.sizes(), true, strategy);
                        let w = ConvWorkload {
                            in_feats: &feats,
                            weights: &weights,
                            packed: None,
                            map: &map,
                            n_out,
                            center_identity: Some(13),
                            fused: None,
                            policy: None,
                        };
                        let out = run_gather_matmul_scatter(&w, &plan, &mut ctx).unwrap();
                        let diff = out.max_abs_diff(&expect).unwrap();
                        assert!(
                            diff < 1e-3,
                            "strategy {strategy:?} fused={fused} locality={locality} skip={skip_center}: diff {diff}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fetch_on_demand_matches_reference() {
        let (coords, feats, weights, map) = workload_parts(6, 10);
        let n_out = coords.len();
        let expect = reference_output(&feats, &weights, &map, n_out);
        let mut ctx = ctx_with(OptimizationConfig::minkowski_engine());
        let w = ConvWorkload {
            in_feats: &feats,
            weights: &weights,
            packed: None,
            map: &map,
            n_out,
            center_identity: Some(13),
            fused: None,
            policy: None,
        };
        let out = run_fetch_on_demand(&w, &mut ctx).unwrap();
        assert!(out.max_abs_diff(&expect).unwrap() < 1e-3);
    }

    #[test]
    fn fp16_output_close_to_fp32() {
        let (coords, feats, weights, map) = workload_parts(8, 8);
        let n_out = coords.len();
        let expect = reference_output(&feats, &weights, &map, n_out);
        let mut cfg = OptimizationConfig::torchsparse();
        cfg.grouping = GroupingStrategy::Separate;
        let mut ctx = ctx_with(cfg);
        let plan = plan_groups(&map.sizes(), true, GroupingStrategy::Separate);
        let w = ConvWorkload {
            in_feats: &feats,
            weights: &weights,
            packed: None,
            map: &map,
            n_out,
            center_identity: Some(13),
            fused: None,
            policy: None,
        };
        let out = run_gather_matmul_scatter(&w, &plan, &mut ctx).unwrap();
        let rel = out.max_abs_diff(&expect).unwrap() / expect.frobenius_norm().max(1e-6);
        assert!(rel < 0.01, "fp16 relative error {rel} too large");
    }

    #[test]
    fn movement_latency_recorded() {
        let (coords, feats, weights, map) = workload_parts(8, 8);
        let mut ctx = ctx_with(OptimizationConfig::baseline_fp32());
        let plan = plan_groups(&map.sizes(), true, GroupingStrategy::Separate);
        let w = ConvWorkload {
            in_feats: &feats,
            weights: &weights,
            packed: None,
            map: &map,
            n_out: coords.len(),
            center_identity: Some(13),
            fused: None,
            policy: None,
        };
        run_gather_matmul_scatter(&w, &plan, &mut ctx).unwrap();
        assert!(ctx.timeline.stage(Stage::Gather).as_f64() > 0.0);
        assert!(ctx.timeline.stage(Stage::MatMul).as_f64() > 0.0);
        assert!(ctx.timeline.stage(Stage::Scatter).as_f64() > 0.0);
    }

    #[test]
    fn center_shortcut_reduces_movement() {
        let (coords, feats, weights, map) = workload_parts(8, 8);
        let run = |skip: bool| {
            let mut cfg = OptimizationConfig::baseline_fp32();
            cfg.skip_center_movement = skip;
            let mut ctx = ctx_with(cfg);
            let plan = plan_groups(&map.sizes(), true, GroupingStrategy::Separate);
            let w = ConvWorkload {
                in_feats: &feats,
                weights: &weights,
                packed: None,
                map: &map,
                n_out: coords.len(),
                center_identity: Some(13),
                fused: None,
                policy: None,
            };
            run_gather_matmul_scatter(&w, &plan, &mut ctx).unwrap();
            ctx.timeline.data_movement().as_f64()
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn int8_runs_and_roughly_matches() {
        let (coords, feats, weights, map) = workload_parts(4, 4);
        let n_out = coords.len();
        let expect = reference_output(&feats, &weights, &map, n_out);
        let mut cfg = OptimizationConfig::torchsparse();
        cfg.precision = Precision::Int8;
        let mut ctx = ctx_with(cfg);
        let plan = plan_groups(&map.sizes(), true, GroupingStrategy::Separate);
        let w = ConvWorkload {
            in_feats: &feats,
            weights: &weights,
            packed: None,
            map: &map,
            n_out,
            center_identity: Some(13),
            fused: None,
            policy: None,
        };
        let out = run_gather_matmul_scatter(&w, &plan, &mut ctx).unwrap();
        // INT8 storage was not applied to in_feats here (the conv layer does
        // that); this exercises the int8 *movement* path only.
        assert!(out.max_abs_diff(&expect).unwrap() < 1.0);
    }

    fn bits_of(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn fused_executor_bitwise_matches_unfused() {
        let (coords, feats, weights, map) = workload_parts(8, 16);
        let n_out = coords.len();
        let order = FusedOrder::build(&map, n_out);
        for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            for skip_center in [false, true] {
                let mut cfg = OptimizationConfig::torchsparse();
                cfg.precision = precision;
                cfg.skip_center_movement = skip_center;
                let run = |fused: Option<&FusedOrder>| {
                    let mut ctx = ctx_with(cfg.clone());
                    let plan = plan_groups(&map.sizes(), true, cfg.grouping);
                    let w = ConvWorkload {
                        in_feats: &feats,
                        weights: &weights,
                        packed: None,
                        map: &map,
                        n_out,
                        center_identity: Some(13),
                        fused,
                        policy: None,
                    };
                    run_gather_matmul_scatter(&w, &plan, &mut ctx).unwrap()
                };
                assert_eq!(
                    bits_of(&run(Some(&order))),
                    bits_of(&run(None)),
                    "{precision:?} skip_center={skip_center}"
                );
            }
        }
    }

    #[test]
    fn fused_fetch_on_demand_bitwise_matches_unfused() {
        let (coords, feats, weights, map) = workload_parts(6, 10);
        let n_out = coords.len();
        let order = FusedOrder::build(&map, n_out);
        let run = |fused: Option<&FusedOrder>| {
            let mut ctx = ctx_with(OptimizationConfig::minkowski_engine());
            let w = ConvWorkload {
                in_feats: &feats,
                weights: &weights,
                packed: None,
                map: &map,
                n_out,
                center_identity: Some(13),
                fused,
                policy: None,
            };
            run_fetch_on_demand(&w, &mut ctx).unwrap()
        };
        assert_eq!(bits_of(&run(Some(&order))), bits_of(&run(None)));
    }

    #[test]
    fn chunk_width_is_bitwise_neutral() {
        // Every gather/scatter chunk width the autotuner may pick streams
        // the same per-row addend order, so outputs are bit-identical to
        // the default MOVE_CHUNK split — fused and unfused, exact on/off.
        let (coords, feats, weights, map) = workload_parts(8, 16);
        let n_out = coords.len();
        let run = |order: &FusedOrder, exact: bool, use_fused: bool| {
            let mut cfg = OptimizationConfig::torchsparse();
            cfg.exact_accumulation = exact;
            let mut ctx = ctx_with(cfg.clone());
            let plan = plan_groups(&map.sizes(), true, cfg.grouping);
            let w = ConvWorkload {
                in_feats: &feats,
                weights: &weights,
                packed: None,
                map: &map,
                n_out,
                center_identity: Some(13),
                fused: use_fused.then_some(order),
                policy: None,
            };
            run_gather_matmul_scatter(&w, &plan, &mut ctx).unwrap()
        };
        if std::env::var_os("TORCHSPARSE_EXACT_ACCUM").is_some() {
            return; // env forces one accumulation mode; skip the sweep
        }
        let baseline = FusedOrder::build(&map, n_out);
        assert_eq!(baseline.chunk_rows(), MOVE_CHUNK);
        for exact in [false, true] {
            for use_fused in [true, false] {
                let expect = bits_of(&run(&baseline, exact, use_fused));
                for chunk in [1, 32, 128, 256, 1000] {
                    let order = FusedOrder::build_chunked(&map, n_out, chunk);
                    assert_eq!(order.chunk_rows(), chunk);
                    assert_eq!(
                        bits_of(&run(&order, exact, use_fused)),
                        expect,
                        "chunk={chunk} exact={exact} fused={use_fused}"
                    );
                }
            }
        }
    }

    #[test]
    fn policy_overrides_config_knobs() {
        // A plan-carried policy steers the fused route and SIMD kernel
        // without touching the global config — and stays bit-identical.
        let (coords, feats, weights, map) = workload_parts(8, 16);
        let n_out = coords.len();
        let order = FusedOrder::build(&map, n_out);
        let run = |policy: Option<ExecPolicy>| {
            let cfg = OptimizationConfig::torchsparse();
            let mut ctx = ctx_with(cfg.clone());
            let plan = plan_groups(&map.sizes(), true, cfg.grouping);
            let w = ConvWorkload {
                in_feats: &feats,
                weights: &weights,
                packed: None,
                map: &map,
                n_out,
                center_identity: Some(13),
                fused: Some(&order),
                policy,
            };
            run_gather_matmul_scatter(&w, &plan, &mut ctx).unwrap()
        };
        let cfg = OptimizationConfig::torchsparse();
        let base = ExecPolicy::from_config(&cfg);
        let expect = bits_of(&run(None));
        for policy in [
            base,
            ExecPolicy { fused: false, ..base },
            ExecPolicy { simd: SimdPolicy::Portable, ..base },
            ExecPolicy { simd: SimdPolicy::Scalar, ..base },
            ExecPolicy { panel_rows: 32, chunk_rows: 256, ..base },
        ] {
            assert_eq!(bits_of(&run(Some(policy))), expect, "{policy:?}");
        }
    }
}
