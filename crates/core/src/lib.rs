//! The sparse convolution engine — the paper's primary contribution.
//!
//! TorchSparse decomposes sparse convolution into four stages (Figure 2):
//! **mapping**, **gather**, **matmul**, and **scatter-accumulate**, and
//! optimizes each under two principles: *improve computation regularity* and
//! *reduce memory footprint*. This crate implements the full engine:
//!
//! - [`SparseTensor`]: coordinates + features + tensor stride.
//! - [`SparseConv3d`] / [`BatchNorm`] / [`ReLU`] / [`GlobalPool`]: layers.
//! - [`Module`] / [`Sequential`]: the PyTorch-like composition API (§4.1).
//! - [`mapping`]: map search with the `[grid, hashmap]` strategy space,
//!   fused downsampling kernels, symmetric map reuse (§4.4).
//! - [`grouping`]: separate / symmetric / fixed / adaptive matmul grouping
//!   (§4.2, Algorithms 4 & 5).
//! - [`dataflow`]: gather–matmul–scatter with quantized, vectorized, fused,
//!   locality-aware data movement (§4.3), plus the fetch-on-demand dataflow
//!   MinkowskiEngine uses for small workloads.
//! - [`Engine`] / [`EnginePreset`]: end-to-end execution with per-stage
//!   simulated latency on a chosen [`DeviceProfile`].
//!
//! Every layer *executes* numerically on the CPU (outputs are bit-exact
//! across dataflows in FP32 and verified against a dense oracle) while the
//! engine *accounts* simulated GPU cost through `torchsparse-gpusim`.
//!
//! The engine is also fault-tolerant: [`validate`] screens every input to
//! [`Engine::run`] under a configurable [`ValidationPolicy`], [`faults`]
//! provides deterministic fault injection at named sites, and each
//! degradation (grid→hashmap fallback, FP16 overflow→FP32 re-run, tuning
//! failure→fixed grouping) is recorded in an observable
//! [`DegradationReport`].
//!
//! For streaming inference the engine separates *planning* from
//! *execution*: [`Engine::compile`] traces a model into a flat [`LayerOp`]
//! IR and freezes every geometric derivation (kernel maps, output
//! coordinates, grouping plans) into an [`ExecutionPlan`] keyed by a
//! [`geometry_fingerprint`]; the resulting [`CompiledSession`] then runs
//! only feature-path work per frame, re-planning automatically when the
//! input geometry changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod config;
mod context;
mod conv;
mod delta;
mod engine;
mod error;
mod module;
mod plan;
mod pointwise;
mod pooling;
mod session;
mod sparse_tensor;

pub mod dataflow;
pub mod faults;
pub mod grouping;
pub mod mapping;
pub mod runtime;
pub mod tuning;
pub mod validate;

pub use config::{
    coord_index_choice, exact_accum_enabled, fused_enabled, CoordIndexChoice, EnginePreset,
    GroupingStrategy, MapSearchStrategy, OptimizationConfig, Precision, SimdPolicy,
};
pub use context::{Context, Deadline, LayerProfile, LayerWorkload, MapKey};
pub use conv::SparseConv3d;
pub use engine::Engine;
pub use error::CoreError;
pub use faults::{DegradationEvent, DegradationReport, FaultInjector, FaultSite};
pub use module::{Module, Sequential};
pub use plan::{geometry_fingerprint, ExecutionPlan, LayerOp, PlanCacheStats, Tracer};
pub use pointwise::{BatchNorm, GlobalPool, ReLU};
pub use pooling::{PoolReduction, SparseMaxPool3d};
pub use runtime::{Runtime, ThreadPool, WorkspacePool};
pub use session::{CompiledModel, CompiledSession, StreamState};
pub use sparse_tensor::SparseTensor;
pub use tuning::{ExecPolicy, TuningReport};
pub use validate::{ValidationConfig, ValidationPolicy};

pub use torchsparse_gpusim::DeviceProfile;
