//! Pointwise layers: batch normalization, ReLU, and global pooling.
//!
//! These are memory-bound streaming kernels. They never touch coordinates
//! or maps, so their simulated cost is a single read+write sweep over the
//! feature buffer, charged to [`Stage::Other`] — which is how they appear
//! in the paper's Figure 4 breakdown.

use crate::context::Context;
use crate::dataflow::apply_storage_precision;
use crate::module::Module;
use crate::plan::{LayerOp, Tracer};
use crate::{CoreError, SparseTensor};
use torchsparse_gpusim::{AccessMode, ElemWidth, Stage};
use torchsparse_tensor::Matrix;

fn feature_mode(ctx: &Context) -> AccessMode {
    let elem = match ctx.config.precision {
        crate::config::Precision::Fp32 => ElemWidth::F32,
        crate::config::Precision::Fp16 => ElemWidth::F16,
        crate::config::Precision::Int8 => ElemWidth::I8,
    };
    let vector_width = if ctx.config.vectorized { (4 / elem.bytes()).max(1) } else { 1 };
    AccessMode { elem, vector_width }
}

/// Charges one streaming read+write sweep over an `n x c` feature buffer,
/// plus the host-side overhead of dispatching the op.
fn charge_pointwise(n: usize, c: usize, ctx: &mut Context) {
    ctx.charge_host_op();
    let mode = feature_mode(ctx);
    let bytes = (n * c) as u64 * mode.elem.bytes();
    let base = ctx.mem.alloc(bytes);
    ctx.mem.read(base, 0, bytes, mode);
    ctx.mem.write(base, 0, bytes, mode);
    let report = ctx.mem.take_report();
    let latency =
        report.latency(&ctx.device) + torchsparse_gpusim::Micros(ctx.device.launch_overhead_us);
    ctx.timeline.add(Stage::Other, latency);
}

/// Inference-mode batch normalization, folded to per-channel scale + shift.
///
/// # Example
///
/// ```
/// use torchsparse_core::BatchNorm;
///
/// let bn = BatchNorm::identity("bn1", 16);
/// assert_eq!(bn.channels(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    name: String,
    scale: Vec<f32>,
    shift: Vec<f32>,
}

impl BatchNorm {
    /// Creates a batch norm with explicit per-channel scale and shift.
    ///
    /// # Panics
    ///
    /// Panics if `scale` and `shift` lengths differ.
    pub fn new(name: impl Into<String>, scale: Vec<f32>, shift: Vec<f32>) -> BatchNorm {
        assert_eq!(scale.len(), shift.len(), "scale/shift length mismatch");
        BatchNorm { name: name.into(), scale, shift }
    }

    /// An identity normalization (scale 1, shift 0) over `channels`.
    pub fn identity(name: impl Into<String>, channels: usize) -> BatchNorm {
        BatchNorm::new(name, vec![1.0; channels], vec![0.0; channels])
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.scale.len()
    }

    /// The feature-path work, without the per-layer profile wrap (the
    /// dynamic `forward` and the compiled session each add their own).
    pub(crate) fn execute_planned(
        &self,
        input: &SparseTensor,
        ctx: &mut Context,
    ) -> Result<SparseTensor, CoreError> {
        if input.channels() != self.channels() {
            return Err(CoreError::ChannelMismatch {
                expected: self.channels(),
                actual: input.channels(),
            });
        }
        let pool = ctx.runtime.pool();
        let mut feats = input.feats().clone();
        feats.par_map_rows_inplace(&pool, |row| {
            for (v, (s, sh)) in row.iter_mut().zip(self.scale.iter().zip(&self.shift)) {
                *v = *v * s + sh;
            }
        });
        let feats = apply_storage_precision(&pool, &feats, ctx.config.precision);
        charge_pointwise(input.len(), input.channels(), ctx);
        input.with_feats(feats)
    }
}

impl Module for BatchNorm {
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        let profile_start = ctx.start_layer_profile();
        let out = self.execute_planned(input, ctx)?;
        ctx.finish_layer_profile(&self.name, input.len(), profile_start);
        Ok(out)
    }

    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        tracer.push(LayerOp::BatchNorm(self));
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn param_count(&self) -> usize {
        2 * self.channels()
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReLU {
    name: String,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new(name: impl Into<String>) -> ReLU {
        ReLU { name: name.into() }
    }

    /// The feature-path work, without the per-layer profile wrap.
    pub(crate) fn execute_planned(
        &self,
        input: &SparseTensor,
        ctx: &mut Context,
    ) -> Result<SparseTensor, CoreError> {
        let mut feats = input.feats().clone();
        feats.par_map_inplace(&ctx.runtime.pool(), |v| v.max(0.0));
        charge_pointwise(input.len(), input.channels(), ctx);
        input.with_feats(feats)
    }
}

impl Module for ReLU {
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        let profile_start = ctx.start_layer_profile();
        let out = self.execute_planned(input, ctx)?;
        ctx.finish_layer_profile(&self.name, input.len(), profile_start);
        Ok(out)
    }

    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        tracer.push(LayerOp::Relu(self));
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Global average pooling over each batch (scene): produces one point per
/// batch at the origin, holding the mean feature vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalPool {
    name: String,
}

impl GlobalPool {
    /// Creates a global average pooling layer.
    pub fn new(name: impl Into<String>) -> GlobalPool {
        GlobalPool { name: name.into() }
    }

    /// The feature-path work (per-batch means). Output geometry is one
    /// point per batch at the origin, derived from the input's batches.
    pub(crate) fn execute_planned(
        &self,
        input: &SparseTensor,
        ctx: &mut Context,
    ) -> Result<SparseTensor, CoreError> {
        if input.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let mut batches: Vec<i32> = input.coords().iter().map(|c| c.batch).collect();
        batches.sort_unstable();
        batches.dedup();
        let c = input.channels();
        let mut sums = vec![vec![0.0f32; c]; batches.len()];
        let mut counts = vec![0usize; batches.len()];
        for (i, coord) in input.coords().iter().enumerate() {
            // `batches` was collected from these very coordinates, so every
            // batch id is present in the sorted, deduped list.
            #[allow(clippy::expect_used)]
            let b = batches.binary_search(&coord.batch).expect("batch present");
            counts[b] += 1;
            for (s, v) in sums[b].iter_mut().zip(input.feats().row(i)) {
                *s += v;
            }
        }
        let coords: Vec<_> =
            batches.iter().map(|&b| torchsparse_coords::Coord::new(b, 0, 0, 0)).collect();
        let feats = Matrix::from_fn(batches.len(), c, |r, col| sums[r][col] / counts[r] as f32);
        charge_pointwise(input.len(), c, ctx);
        SparseTensor::with_stride(coords, feats, input.stride())
    }
}

impl Module for GlobalPool {
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        self.execute_planned(input, ctx)
    }

    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        tracer.push(LayerOp::GlobalPool(self));
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationConfig;
    use torchsparse_coords::Coord;
    use torchsparse_gpusim::DeviceProfile;

    fn ctx() -> Context {
        Context::new(OptimizationConfig::baseline_fp32(), DeviceProfile::rtx_2080ti())
    }

    fn tensor() -> SparseTensor {
        SparseTensor::new(
            vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0), Coord::new(1, 0, 0, 0)],
            Matrix::from_vec(3, 2, vec![1.0, -2.0, 3.0, -4.0, 5.0, 6.0]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut c = ctx();
        let y = ReLU::new("r").forward(&tensor(), &mut c).unwrap();
        assert_eq!(y.feats().as_slice(), &[1.0, 0.0, 3.0, 0.0, 5.0, 6.0]);
        assert!(c.timeline.stage(Stage::Other).as_f64() > 0.0);
    }

    #[test]
    fn batchnorm_applies_affine() {
        let mut c = ctx();
        let bn = BatchNorm::new("bn", vec![2.0, 0.5], vec![1.0, 0.0]);
        let y = bn.forward(&tensor(), &mut c).unwrap();
        assert_eq!(y.feats().row(0), &[3.0, -1.0]);
        assert_eq!(bn.param_count(), 4);
    }

    #[test]
    fn batchnorm_rejects_wrong_channels() {
        let mut c = ctx();
        let bn = BatchNorm::identity("bn", 5);
        assert!(matches!(
            bn.forward(&tensor(), &mut c),
            Err(CoreError::ChannelMismatch { expected: 5, actual: 2 })
        ));
    }

    #[test]
    fn global_pool_means_per_batch() {
        let mut c = ctx();
        let y = GlobalPool::new("gp").forward(&tensor(), &mut c).unwrap();
        assert_eq!(y.len(), 2); // two batches
        assert_eq!(y.feats().row(0), &[2.0, -3.0]); // mean of batch 0
        assert_eq!(y.feats().row(1), &[5.0, 6.0]); // single point of batch 1
    }

    #[test]
    fn global_pool_rejects_empty() {
        let mut c = ctx();
        let empty = SparseTensor::new(vec![], Matrix::zeros(0, 2)).unwrap();
        assert!(matches!(
            GlobalPool::new("gp").forward(&empty, &mut c),
            Err(CoreError::EmptyInput)
        ));
    }

    #[test]
    fn identity_bn_preserves_values_fp32() {
        let mut c = ctx();
        let bn = BatchNorm::identity("bn", 2);
        let y = bn.forward(&tensor(), &mut c).unwrap();
        assert_eq!(y.feats(), tensor().feats());
    }
}
