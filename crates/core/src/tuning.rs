//! Adaptive group search — Algorithm 5 of the paper (§4.2.3, Appendix B).
//!
//! For every convolution layer, the tuner grid-searches the redundancy
//! tolerance `epsilon` and the mm/bmm threshold `S` over a calibration set
//! of scenes (the paper uses ~100 training samples and <1000 configurations,
//! inference-only). The cost function is the simulated matmul latency of the
//! layer's grouped plan under the engine's device model — the exact
//! counterpart of the paper's wall-clock measurement loop.
//!
//! The search runs once per (model, dataset, device) triple; the selected
//! per-layer `(epsilon, S)` are stored in the engine context and picked up
//! by [`crate::SparseConv3d::forward`] on subsequent runs. Because the
//! grouping algorithm itself is input-adaptive, the same `(epsilon, S)`
//! yields different partitions for different scenes (§4.2.3).

use crate::config::{GroupingStrategy, Precision};
use crate::context::LayerWorkload;
use crate::engine::Engine;
use crate::grouping::plan_groups;
use crate::module::Module;
use crate::{CoreError, SparseTensor};
use std::collections::HashMap;
use torchsparse_gpusim::Precision as GemmPrecision;
use torchsparse_gpusim::{GemmModel, GemmShape, Micros};

/// The grid searched by [`tune_engine`] when none is supplied: 10 epsilon
/// values x 8 thresholds = 80 configurations per layer (the paper's space
/// is "usually < 1000").
pub fn default_search_space() -> (Vec<f64>, Vec<usize>) {
    let epsilons = vec![0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.0];
    let thresholds = vec![0, 10_000, 30_000, 60_000, 120_000, 250_000, 500_000, usize::MAX];
    (epsilons, thresholds)
}

/// Simulated matmul latency of one layer workload under a grouping strategy.
///
/// This is the tuner's cost function `f` (Algorithm 5): the sum of the
/// grouped GEMM latencies, padding included.
pub fn grouped_matmul_latency(
    workload: &LayerWorkload,
    strategy: GroupingStrategy,
    gemm: &GemmModel,
    precision: Precision,
) -> Micros {
    let gp = match precision {
        Precision::Fp32 => GemmPrecision::Fp32,
        _ => GemmPrecision::Fp16,
    };
    let plan = plan_groups(&workload.map_sizes, workload.submanifold, strategy);
    let mut total = Micros::ZERO;
    for g in &plan.groups {
        if g.use_bmm {
            total += gemm.latency(
                GemmShape::bmm(g.offsets.len(), g.padded_rows, workload.c_in, workload.c_out),
                gp,
            );
        } else {
            for &n in &g.offsets {
                let rows = workload.map_sizes[n];
                if rows > 0 {
                    total += gemm.latency(GemmShape::mm(rows, workload.c_in, workload.c_out), gp);
                }
            }
        }
    }
    total
}

/// Result of tuning one engine for one model on a calibration set.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Layer name -> selected `(epsilon, S)`.
    pub selected: HashMap<String, (f64, usize)>,
    /// Number of calibration scenes profiled.
    pub samples: usize,
    /// Number of `(epsilon, S)` configurations evaluated per layer.
    pub configs_searched: usize,
    /// Whether tuning failed and the engine was degraded to fixed grouping
    /// instead of installing per-layer parameters.
    pub degraded: bool,
}

/// Runs Algorithm 5: profiles the model on `samples`, grid-searches
/// `(epsilon, S)` per layer, and installs the winners into the engine's
/// context.
///
/// Tuning itself degrades gracefully: when a profiling run fails — or a
/// [`FaultSite::GroupTuning`](crate::FaultSite::GroupTuning) fault is
/// injected — the engine falls back to fixed grouping
/// ([`GroupingStrategy::Fixed`] semantics for adaptive layers), the
/// fallback is recorded in the context's degradation report, and the
/// returned report carries `degraded = true`. Inference keeps working
/// either way; only the grouping optimality is lost.
///
/// # Errors
///
/// None currently — profiling failures degrade instead of propagating.
pub fn tune_engine<M: Module + ?Sized>(
    engine: &mut Engine,
    model: &M,
    samples: &[SparseTensor],
    space: Option<(Vec<f64>, Vec<usize>)>,
) -> Result<TuningReport, CoreError> {
    let (epsilons, thresholds) = space.unwrap_or_else(default_search_space);
    let configs_searched = epsilons.len() * thresholds.len();

    // Profile: collect per-layer workloads across the calibration scenes.
    let mut per_layer: HashMap<String, Vec<LayerWorkload>> = HashMap::new();
    let mut failure: Option<String> = None;
    for sample in samples {
        engine.context_mut().record_workloads = true;
        engine.context_mut().workloads.clear();
        let run = engine.run(model, sample);
        engine.context_mut().record_workloads = false;
        if let Err(e) = run {
            failure = Some(e.to_string());
            break;
        }
        let workloads = std::mem::take(&mut engine.context_mut().workloads);
        for w in workloads {
            per_layer.entry(w.name.clone()).or_default().push(w);
        }
    }
    if engine.context_mut().faults.should_fail(crate::faults::FaultSite::GroupTuning) {
        failure = Some("injected tuning fault".to_owned());
    }
    if let Some(cause) = failure {
        let ctx = engine.context_mut();
        ctx.grouping_fallback = true;
        ctx.tuned_groups.clear();
        ctx.degradation.record(
            crate::faults::FaultSite::GroupTuning,
            &format!("tuning failed ({cause}); fixed grouping installed"),
        );
        return Ok(TuningReport {
            selected: HashMap::new(),
            samples: samples.len(),
            configs_searched,
            degraded: true,
        });
    }

    // Grid search per layer (Algorithm 5's double loop).
    let gemm = engine.context().gemm.clone();
    let precision = engine.context().config.precision;
    let mut selected = HashMap::new();
    for (layer, workloads) in &per_layer {
        let mut best: Option<(f64, usize, f64)> = None;
        for &epsilon in &epsilons {
            for &s in &thresholds {
                let strategy = GroupingStrategy::Adaptive { epsilon, s_threshold: s };
                let cost: f64 = workloads
                    .iter()
                    .map(|w| grouped_matmul_latency(w, strategy, &gemm, precision).as_f64())
                    .sum();
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((epsilon, s, cost));
                }
            }
        }
        if let Some((epsilon, s, _)) = best {
            selected.insert(layer.clone(), (epsilon, s));
        }
    }

    engine.context_mut().tuned_groups = selected.clone();
    Ok(TuningReport { selected, samples: samples.len(), configs_searched, degraded: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnginePreset;
    use crate::{Sequential, SparseConv3d};
    use torchsparse_coords::Coord;
    use torchsparse_gpusim::DeviceProfile;
    use torchsparse_tensor::Matrix;

    fn scene(seed: i32) -> SparseTensor {
        let coords: Vec<Coord> = (0..60)
            .map(|i| Coord::new(0, (i * 7 + seed) % 10, (i * 3) % 9, (i * 5 + seed) % 8))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = coords.len();
        SparseTensor::new(coords, Matrix::from_fn(n, 4, |r, c| ((r + c) % 3) as f32)).unwrap()
    }

    fn model() -> Sequential {
        Sequential::new("m")
            .push(SparseConv3d::with_random_weights("c1", 4, 8, 3, 1, 1))
            .push(SparseConv3d::with_random_weights("c2", 8, 4, 3, 1, 2))
    }

    #[test]
    fn tuner_selects_parameters_for_every_conv() {
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let samples = vec![scene(0), scene(1)];
        let report = tune_engine(&mut e, &model(), &samples, None).unwrap();
        assert!(report.selected.contains_key("c1"));
        assert!(report.selected.contains_key("c2"));
        assert_eq!(report.samples, 2);
        assert_eq!(report.configs_searched, 80);
        // Installed into the context.
        assert!(e.context().tuned_for("c1").is_some());
    }

    #[test]
    fn tuned_cost_never_worse_than_corners() {
        // The selected config must be at least as good as the degenerate
        // corners of the space (separate / symmetric / dense).
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let samples = vec![scene(3)];
        tune_engine(&mut e, &model(), &samples, None).unwrap();

        // Re-profile to get the workloads.
        e.context_mut().record_workloads = true;
        e.run(&model(), &samples[0]).unwrap();
        let workloads = std::mem::take(&mut e.context_mut().workloads);
        let gemm = e.context().gemm.clone();
        for w in &workloads {
            let (eps, s) = e.context().tuned_for(&w.name).unwrap();
            let tuned = grouped_matmul_latency(
                w,
                GroupingStrategy::Adaptive { epsilon: eps, s_threshold: s },
                &gemm,
                Precision::Fp16,
            );
            for corner in [
                GroupingStrategy::Adaptive { epsilon: 0.0, s_threshold: usize::MAX },
                GroupingStrategy::Adaptive { epsilon: 1.0, s_threshold: 0 },
                GroupingStrategy::Adaptive { epsilon: 1.0, s_threshold: usize::MAX },
            ] {
                let c = grouped_matmul_latency(w, corner, &gemm, Precision::Fp16);
                assert!(
                    tuned.as_f64() <= c.as_f64() + 1e-9,
                    "layer {} tuned {} worse than corner {:?} {}",
                    w.name,
                    tuned,
                    corner,
                    c
                );
            }
        }
    }

    #[test]
    fn injected_tuning_fault_degrades_to_fixed_grouping() {
        use crate::faults::FaultSite;
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        e.context_mut().faults.arm(FaultSite::GroupTuning);
        let report = tune_engine(&mut e, &model(), &[scene(0)], None).unwrap();
        assert!(report.degraded);
        assert!(report.selected.is_empty());
        assert!(e.context().grouping_fallback);
        assert!(e.degradation_report().count(FaultSite::GroupTuning) >= 1);
        // The engine still runs end-to-end with the fixed-grouping fallback.
        let out = e.run(&model(), &scene(1)).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn successful_tuning_is_not_degraded() {
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let report = tune_engine(&mut e, &model(), &[scene(0)], None).unwrap();
        assert!(!report.degraded);
        assert!(!e.context().grouping_fallback);
    }

    #[test]
    fn custom_search_space_respected() {
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let report =
            tune_engine(&mut e, &model(), &[scene(0)], Some((vec![0.5], vec![1000]))).unwrap();
        assert_eq!(report.configs_searched, 1);
        assert_eq!(report.selected["c1"], (0.5, 1000));
    }
}
