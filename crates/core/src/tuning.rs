//! Adaptive group search — Algorithm 5 of the paper (§4.2.3, Appendix B).
//!
//! For every convolution layer, the tuner grid-searches the redundancy
//! tolerance `epsilon` and the mm/bmm threshold `S` over a calibration set
//! of scenes (the paper uses ~100 training samples and <1000 configurations,
//! inference-only). The cost function is the simulated matmul latency of the
//! layer's grouped plan under the engine's device model — the exact
//! counterpart of the paper's wall-clock measurement loop.
//!
//! The search runs once per (model, dataset, device) triple; the selected
//! per-layer `(epsilon, S)` are stored in the engine context and picked up
//! by [`crate::SparseConv3d::forward`] on subsequent runs. Because the
//! grouping algorithm itself is input-adaptive, the same `(epsilon, S)`
//! yields different partitions for different scenes (§4.2.3).
//!
//! Beyond Algorithm 5's single grouping axis, this module also implements
//! the compile-time **per-layer policy search** ([`autotune_plan`]): a
//! product space of execution knobs ([`ExecPolicy`] — grouping, fused vs.
//! unfused movement, SIMD kernel, gather/scatter chunk width, GEMM panel
//! width) is pruned per traced layer with the `gpu-sim` cost models, the
//! short-listed candidates are timed on microbenches of the layer's actual
//! kernel map, and the winners are persisted in an on-disk database keyed
//! by a geometry-class fingerprint so later sessions warm-start with zero
//! measurements. Every selectable policy is bitwise-neutral: the search
//! changes speed, never output bits.

use crate::config::{GroupingStrategy, OptimizationConfig, Precision, SimdPolicy};
use crate::context::{Context, LayerWorkload};
use crate::dataflow::{run_gather_matmul_scatter, ConvWorkload, FusedOrder};
use crate::engine::Engine;
use crate::grouping::plan_groups;
use crate::module::Module;
use crate::plan::{ConvDataflow, ConvPlan, ExecutionPlan, LayerOp, StepPlan};
use crate::{CoreError, SparseConv3d, SparseTensor};
use std::collections::HashMap;
use std::sync::Arc;
use torchsparse_gpusim::Precision as GemmPrecision;
use torchsparse_gpusim::{GemmModel, GemmShape, MemorySim, Micros};
use torchsparse_tensor::Matrix;

/// The grid searched by [`tune_engine`] when none is supplied: 10 epsilon
/// values x 8 thresholds = 80 configurations per layer (the paper's space
/// is "usually < 1000").
pub fn default_search_space() -> (Vec<f64>, Vec<usize>) {
    let epsilons = vec![0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.0];
    let thresholds = vec![0, 10_000, 30_000, 60_000, 120_000, 250_000, 500_000, usize::MAX];
    (epsilons, thresholds)
}

/// Simulated matmul latency of one layer workload under a grouping strategy.
///
/// This is the tuner's cost function `f` (Algorithm 5): the sum of the
/// grouped GEMM latencies, padding included.
pub fn grouped_matmul_latency(
    workload: &LayerWorkload,
    strategy: GroupingStrategy,
    gemm: &GemmModel,
    precision: Precision,
) -> Micros {
    let gp = match precision {
        Precision::Fp32 => GemmPrecision::Fp32,
        _ => GemmPrecision::Fp16,
    };
    let plan = plan_groups(&workload.map_sizes, workload.submanifold, strategy);
    let mut total = Micros::ZERO;
    for g in &plan.groups {
        if g.use_bmm {
            total += gemm.latency(
                GemmShape::bmm(g.offsets.len(), g.padded_rows, workload.c_in, workload.c_out),
                gp,
            );
        } else {
            for &n in &g.offsets {
                let rows = workload.map_sizes[n];
                if rows > 0 {
                    total += gemm.latency(GemmShape::mm(rows, workload.c_in, workload.c_out), gp);
                }
            }
        }
    }
    total
}

/// Result of tuning one engine for one model on a calibration set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuningReport {
    /// Layer name -> selected `(epsilon, S)`.
    pub selected: HashMap<String, (f64, usize)>,
    /// Number of calibration scenes profiled.
    pub samples: usize,
    /// Number of `(epsilon, S)` configurations evaluated per layer.
    pub configs_searched: usize,
    /// Whether tuning failed and the engine was degraded to fixed grouping
    /// instead of installing per-layer parameters — or, for the policy
    /// search, whether the on-disk tuning database was unreadable and a
    /// fresh search ran instead of a warm start.
    pub degraded: bool,
    /// Layer name -> selected execution policy (policy search only; empty
    /// for Algorithm 5 grouping-only tuning).
    pub policies: HashMap<String, ExecPolicy>,
    /// Wall-clock candidate measurements the policy search performed. A
    /// fully warm-started session reports zero.
    pub candidates_measured: usize,
    /// Layers whose policy came straight from the tuning database with no
    /// search.
    pub warm_started: usize,
}

/// Runs Algorithm 5: profiles the model on `samples`, grid-searches
/// `(epsilon, S)` per layer, and installs the winners into the engine's
/// context.
///
/// Tuning itself degrades gracefully: when a profiling run fails — or a
/// [`FaultSite::GroupTuning`](crate::FaultSite::GroupTuning) fault is
/// injected — the engine falls back to fixed grouping
/// ([`GroupingStrategy::Fixed`] semantics for adaptive layers), the
/// fallback is recorded in the context's degradation report, and the
/// returned report carries `degraded = true`. Inference keeps working
/// either way; only the grouping optimality is lost.
///
/// # Errors
///
/// None currently — profiling failures degrade instead of propagating.
pub fn tune_engine<M: Module + ?Sized>(
    engine: &mut Engine,
    model: &M,
    samples: &[SparseTensor],
    space: Option<(Vec<f64>, Vec<usize>)>,
) -> Result<TuningReport, CoreError> {
    let (epsilons, thresholds) = space.unwrap_or_else(default_search_space);
    let configs_searched = epsilons.len() * thresholds.len();

    // Profile: collect per-layer workloads across the calibration scenes.
    let mut per_layer: HashMap<String, Vec<LayerWorkload>> = HashMap::new();
    let mut failure: Option<String> = None;
    for sample in samples {
        engine.context_mut().record_workloads = true;
        engine.context_mut().workloads.clear();
        let run = engine.run(model, sample);
        engine.context_mut().record_workloads = false;
        if let Err(e) = run {
            failure = Some(e.to_string());
            break;
        }
        let workloads = std::mem::take(&mut engine.context_mut().workloads);
        for w in workloads {
            per_layer.entry(w.name.clone()).or_default().push(w);
        }
    }
    if engine.context_mut().faults.should_fail(crate::faults::FaultSite::GroupTuning) {
        failure = Some("injected tuning fault".to_owned());
    }
    if let Some(cause) = failure {
        let ctx = engine.context_mut();
        ctx.grouping_fallback = true;
        ctx.tuned_groups.clear();
        ctx.degradation.record(
            crate::faults::FaultSite::GroupTuning,
            &format!("tuning failed ({cause}); fixed grouping installed"),
        );
        return Ok(TuningReport {
            selected: HashMap::new(),
            samples: samples.len(),
            configs_searched,
            degraded: true,
            policies: HashMap::new(),
            candidates_measured: 0,
            warm_started: 0,
        });
    }

    // Grid search per layer (Algorithm 5's double loop).
    let gemm = engine.context().gemm.clone();
    let precision = engine.context().config.precision;
    let mut selected = HashMap::new();
    for (layer, workloads) in &per_layer {
        let mut best: Option<(f64, usize, f64)> = None;
        for &epsilon in &epsilons {
            for &s in &thresholds {
                let strategy = GroupingStrategy::Adaptive { epsilon, s_threshold: s };
                let cost: f64 = workloads
                    .iter()
                    .map(|w| grouped_matmul_latency(w, strategy, &gemm, precision).as_f64())
                    .sum();
                if best.is_none_or(|(_, _, c)| cost < c) {
                    best = Some((epsilon, s, cost));
                }
            }
        }
        if let Some((epsilon, s, _)) = best {
            selected.insert(layer.clone(), (epsilon, s));
        }
    }

    engine.context_mut().tuned_groups = selected.clone();
    Ok(TuningReport {
        selected,
        samples: samples.len(),
        configs_searched,
        degraded: false,
        policies: HashMap::new(),
        candidates_measured: 0,
        warm_started: 0,
    })
}

// ---------------------------------------------------------------------------
// Per-layer execution-policy search (compile-time autotuning)
// ---------------------------------------------------------------------------

/// A complete per-layer execution policy: every performance knob the engine
/// can vary without changing output bits.
///
/// The compile-time policy search ([`autotune_plan`]) selects one per traced
/// convolution and threads it through [`ConvPlan`] so `execute` consults the
/// plan instead of the global [`OptimizationConfig`]. **Every selectable
/// policy is bitwise-neutral**: grouping only re-batches per-offset GEMMs
/// whose scatter accumulation is order-independent, the fused and unfused
/// executors are bit-identical, all SIMD kernels keep the scalar
/// accumulation order, and chunk/panel widths only re-partition work along
/// row boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPolicy {
    /// Matmul grouping strategy (including tuned adaptive `(epsilon, S)`).
    pub grouping: GroupingStrategy,
    /// Fused gather–GEMM–scatter route vs. materialized buffers.
    pub fused: bool,
    /// Compute-kernel selection for GEMM and precision sweeps.
    pub simd: SimdPolicy,
    /// Output rows per gather/scatter chunk (locality-order granularity).
    pub chunk_rows: usize,
    /// Row-panel width of the GEMM microkernel dispatch.
    pub panel_rows: usize,
}

impl ExecPolicy {
    /// The policy an untuned engine effectively runs: every knob at the
    /// configuration's value and the fixed default chunk/panel widths.
    pub fn from_config(config: &OptimizationConfig) -> ExecPolicy {
        ExecPolicy {
            grouping: config.grouping,
            fused: config.fused_execution,
            simd: config.simd,
            chunk_rows: DEFAULT_WIDTH,
            panel_rows: DEFAULT_WIDTH,
        }
    }
}

/// The untuned gather/scatter chunk and GEMM panel width (matches the
/// executor's `MOVE_CHUNK` and the GEMM dispatcher's `PANEL`).
const DEFAULT_WIDTH: usize = 64;
/// Chunk/panel widths the search may select.
const WIDTHS: [usize; 4] = [32, 64, 128, 256];
/// Layers whose kernel map has fewer total entries than this are selected
/// by the cost-model prior alone — their microbenches would time noise, and
/// skipping them keeps small-scene compiles measurement-free (and keeps the
/// tuning database free of unmeasured winners).
const MEASURE_FLOOR: usize = 20_000;
/// Wall-clock repetitions per short-listed candidate (minimum taken).
const MEASURE_REPS: usize = 2;

/// Returns the grouping strategies worth short-listing for one layer: the
/// config-resolved default plus (for adaptive configs) the simulated-cost
/// winner of the Algorithm 5 grid — but only when it strictly beats the
/// default's simulated cost. Constraining candidates to `sim cost <= default`
/// keeps a compiled session's simulated latency no worse than the dynamic
/// engine's, which serving latency accounting relies on.
fn grouping_candidates(
    map_sizes: &[usize],
    submanifold: bool,
    c_in: usize,
    c_out: usize,
    ctx: &Context,
) -> Vec<GroupingStrategy> {
    let adaptive_config = matches!(ctx.config.grouping, GroupingStrategy::Adaptive { .. });
    let default = if ctx.grouping_fallback && adaptive_config {
        GroupingStrategy::Fixed
    } else {
        ctx.config.grouping
    };
    let mut out = vec![default];
    if let GroupingStrategy::Adaptive { .. } = default {
        let w = LayerWorkload {
            name: String::new(),
            map_sizes: map_sizes.to_vec(),
            c_in,
            c_out,
            submanifold,
        };
        let baseline =
            grouped_matmul_latency(&w, default, &ctx.gemm, ctx.config.precision).as_f64();
        let (epsilons, thresholds) = default_search_space();
        let mut best: Option<(GroupingStrategy, f64)> = None;
        for &epsilon in &epsilons {
            for &s in &thresholds {
                let strat = GroupingStrategy::Adaptive { epsilon, s_threshold: s };
                let cost =
                    grouped_matmul_latency(&w, strat, &ctx.gemm, ctx.config.precision).as_f64();
                if cost < baseline && best.is_none_or(|(_, c)| cost < c) {
                    best = Some((strat, cost));
                }
            }
        }
        if let Some((s, _)) = best {
            out.push(s);
        }
    }
    out
}

/// Short-lists chunk/panel widths by the partitioned-streaming prior: the
/// default width plus the width minimizing
/// [`GemmModel::partitioned_latency`] over `bytes` of traffic split into
/// `rows / width` tasks.
fn width_candidates(bytes: f64, rows: usize, gemm: &GemmModel) -> Vec<usize> {
    let mut out = vec![DEFAULT_WIDTH];
    let mut best: Option<(usize, f64)> = None;
    for &w in &WIDTHS {
        let cost = gemm.partitioned_latency(bytes, rows.div_ceil(w)).as_f64();
        if best.is_none_or(|(_, c)| cost < c) {
            best = Some((w, cost));
        }
    }
    if let Some((w, _)) = best {
        if !out.contains(&w) {
            out.push(w);
        }
    }
    out
}

/// Bytes per feature element in storage precision.
fn elem_bytes(precision: Precision) -> f64 {
    match precision {
        Precision::Fp32 => 4.0,
        Precision::Fp16 => 2.0,
        Precision::Int8 => 1.0,
    }
}

/// The geometry-class fingerprint a tuning-database entry is keyed by.
///
/// Coarse on purpose: voxel count is binned to powers of two and map
/// density to deciles, so near-identical geometries (successive LiDAR
/// frames, re-voxelized scenes) share one entry, while channel shape,
/// kernel volume, submanifold-ness, precision, the fused-execution config,
/// and the device *family* stay exact — a winner does not transfer across
/// those. Keying by architecture family rather than board name lets a
/// replica on an RTX 3080 warm-start from policies tuned on an RTX 3090.
#[allow(clippy::too_many_arguments)] // the key's components, nothing more
fn policy_key(
    n_out: usize,
    total_entries: usize,
    volume: usize,
    c_in: usize,
    c_out: usize,
    submanifold: bool,
    config: &OptimizationConfig,
    device_family: &str,
) -> String {
    let voxel_bin = n_out.max(1).ilog2();
    let density = total_entries as f64 / (volume.max(1) as f64 * n_out.max(1) as f64);
    let decile = ((density * 10.0).floor() as i64).clamp(0, 9);
    let precision = match config.precision {
        Precision::Fp32 => "fp32",
        Precision::Fp16 => "fp16",
        Precision::Int8 => "int8",
    };
    let device: String =
        device_family.chars().map(|c| if c.is_whitespace() { '-' } else { c }).collect();
    format!(
        "v{voxel_bin}:d{decile}:c{c_in}x{c_out}:k{}:sm{}:{precision}:fe{}:{device}",
        volume.max(1),
        u8::from(submanifold),
        u8::from(config.fused_execution),
    )
}

/// Clamps a warm-start database entry to what the current configuration
/// allows: the SIMD choice is pinned to the config's (the search never
/// un-pins an explicit kernel), fused execution cannot be enabled against a
/// config that disabled it, widths must come from the selectable set, and
/// adaptive grouping parameters must be valid. Returns `None` when the
/// entry cannot be made consistent — the layer then searches fresh.
fn sanitize_policy(mut p: ExecPolicy, config: &OptimizationConfig) -> Option<ExecPolicy> {
    p.simd = config.simd;
    if !config.fused_execution {
        p.fused = false;
    }
    if !WIDTHS.contains(&p.chunk_rows) || !WIDTHS.contains(&p.panel_rows) {
        return None;
    }
    match (p.grouping, config.grouping) {
        (GroupingStrategy::Adaptive { epsilon, .. }, GroupingStrategy::Adaptive { .. }) => {
            if !epsilon.is_finite() || !(0.0..=1.0).contains(&epsilon) {
                return None;
            }
        }
        // A non-adaptive config pins grouping entirely.
        (
            _,
            pinned @ (GroupingStrategy::Separate
            | GroupingStrategy::Symmetric
            | GroupingStrategy::Fixed),
        ) => p.grouping = pinned,
        // Adaptive config but a non-adaptive stored winner: keep it (the
        // search space includes the config default only, so this entry came
        // from a fixed-grouping fallback session); it is still valid.
        (_, GroupingStrategy::Adaptive { .. }) => {}
    }
    Some(p)
}

/// Times one candidate policy on the layer's actual kernel map with
/// deterministic synthetic features: `MEASURE_REPS` runs of the real
/// gather–GEMM–scatter executor, minimum wall-clock taken. The context's
/// simulated state (timeline, memory simulator) is snapshotted and restored
/// so microbenches never leak into the session's accounting.
fn measure_candidate(
    conv: &SparseConv3d,
    p: &ConvPlan,
    feats: &Matrix,
    group: &crate::grouping::GroupPlan,
    fused: &FusedOrder,
    cand: ExecPolicy,
    ctx: &mut Context,
) -> f64 {
    let saved_timeline = ctx.timeline.clone();
    let mut best = f64::INFINITY;
    for _ in 0..MEASURE_REPS {
        let w = ConvWorkload {
            in_feats: feats,
            weights: conv.weights(),
            packed: Some(&p.packed),
            map: p.map(),
            n_out: p.out_coords().len(),
            center_identity: p.center,
            fused: Some(fused),
            policy: Some(cand),
        };
        let start = std::time::Instant::now();
        if run_gather_matmul_scatter(&w, group, ctx).is_ok() {
            best = best.min(start.elapsed().as_secs_f64());
        }
    }
    ctx.timeline = saved_timeline;
    ctx.mem = MemorySim::new(&ctx.device);
    best
}

/// Searches the policy product space for one planned convolution.
///
/// Pipeline: (1) the `gpu-sim` priors short-list each axis — grouping by
/// simulated grouped-GEMM latency, chunk/panel widths by the partitioned
/// streaming model — with the fused route kept binary; (2) layers above
/// [`MEASURE_FLOOR`] map entries time the (deduplicated) cartesian
/// short-list on real microbenches and keep the fastest, persisting the
/// winner to the database; (3) smaller layers take the prior-best
/// deterministically with zero measurements. A database hit skips all of it.
#[allow(clippy::too_many_arguments)] // compile-time driver threading disjoint counters
fn tune_layer(
    conv: &SparseConv3d,
    p: &ConvPlan,
    db: &mut HashMap<String, ExecPolicy>,
    ctx: &mut Context,
    candidates_measured: &mut usize,
    warm_started: &mut usize,
    db_dirty: &mut bool,
) -> ExecPolicy {
    let map_sizes = p.map().sizes();
    let total_entries: usize = map_sizes.iter().sum();
    let n_out = p.out_coords().len();
    let default = ExecPolicy::from_config(&ctx.config);
    let measurable = total_entries >= MEASURE_FLOOR && !ctx.simulate_only;
    let key = policy_key(
        n_out,
        total_entries,
        map_sizes.len(),
        conv.c_in(),
        conv.c_out(),
        p.submanifold,
        &ctx.config,
        &ctx.device.family(),
    );
    if measurable {
        if let Some(hit) = db.get(&key).copied().and_then(|e| sanitize_policy(e, &ctx.config)) {
            *warm_started += 1;
            return hit;
        }
    }

    let groupings = grouping_candidates(&map_sizes, p.submanifold, conv.c_in(), conv.c_out(), ctx);
    let prior_best =
        ExecPolicy { grouping: *groupings.last().unwrap_or(&default.grouping), ..default };
    if !measurable {
        return prior_best;
    }

    let move_bytes = total_entries as f64
        * (conv.c_in() + conv.c_out()) as f64
        * elem_bytes(ctx.config.precision);
    let chunks = width_candidates(move_bytes, n_out, &ctx.gemm);
    let panels = width_candidates(move_bytes, total_entries, &ctx.gemm);
    let fused_routes: &[bool] = if ctx.config.fused_execution { &[true, false] } else { &[false] };

    // Deduplicated cartesian short-list, exact default first so wall-clock
    // ties keep the untuned behavior.
    let mut shortlist = vec![default];
    for &g in &groupings {
        for &fused in fused_routes {
            for &chunk_rows in &chunks {
                for &panel_rows in &panels {
                    let cand = ExecPolicy {
                        grouping: g,
                        fused,
                        simd: ctx.config.simd,
                        chunk_rows,
                        panel_rows,
                    };
                    if !shortlist.contains(&cand) {
                        shortlist.push(cand);
                    }
                }
            }
        }
    }

    // Deterministic synthetic features sized to the layer's real input.
    let n_in =
        if p.flipped.is_some() { p.cached.coarse_coords.len() } else { p.cached.fine_coords.len() };
    let feats =
        Matrix::from_fn(n_in, conv.c_in(), |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.6);

    let mut winner = prior_best;
    let mut winner_time = f64::INFINITY;
    for cand in shortlist {
        let group = match &p.dataflow {
            ConvDataflow::Grouped(g) if cand.grouping == default.grouping => g.clone(),
            _ => plan_groups(&map_sizes, p.submanifold, cand.grouping),
        };
        let fused_order = if cand.chunk_rows == p.fused.chunk_rows() {
            Arc::clone(&p.fused)
        } else {
            Arc::new(FusedOrder::build_on_chunked(
                &ctx.runtime.pool(),
                p.map(),
                n_out,
                cand.chunk_rows,
            ))
        };
        let t = measure_candidate(conv, p, &feats, &group, &fused_order, cand, ctx);
        *candidates_measured += 1;
        if t < winner_time {
            winner_time = t;
            winner = cand;
        }
    }
    if winner_time.is_finite() {
        db.insert(key, winner);
        *db_dirty = true;
    }
    winner
}

/// Runs the compile-time per-layer policy search over a freshly built
/// [`ExecutionPlan`], mutating each convolution's [`ConvPlan`] in place
/// (re-grouped dataflow, re-chunked locality order, attached policy) and
/// installing the selections in the context so re-plans and new streams
/// reuse them.
///
/// Winners measured on real microbenches are persisted to the tuning
/// database resolved by [`crate::config::tune_db_path`]; a database that
/// exists but cannot be parsed (corrupt, stale version) degrades gracefully
/// — one warning, `degraded = true` in the report, a recorded degradation
/// event, and a fresh search whose results overwrite the bad file.
pub(crate) fn autotune_plan(
    ops: &[LayerOp<'_>],
    plan: &mut ExecutionPlan,
    ctx: &mut Context,
) -> TuningReport {
    let db_path = crate::config::tune_db_path(&ctx.config);
    let mut db: HashMap<String, ExecPolicy> = HashMap::new();
    let mut degraded = false;
    if let Some(path) = &db_path {
        match db::load(path) {
            Ok(entries) => db = entries,
            Err(cause) => {
                degraded = true;
                torchsparse_runtime::warn_env_once(
                    "TORCHSPARSE_TUNE_DB",
                    &format!(
                        "tuning database {} is unreadable ({cause}); \
                         running a fresh policy search and overwriting it",
                        path.display()
                    ),
                );
                ctx.degradation.record(
                    crate::faults::FaultSite::GroupTuning,
                    &format!("tuning DB unreadable ({cause}); fresh policy search"),
                );
            }
        }
    }

    let mut policies: HashMap<String, ExecPolicy> = HashMap::new();
    let mut selected: HashMap<String, (f64, usize)> = HashMap::new();
    let mut candidates_measured = 0usize;
    let mut warm_started = 0usize;
    let mut db_dirty = false;

    for (op, step) in ops.iter().zip(plan.steps.iter_mut()) {
        let (conv, p) = match (op, step) {
            (LayerOp::Conv(c), StepPlan::Conv(p)) => (*c, p),
            (
                LayerOp::ResidualAdd { projection: Some(c) },
                StepPlan::Residual { projection: Some(p) },
            ) => (*c, p),
            _ => continue,
        };
        if matches!(p.dataflow, ConvDataflow::FetchOnDemand) {
            // Fetch-on-demand layers have no grouping/movement axes to tune.
            continue;
        }
        let winner = tune_layer(
            conv,
            p,
            &mut db,
            ctx,
            &mut candidates_measured,
            &mut warm_started,
            &mut db_dirty,
        );

        // Apply the winner to the frozen plan: re-group and re-chunk only
        // when the selection differs from what the plan was built with.
        let regroup = match &p.dataflow {
            ConvDataflow::Grouped(_) if winner.grouping != ctx.config.grouping => {
                Some(plan_groups(&p.map().sizes(), p.submanifold, winner.grouping))
            }
            _ => None,
        };
        let rechunk = if winner.chunk_rows != p.fused.chunk_rows() {
            Some(Arc::new(FusedOrder::build_on_chunked(
                &ctx.runtime.pool(),
                p.map(),
                p.out_coords().len(),
                winner.chunk_rows,
            )))
        } else {
            None
        };
        if let Some(g) = regroup {
            p.dataflow = ConvDataflow::Grouped(g);
        }
        if let Some(f) = rechunk {
            p.fused = f;
        }
        p.policy = Some(winner);
        if let GroupingStrategy::Adaptive { epsilon, s_threshold } = winner.grouping {
            selected.insert(conv.layer_name().to_owned(), (epsilon, s_threshold));
        }
        policies.insert(conv.layer_name().to_owned(), winner);
    }

    if db_dirty {
        if let Some(path) = &db_path {
            if let Err(cause) = db::store(path, &db) {
                torchsparse_runtime::warn_env_once(
                    "TORCHSPARSE_TUNE_DB",
                    &format!(
                        "could not persist tuning database {} ({cause}); \
                         this session keeps its tuned policies in memory",
                        path.display()
                    ),
                );
            }
        }
    }

    // Candidates actually timed plus one prior-only evaluation per layer
    // that skipped measurement.
    let configs_searched = candidates_measured + policies.len().saturating_sub(warm_started);
    ctx.tuned_policies = policies.clone();
    TuningReport {
        selected,
        samples: 1,
        configs_searched,
        degraded,
        policies,
        candidates_measured,
        warm_started,
    }
}

/// The on-disk tuning database: versioned JSON, hand-rolled (the workspace
/// takes no serialization dependency), written atomically via a temp file +
/// rename in the same directory.
///
/// Schema (`version` 2, which added the architecture-family device
/// component of the key — version-1 databases are treated as stale and
/// rebuilt):
///
/// ```json
/// {"version":2,"entries":[
///   {"key":"v15:d2:c32x64:k27:sm1:fp16:fe1:turing",
///    "mode":"adaptive","epsilon":0.3,"s":150000,
///    "fused":true,"simd":"auto","chunk":64,"panel":128}
/// ]}
/// ```
///
/// `s` is the adaptive mm/bmm threshold; the sentinel `usize::MAX` is
/// written as the string `"max"` (it is not representable as a JSON
/// number). Non-adaptive modes carry `epsilon`/`s` as `0` and ignore them
/// on load.
mod db {
    use super::ExecPolicy;
    use crate::config::{GroupingStrategy, SimdPolicy};
    use std::collections::HashMap;
    use std::path::Path;

    /// Database schema version; mismatches are treated as corrupt.
    const VERSION: f64 = 2.0;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub(super) enum Json {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Json>),
        /// An object, insertion-ordered.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        fn as_bool(&self) -> Option<bool> {
            match self {
                Json::Bool(b) => Some(*b),
                _ => None,
            }
        }

        fn as_width(&self) -> Option<usize> {
            match self {
                Json::Num(n) if *n >= 1.0 && n.fract() == 0.0 && *n <= 1e9 => Some(*n as usize),
                _ => None,
            }
        }
    }

    /// Recursive-descent parser over the full JSON grammar (minus
    /// `\uXXXX` surrogate pairs, which the writer never emits).
    pub(super) fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while let Some(b) = bytes.get(*pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                *pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if bytes.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        lit: &[u8],
        value: Json,
    ) -> Result<Json, String> {
        if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        while let Some(b) = bytes.get(*pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                *pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos])
            .map_err(|_| format!("invalid number bytes at {start}"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(bytes, pos, b'"')?;
        let mut out = Vec::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    *pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".to_owned());
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0c),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("unsupported \\u escape {hex:?}"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", *pos)),
                    }
                    *pos += 1;
                }
                Some(&b) => {
                    out.push(b);
                    *pos += 1;
                }
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(bytes, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            skip_ws(bytes, pos);
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            expect(bytes, pos, b':')?;
            let value = parse_value(bytes, pos)?;
            fields.push((key, value));
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn escape(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }

    fn policy_from_json(entry: &Json) -> Option<ExecPolicy> {
        let grouping = match entry.get("mode")?.as_str()? {
            "separate" => GroupingStrategy::Separate,
            "symmetric" => GroupingStrategy::Symmetric,
            "fixed" => GroupingStrategy::Fixed,
            "adaptive" => {
                let epsilon = entry.get("epsilon")?.as_f64()?;
                let s_threshold = match entry.get("s")? {
                    Json::Str(s) if s == "max" => usize::MAX,
                    n => n.as_width()?,
                };
                GroupingStrategy::Adaptive { epsilon, s_threshold }
            }
            _ => return None,
        };
        let simd = match entry.get("simd")?.as_str()? {
            "auto" => SimdPolicy::Auto,
            "portable" => SimdPolicy::Portable,
            "scalar" => SimdPolicy::Scalar,
            _ => return None,
        };
        Some(ExecPolicy {
            grouping,
            fused: entry.get("fused")?.as_bool()?,
            simd,
            chunk_rows: entry.get("chunk")?.as_width()?,
            panel_rows: entry.get("panel")?.as_width()?,
        })
    }

    fn policy_to_json(key: &str, p: &ExecPolicy, out: &mut String) {
        out.push_str("{\"key\":\"");
        escape(key, out);
        out.push_str("\",");
        let (mode, epsilon, s) = match p.grouping {
            GroupingStrategy::Separate => ("separate", 0.0, Some(0)),
            GroupingStrategy::Symmetric => ("symmetric", 0.0, Some(0)),
            GroupingStrategy::Fixed => ("fixed", 0.0, Some(0)),
            GroupingStrategy::Adaptive { epsilon, s_threshold } => {
                ("adaptive", epsilon, (s_threshold != usize::MAX).then_some(s_threshold))
            }
        };
        out.push_str(&format!("\"mode\":\"{mode}\",\"epsilon\":{epsilon},"));
        match s {
            Some(v) => out.push_str(&format!("\"s\":{v},")),
            None => out.push_str("\"s\":\"max\","),
        }
        let simd = match p.simd {
            SimdPolicy::Auto => "auto",
            SimdPolicy::Portable => "portable",
            SimdPolicy::Scalar => "scalar",
        };
        out.push_str(&format!(
            "\"fused\":{},\"simd\":\"{simd}\",\"chunk\":{},\"panel\":{}}}",
            p.fused, p.chunk_rows, p.panel_rows
        ));
    }

    /// Loads the database. A missing file is an empty database; anything
    /// else that fails (unreadable, unparseable, wrong version, malformed
    /// entries) is an error for the caller to degrade on.
    pub(super) fn load(path: &Path) -> Result<HashMap<String, ExecPolicy>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashMap::new()),
            Err(e) => return Err(format!("read failed: {e}")),
        };
        let root = parse(&text)?;
        let version = root.get("version").and_then(Json::as_f64).ok_or("missing version")?;
        if version != VERSION {
            return Err(format!("schema version {version} (expected {VERSION})"));
        }
        let entries = match root.get("entries") {
            Some(Json::Arr(a)) => a,
            _ => return Err("missing entries array".to_owned()),
        };
        let mut out = HashMap::new();
        for entry in entries {
            let key =
                entry.get("key").and_then(Json::as_str).ok_or("entry without key")?.to_owned();
            let policy =
                policy_from_json(entry).ok_or_else(|| format!("malformed entry {key:?}"))?;
            out.insert(key, policy);
        }
        Ok(out)
    }

    /// Stores the database atomically: serialized to a temp file in the
    /// target directory, then renamed over the destination.
    pub(super) fn store(path: &Path, entries: &HashMap<String, ExecPolicy>) -> Result<(), String> {
        let mut text = String::from("{\"version\":2,\"entries\":[");
        // Deterministic file contents: entries sorted by key.
        let mut keys: Vec<&String> = entries.keys().collect();
        keys.sort();
        for (i, key) in keys.iter().enumerate() {
            if i > 0 {
                text.push(',');
            }
            if let Some(p) = entries.get(*key) {
                policy_to_json(key, p, &mut text);
            }
        }
        text.push_str("]}\n");
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("mkdir failed: {e}"))?;
            }
        }
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        std::fs::write(&tmp, text).map_err(|e| format!("write failed: {e}"))?;
        std::fs::rename(&tmp, path).map_err(|e| format!("rename failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnginePreset;
    use crate::{Sequential, SparseConv3d};
    use torchsparse_coords::Coord;
    use torchsparse_gpusim::DeviceProfile;
    use torchsparse_tensor::Matrix;

    fn scene(seed: i32) -> SparseTensor {
        let coords: Vec<Coord> = (0..60)
            .map(|i| Coord::new(0, (i * 7 + seed) % 10, (i * 3) % 9, (i * 5 + seed) % 8))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let n = coords.len();
        SparseTensor::new(coords, Matrix::from_fn(n, 4, |r, c| ((r + c) % 3) as f32)).unwrap()
    }

    fn model() -> Sequential {
        Sequential::new("m")
            .push(SparseConv3d::with_random_weights("c1", 4, 8, 3, 1, 1))
            .push(SparseConv3d::with_random_weights("c2", 8, 4, 3, 1, 2))
    }

    #[test]
    fn tuner_selects_parameters_for_every_conv() {
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let samples = vec![scene(0), scene(1)];
        let report = tune_engine(&mut e, &model(), &samples, None).unwrap();
        assert!(report.selected.contains_key("c1"));
        assert!(report.selected.contains_key("c2"));
        assert_eq!(report.samples, 2);
        assert_eq!(report.configs_searched, 80);
        // Installed into the context.
        assert!(e.context().tuned_for("c1").is_some());
    }

    #[test]
    fn tuned_cost_never_worse_than_corners() {
        // The selected config must be at least as good as the degenerate
        // corners of the space (separate / symmetric / dense).
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let samples = vec![scene(3)];
        tune_engine(&mut e, &model(), &samples, None).unwrap();

        // Re-profile to get the workloads.
        e.context_mut().record_workloads = true;
        e.run(&model(), &samples[0]).unwrap();
        let workloads = std::mem::take(&mut e.context_mut().workloads);
        let gemm = e.context().gemm.clone();
        for w in &workloads {
            let (eps, s) = e.context().tuned_for(&w.name).unwrap();
            let tuned = grouped_matmul_latency(
                w,
                GroupingStrategy::Adaptive { epsilon: eps, s_threshold: s },
                &gemm,
                Precision::Fp16,
            );
            for corner in [
                GroupingStrategy::Adaptive { epsilon: 0.0, s_threshold: usize::MAX },
                GroupingStrategy::Adaptive { epsilon: 1.0, s_threshold: 0 },
                GroupingStrategy::Adaptive { epsilon: 1.0, s_threshold: usize::MAX },
            ] {
                let c = grouped_matmul_latency(w, corner, &gemm, Precision::Fp16);
                assert!(
                    tuned.as_f64() <= c.as_f64() + 1e-9,
                    "layer {} tuned {} worse than corner {:?} {}",
                    w.name,
                    tuned,
                    corner,
                    c
                );
            }
        }
    }

    #[test]
    fn injected_tuning_fault_degrades_to_fixed_grouping() {
        use crate::faults::FaultSite;
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        e.context_mut().faults.arm(FaultSite::GroupTuning);
        let report = tune_engine(&mut e, &model(), &[scene(0)], None).unwrap();
        assert!(report.degraded);
        assert!(report.selected.is_empty());
        assert!(e.context().grouping_fallback);
        assert!(e.degradation_report().count(FaultSite::GroupTuning) >= 1);
        // The engine still runs end-to-end with the fixed-grouping fallback.
        let out = e.run(&model(), &scene(1)).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn successful_tuning_is_not_degraded() {
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let report = tune_engine(&mut e, &model(), &[scene(0)], None).unwrap();
        assert!(!report.degraded);
        assert!(!e.context().grouping_fallback);
    }

    #[test]
    fn custom_search_space_respected() {
        let mut e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let report =
            tune_engine(&mut e, &model(), &[scene(0)], Some((vec![0.5], vec![1000]))).unwrap();
        assert_eq!(report.configs_searched, 1);
        assert_eq!(report.selected["c1"], (0.5, 1000));
    }

    fn temp_db(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ts-tune-test-{}-{name}.json", std::process::id()))
    }

    #[test]
    fn db_roundtrip_preserves_policies() {
        let path = temp_db("roundtrip");
        let mut entries = HashMap::new();
        entries.insert(
            "v12:d3:c32x64:k27:sm1:fp16:fe1:RTX-2080-Ti".to_owned(),
            ExecPolicy {
                grouping: GroupingStrategy::Adaptive { epsilon: 0.3, s_threshold: 150_000 },
                fused: true,
                simd: SimdPolicy::Auto,
                chunk_rows: 64,
                panel_rows: 128,
            },
        );
        // The usize::MAX threshold sentinel round-trips as the string "max".
        entries.insert(
            "v9:d1:c4x8:k27:sm0:fp32:fe0:cpu".to_owned(),
            ExecPolicy {
                grouping: GroupingStrategy::Adaptive { epsilon: 1.0, s_threshold: usize::MAX },
                fused: false,
                simd: SimdPolicy::Scalar,
                chunk_rows: 32,
                panel_rows: 256,
            },
        );
        entries.insert(
            "v15:d0:c8x8:k1:sm1:int8:fe1:gpu \"quoted\\name\"".to_owned(),
            ExecPolicy {
                grouping: GroupingStrategy::Fixed,
                fused: true,
                simd: SimdPolicy::Portable,
                chunk_rows: 128,
                panel_rows: 64,
            },
        );
        db::store(&path, &entries).unwrap();
        let loaded = db::load(&path).unwrap();
        assert_eq!(loaded, entries);
        // Deterministic contents: a second store writes identical bytes.
        let first = std::fs::read_to_string(&path).unwrap();
        db::store(&path, &entries).unwrap();
        assert_eq!(first, std::fs::read_to_string(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_db_is_an_empty_db() {
        let loaded = db::load(&temp_db("never-written")).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn corrupt_db_fails_to_load() {
        for (name, text) in [
            ("garbage", "not json at all"),
            ("truncated", "{\"version\":2,\"entries\":[{\"key\":\"x\""),
            ("no-version", "{\"entries\":[]}"),
            ("no-entries", "{\"version\":2}"),
            ("bad-entry", "{\"version\":2,\"entries\":[{\"key\":\"x\",\"mode\":\"warp\"}]}"),
            ("trailing", "{\"version\":2,\"entries\":[]} extra"),
        ] {
            let path = temp_db(name);
            std::fs::write(&path, text).unwrap();
            assert!(db::load(&path).is_err(), "{name} must fail to load");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn stale_db_version_fails_to_load() {
        let path = temp_db("stale");
        std::fs::write(&path, "{\"version\":1,\"entries\":[]}").unwrap();
        let err = db::load(&path).unwrap_err();
        assert!(err.contains("version"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sanitize_pins_policy_to_config() {
        let config = EnginePreset::TorchSparse.config();
        let stored = ExecPolicy {
            grouping: GroupingStrategy::Adaptive { epsilon: 0.5, s_threshold: 1000 },
            fused: true,
            simd: SimdPolicy::Scalar,
            chunk_rows: 128,
            panel_rows: 64,
        };
        let got = sanitize_policy(stored, &config).unwrap();
        assert_eq!(got.simd, config.simd, "SIMD is pinned to the config");
        assert_eq!(got.chunk_rows, 128);

        // Fused cannot be enabled against a config that disabled it.
        let unfused = OptimizationConfig { fused_execution: false, ..config.clone() };
        assert!(!sanitize_policy(stored, &unfused).unwrap().fused);

        // A non-adaptive config pins grouping entirely.
        let separate =
            OptimizationConfig { grouping: GroupingStrategy::Separate, ..config.clone() };
        assert_eq!(
            sanitize_policy(stored, &separate).unwrap().grouping,
            GroupingStrategy::Separate
        );

        // Widths outside the selectable set and invalid epsilons reject the
        // entry (the layer then searches fresh).
        assert!(sanitize_policy(ExecPolicy { chunk_rows: 77, ..stored }, &config).is_none());
        assert!(sanitize_policy(ExecPolicy { panel_rows: 0, ..stored }, &config).is_none());
        let bad_eps = ExecPolicy {
            grouping: GroupingStrategy::Adaptive { epsilon: f64::NAN, s_threshold: 0 },
            ..stored
        };
        assert!(sanitize_policy(bad_eps, &config).is_none());
    }

    #[test]
    fn policy_key_bins_coarsely_and_splits_exactly() {
        let config = EnginePreset::TorchSparse.config();
        let key = |n_out: usize, entries: usize, c_in: usize| {
            policy_key(n_out, entries, 27, c_in, 64, true, &config, "RTX 2080 Ti")
        };
        // Voxel counts in the same power-of-two bin share a key...
        assert_eq!(key(5000, 40_000, 32), key(7000, 40_000, 32));
        // ...different bins, channel shapes, or devices split it.
        assert_ne!(key(5000, 40_000, 32), key(20_000, 40_000, 32));
        assert_ne!(key(5000, 40_000, 32), key(5000, 40_000, 16));
        assert_ne!(
            policy_key(5000, 40_000, 27, 32, 64, true, &config, "a"),
            policy_key(5000, 40_000, 27, 32, 64, true, &config, "b"),
        );
        // Spaces in device names never reach the key.
        assert!(!key(5000, 40_000, 32).contains(' '));
    }

    #[test]
    fn width_candidates_lead_with_the_default() {
        let gemm = GemmModel::new(DeviceProfile::rtx_2080ti());
        for bytes in [1e3, 1e6, 1e9] {
            for rows in [100, 10_000, 1_000_000] {
                let c = width_candidates(bytes, rows, &gemm);
                assert_eq!(c[0], DEFAULT_WIDTH);
                assert!(c.len() <= 2, "default plus at most one prior winner");
                assert!(c.iter().all(|w| WIDTHS.contains(w)), "{c:?}");
            }
        }
    }

    #[test]
    fn grouping_candidates_never_beat_the_default_prior() {
        // Whatever the search short-lists, the sim-cost of every candidate
        // is <= the config default's: compiled sessions must never look
        // slower than dynamic execution to the simulator.
        let e = Engine::new(EnginePreset::TorchSparse, DeviceProfile::rtx_2080ti());
        let ctx = e.context();
        let map_sizes: Vec<usize> = (0..27).map(|i| 2000 + i * 300).collect();
        let cands = grouping_candidates(&map_sizes, true, 32, 64, ctx);
        assert_eq!(cands[0], ctx.config.grouping);
        let w = LayerWorkload {
            name: String::new(),
            map_sizes: map_sizes.clone(),
            c_in: 32,
            c_out: 64,
            submanifold: true,
        };
        let baseline =
            grouped_matmul_latency(&w, cands[0], &ctx.gemm, ctx.config.precision).as_f64();
        for &c in &cands[1..] {
            let cost = grouped_matmul_latency(&w, c, &ctx.gemm, ctx.config.precision).as_f64();
            assert!(cost <= baseline, "{c:?} costs {cost} > default {baseline}");
        }
    }
}
