use crate::CoreError;
use torchsparse_coords::Coord;
use torchsparse_tensor::Matrix;

/// A sparse 3D tensor: a set of voxel coordinates with one feature vector
/// each, plus the *tensor stride* tracking how much the spatial resolution
/// has been coarsened by strided convolutions.
///
/// This is the engine's counterpart of `torchsparse.SparseTensor` — note
/// that, as the paper emphasizes (§4.1), users do not have to carry
/// `indice_key`s or coordinate managers: map caching is handled internally
/// by the [`crate::Context`].
///
/// # Example
///
/// ```
/// use torchsparse_core::SparseTensor;
/// use torchsparse_coords::Coord;
/// use torchsparse_tensor::Matrix;
///
/// # fn main() -> Result<(), torchsparse_core::CoreError> {
/// let coords = vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)];
/// let feats = Matrix::from_fn(2, 4, |r, c| (r + c) as f32);
/// let x = SparseTensor::new(coords, feats)?;
/// assert_eq!(x.len(), 2);
/// assert_eq!(x.channels(), 4);
/// assert_eq!(x.stride(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensor {
    coords: Vec<Coord>,
    feats: Matrix,
    stride: i32,
}

impl SparseTensor {
    /// Creates a sparse tensor at stride 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if `coords.len()` differs from
    /// the number of feature rows.
    pub fn new(coords: Vec<Coord>, feats: Matrix) -> Result<SparseTensor, CoreError> {
        Self::with_stride(coords, feats, 1)
    }

    /// Creates a sparse tensor at an explicit tensor stride.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] on a coordinate/feature length
    /// disagreement and [`CoreError::Coords`] on a non-positive stride.
    pub fn with_stride(
        coords: Vec<Coord>,
        feats: Matrix,
        stride: i32,
    ) -> Result<SparseTensor, CoreError> {
        if coords.len() != feats.rows() {
            return Err(CoreError::LengthMismatch { coords: coords.len(), feats: feats.rows() });
        }
        if stride < 1 {
            return Err(CoreError::Coords(torchsparse_coords::CoordsError::ZeroStride));
        }
        Ok(SparseTensor { coords, feats, stride })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the tensor has no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Feature channels per point.
    pub fn channels(&self) -> usize {
        self.feats.cols()
    }

    /// The coordinates.
    pub fn coords(&self) -> &[Coord] {
        &self.coords
    }

    /// The feature matrix (`len x channels`).
    pub fn feats(&self) -> &Matrix {
        &self.feats
    }

    /// Mutable feature access (used by in-place pointwise layers).
    pub fn feats_mut(&mut self) -> &mut Matrix {
        &mut self.feats
    }

    /// The tensor stride.
    pub fn stride(&self) -> i32 {
        self.stride
    }

    /// Replaces the features, keeping coordinates and stride.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if the row count changes.
    pub fn with_feats(&self, feats: Matrix) -> Result<SparseTensor, CoreError> {
        if feats.rows() != self.coords.len() {
            return Err(CoreError::LengthMismatch {
                coords: self.coords.len(),
                feats: feats.rows(),
            });
        }
        Ok(SparseTensor { coords: self.coords.clone(), feats, stride: self.stride })
    }

    /// Checks that all coordinates are unique (an engine invariant).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Coords`] carrying the first duplicate found.
    pub fn validate_unique(&self) -> Result<(), CoreError> {
        let mut sorted = self.coords.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(CoreError::Coords(
                    torchsparse_coords::CoordsError::DuplicateCoordinate(w[0]),
                ));
            }
        }
        Ok(())
    }

    /// Concatenates the feature channels of two tensors defined on the
    /// *same* coordinate list (the UNet skip connection).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::LengthMismatch`] if the coordinate lists differ.
    pub fn cat_features(&self, other: &SparseTensor) -> Result<SparseTensor, CoreError> {
        if self.coords != other.coords {
            return Err(CoreError::LengthMismatch {
                coords: self.coords.len(),
                feats: other.coords.len(),
            });
        }
        let c1 = self.channels();
        let c2 = other.channels();
        let feats = Matrix::from_fn(self.len(), c1 + c2, |r, c| {
            if c < c1 {
                self.feats[(r, c)]
            } else {
                other.feats[(r, c - c1)]
            }
        });
        Ok(SparseTensor { coords: self.coords.clone(), feats, stride: self.stride })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor2() -> SparseTensor {
        SparseTensor::new(
            vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 2, 3)],
            Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32),
        )
        .unwrap()
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = SparseTensor::new(vec![Coord::new(0, 0, 0, 0)], Matrix::zeros(2, 3)).unwrap_err();
        assert_eq!(err, CoreError::LengthMismatch { coords: 1, feats: 2 });
    }

    #[test]
    fn bad_stride_rejected() {
        assert!(SparseTensor::with_stride(vec![], Matrix::zeros(0, 1), 0).is_err());
        assert!(SparseTensor::with_stride(vec![], Matrix::zeros(0, 1), -2).is_err());
    }

    #[test]
    fn accessors() {
        let t = tensor2();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.channels(), 3);
        assert_eq!(t.stride(), 1);
        assert_eq!(t.coords()[1], Coord::new(0, 1, 2, 3));
    }

    #[test]
    fn with_feats_checks_rows() {
        let t = tensor2();
        assert!(t.with_feats(Matrix::zeros(2, 8)).is_ok());
        assert!(t.with_feats(Matrix::zeros(3, 8)).is_err());
    }

    #[test]
    fn validate_unique_detects_duplicates() {
        let t = tensor2();
        assert!(t.validate_unique().is_ok());
        let dup = SparseTensor::new(
            vec![Coord::new(0, 1, 1, 1), Coord::new(0, 1, 1, 1)],
            Matrix::zeros(2, 1),
        )
        .unwrap();
        assert!(dup.validate_unique().is_err());
    }

    #[test]
    fn cat_features_concatenates_channels() {
        let a = tensor2();
        let b = a.with_feats(Matrix::filled(2, 2, 9.0)).unwrap();
        let c = a.cat_features(&b).unwrap();
        assert_eq!(c.channels(), 5);
        assert_eq!(c.feats()[(1, 0)], 3.0);
        assert_eq!(c.feats()[(1, 4)], 9.0);
    }

    #[test]
    fn cat_features_requires_same_coords() {
        let a = tensor2();
        let b = SparseTensor::new(vec![Coord::new(0, 9, 9, 9); 2], Matrix::zeros(2, 1));
        // b has duplicate coords but that's irrelevant: the coord lists differ.
        assert!(a.cat_features(&b.unwrap()).is_err());
    }
}
