//! Sparse spatial pooling.
//!
//! `torchsparse.nn` ships kernel-based max pooling alongside convolution;
//! detection heads and classification backbones use it to coarsen feature
//! maps without weights. Pooling reuses the exact mapping machinery of
//! convolution (output coordinate calculation + kernel map search + map
//! caching) and performs a per-channel max-reduction instead of GEMM.

use crate::config::Precision;
use crate::context::{CachedMap, Context, MapKey};
use crate::mapping::build_layer_mapping;
use crate::module::Module;
use crate::plan::{LayerOp, PoolPlan, Tracer};
use crate::{CoreError, SparseTensor};
use torchsparse_coords::Coord;
use torchsparse_gpusim::{AccessMode, ElemWidth, Stage};
use torchsparse_tensor::Matrix;

/// Reduction applied over a pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolReduction {
    /// Per-channel maximum.
    Max,
    /// Per-channel mean over the contributing inputs.
    Mean,
}

/// Kernel-based sparse pooling (max or mean).
///
/// For every output site, reduces over the input sites its kernel window
/// covers. With `stride == 1` the output keeps the input's coordinates
/// (submanifold pooling); with `stride > 1` the output coordinates follow
/// Algorithm 3, exactly like a strided convolution.
///
/// # Example
///
/// ```
/// use torchsparse_core::SparseMaxPool3d;
///
/// let pool = SparseMaxPool3d::new("pool1", 2, 2);
/// assert_eq!(pool.kernel_size(), 2);
/// assert_eq!(pool.stride(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMaxPool3d {
    name: String,
    kernel_size: usize,
    stride: i32,
    reduction: PoolReduction,
}

impl SparseMaxPool3d {
    /// Creates a max pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_size == 0` or `stride < 1` (configuration bugs).
    pub fn new(name: impl Into<String>, kernel_size: usize, stride: i32) -> SparseMaxPool3d {
        assert!(kernel_size > 0, "kernel size must be positive");
        assert!(stride >= 1, "stride must be at least 1");
        SparseMaxPool3d { name: name.into(), kernel_size, stride, reduction: PoolReduction::Max }
    }

    /// Creates an average pooling layer with the same window semantics.
    ///
    /// # Panics
    ///
    /// Panics if `kernel_size == 0` or `stride < 1`.
    pub fn mean(name: impl Into<String>, kernel_size: usize, stride: i32) -> SparseMaxPool3d {
        let mut p = Self::new(name, kernel_size, stride);
        p.reduction = PoolReduction::Mean;
        p
    }

    /// Kernel size.
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Stride.
    pub fn stride(&self) -> i32 {
        self.stride
    }

    /// The reduction this layer applies.
    pub fn reduction(&self) -> PoolReduction {
        self.reduction
    }

    /// The plan half: acquires the kernel map (shared with convolution —
    /// pooling and convolution with the same (stride, kernel) share one
    /// map, as in real engines) and freezes the output geometry.
    pub(crate) fn plan(
        &self,
        coords: &[Coord],
        in_stride: i32,
        ctx: &mut Context,
    ) -> Result<PoolPlan, CoreError> {
        if coords.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        let key = MapKey {
            fine_stride: in_stride,
            kernel_size: self.kernel_size,
            conv_stride: self.stride,
            dilation: 1,
        };
        let cached = match ctx.cached_map(key) {
            Some(hit) => hit,
            None => {
                let mapping = build_layer_mapping(
                    coords,
                    self.kernel_size,
                    self.stride,
                    &ctx.config,
                    &ctx.device,
                )?;
                ctx.timeline.add(Stage::Mapping, mapping.latency);
                ctx.store_map(
                    key,
                    CachedMap {
                        map: mapping.map,
                        fine_coords: coords.to_vec(),
                        coarse_coords: mapping.out_coords,
                        index: crate::mapping::compact_cached_index(
                            mapping.index,
                            coords,
                            &ctx.config,
                        ),
                    },
                )
            }
        };
        let use_fine = self.stride == 1;
        let out_stride = if use_fine { in_stride } else { in_stride * self.stride };
        Ok(PoolPlan { cached, use_fine, out_stride })
    }

    /// The execute half: per-channel reduction over the frozen map, plus
    /// the simulated memory cost. Never builds maps.
    pub(crate) fn execute_planned(
        &self,
        input: &SparseTensor,
        plan: &PoolPlan,
        ctx: &mut Context,
    ) -> Result<SparseTensor, CoreError> {
        if input.is_empty() {
            return Err(CoreError::EmptyInput);
        }
        ctx.charge_host_op();
        let cached = &plan.cached;
        let out_coords = plan.out_coords();
        let out_stride = plan.out_stride;

        let c = input.channels();
        let init = match self.reduction {
            PoolReduction::Max => f32::NEG_INFINITY,
            PoolReduction::Mean => 0.0,
        };
        let mut out = Matrix::filled(out_coords.len(), c, init);
        let mut counts = vec![0u32; out_coords.len()];
        if !ctx.simulate_only {
            for n in 0..cached.map.num_offsets() {
                for e in cached.map.entries(n) {
                    counts[e.output as usize] += 1;
                    let src = input.feats().row(e.input as usize);
                    let dst = out.row_mut(e.output as usize);
                    match self.reduction {
                        PoolReduction::Max => {
                            for (d, &s) in dst.iter_mut().zip(src) {
                                if s > *d {
                                    *d = s;
                                }
                            }
                        }
                        PoolReduction::Mean => {
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += s;
                            }
                        }
                    }
                }
            }
            for (i, &n) in counts.iter().enumerate() {
                if n == 0 {
                    // Outputs with no contributing input (Algorithm 3
                    // precludes this) stay zero.
                    out.row_mut(i).fill(0.0);
                } else if self.reduction == PoolReduction::Mean {
                    let inv = 1.0 / n as f32;
                    for v in out.row_mut(i) {
                        *v *= inv;
                    }
                }
            }
        } else {
            out = Matrix::zeros(out_coords.len(), c);
        }

        // Cost: one read per map entry, one write per output row.
        let elem = match ctx.config.precision {
            Precision::Fp32 => ElemWidth::F32,
            _ => ElemWidth::F16,
        };
        let width = if ctx.config.vectorized { (4 / elem.bytes()).max(1) } else { 1 };
        let mode = AccessMode { elem, vector_width: width };
        let row_bytes = c as u64 * elem.bytes();
        let in_base = ctx.mem.alloc(input.len() as u64 * row_bytes);
        let out_base = ctx.mem.alloc(out_coords.len() as u64 * row_bytes);
        for n in 0..cached.map.num_offsets() {
            for e in cached.map.entries(n) {
                ctx.mem.read(in_base, e.input as u64 * row_bytes, row_bytes, mode);
            }
        }
        for k in 0..out_coords.len() {
            ctx.mem.write(out_base, k as u64 * row_bytes, row_bytes, mode);
        }
        let report = ctx.mem.take_report();
        ctx.timeline.add(Stage::Other, report.latency(&ctx.device));

        SparseTensor::with_stride(out_coords.to_vec(), out, out_stride)
    }
}

impl Module for SparseMaxPool3d {
    fn forward(&self, input: &SparseTensor, ctx: &mut Context) -> Result<SparseTensor, CoreError> {
        let plan = self.plan(input.coords(), input.stride(), ctx)?;
        self.execute_planned(input, &plan, ctx)
    }

    fn trace<'m>(&'m self, tracer: &mut Tracer<'m>) -> Result<(), CoreError> {
        tracer.push(LayerOp::Pool(self));
        Ok(())
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationConfig;
    use torchsparse_coords::Coord;
    use torchsparse_gpusim::DeviceProfile;

    fn ctx() -> Context {
        Context::new(OptimizationConfig::torchsparse(), DeviceProfile::rtx_2080ti())
    }

    fn line_tensor() -> SparseTensor {
        let coords: Vec<Coord> = (0..6).map(|i| Coord::new(0, i, 0, 0)).collect();
        let feats = Matrix::from_fn(6, 2, |r, c| (r as f32) * if c == 0 { 1.0 } else { -1.0 });
        SparseTensor::new(coords, feats).unwrap()
    }

    #[test]
    fn submanifold_max_pool_takes_neighborhood_max() {
        let pool = SparseMaxPool3d::new("p", 3, 1);
        let mut c = ctx();
        let y = pool.forward(&line_tensor(), &mut c).unwrap();
        assert_eq!(y.coords(), line_tensor().coords());
        // Point x=2 sees x in {1,2,3}: channel0 max = 3, channel1 max = -1.
        assert_eq!(y.feats().row(2), &[3.0, -1.0]);
        // Endpoint x=5 sees {4,5}: max 5 / -4.
        assert_eq!(y.feats().row(5), &[5.0, -4.0]);
    }

    #[test]
    fn strided_pool_downsamples() {
        let pool = SparseMaxPool3d::new("p", 2, 2);
        let mut c = ctx();
        let y = pool.forward(&line_tensor(), &mut c).unwrap();
        assert_eq!(y.len(), 3);
        assert_eq!(y.stride(), 2);
        // Output site 0 covers inputs {0, 1}: max 1.0 on channel 0.
        assert_eq!(y.feats()[(0, 0)], 1.0);
    }

    #[test]
    fn pool_shares_map_with_conv() {
        use crate::SparseConv3d;
        let conv = SparseConv3d::with_random_weights("c", 2, 2, 3, 1, 1);
        let pool = SparseMaxPool3d::new("p", 3, 1);
        let mut c = ctx();
        let x = line_tensor();
        conv.forward(&x, &mut c).unwrap();
        let mapping_after_conv = c.timeline.stage(Stage::Mapping);
        pool.forward(&x, &mut c).unwrap();
        assert_eq!(
            c.timeline.stage(Stage::Mapping),
            mapping_after_conv,
            "pool must reuse the conv's cached map"
        );
    }

    #[test]
    fn pool_rejects_empty() {
        let pool = SparseMaxPool3d::new("p", 2, 2);
        let empty = SparseTensor::new(vec![], Matrix::zeros(0, 2)).unwrap();
        assert!(matches!(pool.forward(&empty, &mut ctx()), Err(CoreError::EmptyInput)));
    }

    #[test]
    #[should_panic(expected = "stride must be at least 1")]
    fn pool_rejects_zero_stride() {
        SparseMaxPool3d::new("p", 2, 0);
    }

    #[test]
    fn mean_pool_averages_window() {
        let pool = SparseMaxPool3d::mean("p", 3, 1);
        assert_eq!(pool.reduction(), PoolReduction::Mean);
        let mut c = ctx();
        let y = pool.forward(&line_tensor(), &mut c).unwrap();
        // Point x=2 sees x in {1,2,3}: mean of 1,2,3 = 2 on channel 0.
        assert_eq!(y.feats().row(2), &[2.0, -2.0]);
        // Endpoint x=0 sees {0,1}: mean 0.5 / -0.5.
        assert_eq!(y.feats().row(0), &[0.5, -0.5]);
    }

    #[test]
    fn mean_pool_matches_max_on_constant_field() {
        let x = line_tensor().with_feats(Matrix::filled(6, 2, 4.0)).unwrap();
        let mut c1 = ctx();
        let mut c2 = ctx();
        let a = SparseMaxPool3d::new("m", 3, 1).forward(&x, &mut c1).unwrap();
        let b = SparseMaxPool3d::mean("a", 3, 1).forward(&x, &mut c2).unwrap();
        assert_eq!(a.feats(), b.feats());
    }

    #[test]
    fn simulate_only_keeps_shape_and_cost() {
        let pool = SparseMaxPool3d::new("p", 2, 2);
        let mut full = ctx();
        let mut dry = ctx();
        dry.simulate_only = true;
        let x = line_tensor();
        let a = pool.forward(&x, &mut full).unwrap();
        let b = pool.forward(&x, &mut dry).unwrap();
        assert_eq!(a.coords(), b.coords());
        assert_eq!(full.timeline.total(), dry.timeline.total());
    }
}
