//! Engine configuration: the paper's full optimization space, plus presets
//! reproducing the systems it is evaluated against.

use crate::validate::ValidationConfig;

/// Feature storage precision (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit features — every baseline's starting point.
    Fp32,
    /// 16-bit features with FP32 accumulation — TorchSparse's choice.
    Fp16,
    /// 8-bit features; scatter still runs at 16 bits because the multi-way
    /// reduction needs more than 8 bits and CUDA requires aligned access —
    /// the paper's reason INT8 gives diminishing returns.
    Int8,
}

/// Matrix multiplication grouping strategy (§4.2, Figure 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroupingStrategy {
    /// One `mm` per kernel offset (Figure 6b) — MinkowskiEngine/SpConv.
    Separate,
    /// Batch each symmetric offset pair (`batch = 2`, Figure 6/§4.2.1);
    /// only applies to odd-kernel stride-1 layers, otherwise falls back to
    /// separate.
    Symmetric,
    /// Three fixed groups (§4.2.2): first half, center, second half, padded
    /// to the group maximum.
    Fixed,
    /// The paper's adaptive grouping (§4.2.3, Algorithms 4-5) with redundancy
    /// tolerance `epsilon` and mm/bmm workload threshold `s_threshold`.
    Adaptive {
        /// Tolerance of redundant computation in `[0, 1]`.
        epsilon: f64,
        /// Groups whose max workload is below this run as `bmm`, others as
        /// `mm` (`S` in the paper).
        s_threshold: usize,
    },
}

impl GroupingStrategy {
    /// The paper's default adaptive configuration before per-layer tuning.
    pub fn default_adaptive() -> GroupingStrategy {
        GroupingStrategy::Adaptive { epsilon: 0.3, s_threshold: 150_000 }
    }
}

/// Compute-kernel (SIMD) selection policy for GEMM, gather/scatter, and
/// precision-conversion sweeps.
///
/// All three choices produce **bitwise identical** results: the SIMD
/// kernels vectorize along the output-channel dimension, so every output
/// element keeps the scalar kernel's k-major mul-then-add accumulation
/// order. The policy exists for benchmarking (pin the scalar baseline) and
/// for exercising the portable fallback on hosts where AVX2 would always
/// be detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimdPolicy {
    /// Use the process-wide selection: AVX2 when detected (overridable via
    /// the `TORCHSPARSE_SIMD` environment variable), else the portable
    /// fixed-width-array kernel.
    #[default]
    Auto,
    /// Force the portable fallback kernel.
    Portable,
    /// Force the pre-vectorization scalar loop (benchmark baseline).
    Scalar,
}

/// Map search data structure choice (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapSearchStrategy {
    /// Conventional open-addressing hashmap (MinkowskiEngine-style).
    Hashmap,
    /// Collision-free dense grid (SpConv-style); falls back to the hashmap
    /// when the scene bounding box exceeds the cell budget.
    Grid,
    /// Choose per layer: grid when affordable, else hashmap — TorchSparse's
    /// auto-selected strategy.
    Auto,
}

/// Frozen-plan coordinate index choice: the data structure compiled plans
/// query (and retain) for coordinate → row lookups.
///
/// Dynamic map search keeps using the adaptive grid/hashmap machinery of
/// [`MapSearchStrategy`]; this knob governs what a *frozen* plan stores.
/// Compiled sessions default to the succinct MPHF index
/// ([`torchsparse_coords::MphfIndex`]): the coordinate set never changes
/// after plan time, so a minimal perfect hash over it answers the same
/// queries in a fraction of the memory. Every choice returns identical
/// lookup results, so engine outputs are bitwise unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoordIndexChoice {
    /// Follow the context: dynamic runs keep the [`MapSearchStrategy`]
    /// behavior, compiled sessions resolve to [`CoordIndexChoice::Mphf`].
    #[default]
    Auto,
    /// Always the open-addressing hashmap (legacy plan representation).
    Hashmap,
    /// Always the collision-free grid (falls back to the hashmap when the
    /// bounding box exceeds `grid_cell_limit`, as dynamic search does).
    Grid,
    /// Always the BBHash-style minimal-perfect-hash index.
    Mphf,
}

/// The full optimization configuration of one engine instance.
///
/// Every toggle corresponds to a paper section; the ablation tables flip
/// them one at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationConfig {
    /// Feature storage precision (§4.3.1).
    pub precision: Precision,
    /// Vectorized (`half2`) memory access for FP16 (§4.3.1, Figure 8b).
    pub vectorized: bool,
    /// Fuse all gathers before matmul and all scatters after (§4.3.2).
    pub fused_gather_scatter: bool,
    /// Input-stationary gather / output-stationary scatter order (§4.3.2,
    /// Figure 9b).
    pub locality_aware: bool,
    /// Matmul grouping strategy (§4.2).
    pub grouping: GroupingStrategy,
    /// Map search table (§4.4).
    pub map_search: MapSearchStrategy,
    /// Fuse the four output-coordinate kernels of downsampling (§4.4,
    /// Figure 10).
    pub fused_downsample: bool,
    /// Simplified control logic + full loop unrolling in mapping kernels
    /// (§4.4).
    pub simplified_mapping_kernels: bool,
    /// Exploit the symmetry of submanifold maps during search (§4.4).
    pub symmetric_map_search: bool,
    /// Use the fetch-on-demand dataflow when the layer's average map size is
    /// below this bound (MinkowskiEngine's small-workload path, §5.2);
    /// `None` always uses gather-matmul-scatter.
    pub fetch_on_demand_below: Option<usize>,
    /// Maximum grid-table cells before falling back to the hashmap.
    pub grid_cell_limit: u64,
    /// Compute the center-offset workload of submanifold layers directly
    /// from the input features, skipping its gather/scatter entirely
    /// (§4.2.1: "the kernel offset (0,0,0) ... does not require any explicit
    /// data movement").
    pub skip_center_movement: bool,
    /// Input validation applied by [`Engine::run`](crate::Engine::run)
    /// before any layer executes. All presets default to
    /// [`ValidationPolicy::Trust`](crate::ValidationPolicy::Trust) so
    /// benchmarks measure only kernel cost; deployments facing untrusted
    /// inputs switch to `Reject` or `Sanitize`.
    pub validation: ValidationConfig,
    /// Host-side worker threads for the execution runtime (map search,
    /// gather/scatter partitions, GEMM panels). `None` shares the
    /// process-wide pool, sized by the `TORCHSPARSE_THREADS` environment
    /// variable or the machine's available parallelism; `Some(1)`
    /// reproduces the exact serial engine (results are bitwise identical
    /// at every thread count regardless).
    pub threads: Option<usize>,
    /// SIMD compute-kernel policy. Every choice is bitwise identical; see
    /// [`SimdPolicy`].
    pub simd: SimdPolicy,
    /// Allow fused multiply-add in the GEMM microkernel. FMA contracts the
    /// multiply and add into one rounding step, which **changes results**
    /// (no longer bitwise identical to the scalar kernel — typically a few
    /// ULPs tighter), so it is opt-in and off in every preset.
    pub fma_gemm: bool,
    /// Execute real CPU convolutions through the fused
    /// gather–GEMM–scatter path: kernel-map rows stream straight through
    /// the microkernel without materializing gathered-feature or
    /// partial-sum buffers. Bitwise identical to the unfused path at any
    /// thread count, so it defaults on in every preset; the
    /// `TORCHSPARSE_FUSED` environment variable (`off`/`on`) overrides
    /// this field process-wide for A/B measurement. Only affects real
    /// numerics — the GPU cost simulator always models the movement
    /// pipeline selected by `fused_gather_scatter`.
    pub fused_execution: bool,
    /// Accumulate the scatter reduction through exact, order-independent
    /// fixed-point superaccumulators (`torchsparse_tensor::accum`) instead
    /// of order-pinned serial `f32` addition. Every output element becomes
    /// the correctly rounded sum of its partial products — bitwise
    /// reproducible across thread counts, chunk partitionings, and the
    /// fused/unfused routes — which lets the scatter run as parallel pool
    /// tasks instead of a serial walk. Defaults on in every preset; the
    /// `TORCHSPARSE_EXACT_ACCUM` environment variable (`off`/`on`)
    /// overrides it process-wide, with `off` restoring the historical
    /// serial-order bits for A/B comparison.
    pub exact_accumulation: bool,
    /// Coordinate index stored inside frozen plans (see
    /// [`CoordIndexChoice`]). `Auto` keeps dynamic runs on the adaptive
    /// [`MapSearchStrategy`] path and gives compiled sessions the succinct
    /// MPHF index; the `TORCHSPARSE_COORD_INDEX` environment variable
    /// (`hashmap`/`grid`/`mphf`) overrides the field process-wide for A/B
    /// measurement. Lookup results — and therefore engine outputs — are
    /// bitwise identical across all choices.
    pub coord_index: CoordIndexChoice,
    /// Run the per-layer execution-policy search at
    /// [`Engine::compile`](crate::Engine::compile) time: each traced conv
    /// layer gets an [`ExecPolicy`](crate::tuning::ExecPolicy) (grouping
    /// ε/S, fused route, SIMD kernel, gather/scatter chunk rows, GEMM panel
    /// rows) chosen by a cost-model prune followed by wall-clock microbench
    /// refinement on the layer's actual kernel map. Every candidate policy
    /// is bitwise-neutral, so this only changes speed; the
    /// `TORCHSPARSE_AUTOTUNE` environment variable (`off`/`on`) overrides
    /// the field process-wide. Defaults on in every preset.
    pub autotune_policies: bool,
    /// Location of the persistent tuning database (versioned JSON, written
    /// atomically) that lets later sessions and serving replicas warm-start
    /// the policy search with zero measurements. `None` resolves to
    /// `$TORCHSPARSE_TUNE_DB`, else `$XDG_CACHE_HOME/torchsparse/` (or
    /// `$HOME/.cache/torchsparse/`); when no location resolves, tuning
    /// still runs but winners are not persisted.
    pub tune_db: Option<std::path::PathBuf>,
    /// Patch a compiled session's frozen plan incrementally when a frame's
    /// geometry differs only slightly from the planned one, instead of
    /// discarding the plan and paying a full mapping rebuild. The patched
    /// plan is bitwise identical to a from-scratch plan (the delta walk
    /// bails to a full re-plan whenever it cannot guarantee that), so this
    /// only changes planning cost; the `TORCHSPARSE_DELTA_REPLAN`
    /// environment variable (`off`/`on`) overrides the field process-wide
    /// for A/B measurement. Defaults on in every preset.
    pub delta_replan: bool,
    /// Churn-ratio ceiling for delta re-planning: when
    /// `(inserted + removed) / max(|old|, |new|)` at the input level
    /// exceeds this fraction, the patch path falls back to a full re-plan
    /// (past ~15% churn, patching loses to rebuilding). Must lie in
    /// `[0, 1]`.
    pub delta_replan_max_churn: f64,
}

/// Resolves the effective fused-execution switch: `TORCHSPARSE_FUSED`
/// (`off`/`0`/`false` forces the unfused buffers, `on`/`1`/`true` forces
/// fusion) wins over `config.fused_execution`. The variable is read once
/// per process; a set-but-unrecognized value emits a one-time warning and
/// defers to the configuration instead of being silently ignored.
pub fn fused_enabled(config: &OptimizationConfig) -> bool {
    fused_override().unwrap_or(config.fused_execution)
}

/// The process-wide `TORCHSPARSE_FUSED` override, if a valid value is set.
/// Policy-aware callers (the dataflow executors) consult this directly so
/// the env override outranks a plan's tuned
/// [`ExecPolicy`](crate::tuning::ExecPolicy), which in turn outranks
/// `config.fused_execution`.
pub(crate) fn fused_override() -> Option<bool> {
    static OVERRIDE: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let raw = std::env::var("TORCHSPARSE_FUSED").ok()?;
        match parse_fused_override(&raw) {
            Ok(forced) => Some(forced),
            Err(warning) => {
                torchsparse_runtime::warn_env_once("TORCHSPARSE_FUSED", &warning);
                None
            }
        }
    })
}

/// Strictly parses a `TORCHSPARSE_FUSED` value; factored out of
/// [`fused_enabled`] so the policy is testable without touching process
/// state. Unrecognized values return the warning message to emit.
fn parse_fused_override(raw: &str) -> Result<bool, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" => Ok(false),
        "on" | "1" | "true" => Ok(true),
        _ => Err(format!(
            "TORCHSPARSE_FUSED={raw:?} is not one of on/off/1/0/true/false; \
             falling back to the engine configuration's fused_execution flag"
        )),
    }
}

/// Resolves the effective exact-accumulation switch: `TORCHSPARSE_EXACT_ACCUM`
/// (`off`/`0`/`false` restores the historical serial-order scatter,
/// `on`/`1`/`true` forces exact accumulation) wins over
/// `config.exact_accumulation`. The variable is read once per process; a
/// set-but-unrecognized value emits a one-time warning and defers to the
/// configuration instead of being silently ignored.
pub fn exact_accum_enabled(config: &OptimizationConfig) -> bool {
    static OVERRIDE: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    let forced = OVERRIDE.get_or_init(|| {
        let raw = std::env::var("TORCHSPARSE_EXACT_ACCUM").ok()?;
        match parse_exact_accum_override(&raw) {
            Ok(forced) => Some(forced),
            Err(warning) => {
                torchsparse_runtime::warn_env_once("TORCHSPARSE_EXACT_ACCUM", &warning);
                None
            }
        }
    });
    forced.unwrap_or(config.exact_accumulation)
}

/// Strictly parses a `TORCHSPARSE_EXACT_ACCUM` value; factored out of
/// [`exact_accum_enabled`] so the policy is testable without touching
/// process state. Unrecognized values return the warning message to emit.
fn parse_exact_accum_override(raw: &str) -> Result<bool, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" => Ok(false),
        "on" | "1" | "true" => Ok(true),
        _ => Err(format!(
            "TORCHSPARSE_EXACT_ACCUM={raw:?} is not one of on/off/1/0/true/false; \
             falling back to the engine configuration's exact_accumulation flag"
        )),
    }
}

/// Resolves the effective frozen-plan coordinate index:
/// `TORCHSPARSE_COORD_INDEX` (`hashmap`/`grid`/`mphf`) wins over
/// `config.coord_index`. The variable is read once per process; a
/// set-but-unrecognized value emits a one-time warning and defers to the
/// configuration instead of being silently ignored.
pub fn coord_index_choice(config: &OptimizationConfig) -> CoordIndexChoice {
    static OVERRIDE: std::sync::OnceLock<Option<CoordIndexChoice>> = std::sync::OnceLock::new();
    let forced = OVERRIDE.get_or_init(|| {
        let raw = std::env::var("TORCHSPARSE_COORD_INDEX").ok()?;
        match parse_coord_index_override(&raw) {
            Ok(forced) => Some(forced),
            Err(warning) => {
                torchsparse_runtime::warn_env_once("TORCHSPARSE_COORD_INDEX", &warning);
                None
            }
        }
    });
    forced.unwrap_or(config.coord_index)
}

/// Strictly parses a `TORCHSPARSE_COORD_INDEX` value; factored out of
/// [`coord_index_choice`] so the policy is testable without touching
/// process state. Unrecognized values return the warning message to emit.
fn parse_coord_index_override(raw: &str) -> Result<CoordIndexChoice, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "hashmap" | "hash" => Ok(CoordIndexChoice::Hashmap),
        "grid" => Ok(CoordIndexChoice::Grid),
        "mphf" => Ok(CoordIndexChoice::Mphf),
        _ => Err(format!(
            "TORCHSPARSE_COORD_INDEX={raw:?} is not one of hashmap/grid/mphf; \
             falling back to the engine configuration's coord_index field"
        )),
    }
}

/// Resolves the effective autotuning switch: `TORCHSPARSE_AUTOTUNE`
/// (`off`/`0`/`false` disables the compile-time policy search, `on`/`1`/
/// `true` forces it) wins over `config.autotune_policies`. The variable is
/// read once per process; a set-but-unrecognized value emits a one-time
/// warning and defers to the configuration instead of being silently
/// ignored.
pub fn autotune_enabled(config: &OptimizationConfig) -> bool {
    static OVERRIDE: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    let forced = OVERRIDE.get_or_init(|| {
        let raw = std::env::var("TORCHSPARSE_AUTOTUNE").ok()?;
        match parse_autotune_override(&raw) {
            Ok(forced) => Some(forced),
            Err(warning) => {
                torchsparse_runtime::warn_env_once("TORCHSPARSE_AUTOTUNE", &warning);
                None
            }
        }
    });
    forced.unwrap_or(config.autotune_policies)
}

/// Strictly parses a `TORCHSPARSE_AUTOTUNE` value; factored out of
/// [`autotune_enabled`] so the policy is testable without touching process
/// state. Unrecognized values return the warning message to emit.
fn parse_autotune_override(raw: &str) -> Result<bool, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" => Ok(false),
        "on" | "1" | "true" => Ok(true),
        _ => Err(format!(
            "TORCHSPARSE_AUTOTUNE={raw:?} is not one of on/off/1/0/true/false; \
             falling back to the engine configuration's autotune_policies flag"
        )),
    }
}

/// Resolves the effective delta-replan switch: `TORCHSPARSE_DELTA_REPLAN`
/// (`off`/`0`/`false` forces full re-plans on every geometry change,
/// `on`/`1`/`true` forces the incremental patch path) wins over
/// `config.delta_replan`. The variable is read once per process; a
/// set-but-unrecognized value emits a one-time warning and defers to the
/// configuration instead of being silently ignored.
pub fn delta_replan_enabled(config: &OptimizationConfig) -> bool {
    static OVERRIDE: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    let forced = OVERRIDE.get_or_init(|| {
        let raw = std::env::var("TORCHSPARSE_DELTA_REPLAN").ok()?;
        match parse_delta_replan_override(&raw) {
            Ok(forced) => Some(forced),
            Err(warning) => {
                torchsparse_runtime::warn_env_once("TORCHSPARSE_DELTA_REPLAN", &warning);
                None
            }
        }
    });
    forced.unwrap_or(config.delta_replan)
}

/// Strictly parses a `TORCHSPARSE_DELTA_REPLAN` value; factored out of
/// [`delta_replan_enabled`] so the policy is testable without touching
/// process state. Unrecognized values return the warning message to emit.
fn parse_delta_replan_override(raw: &str) -> Result<bool, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" => Ok(false),
        "on" | "1" | "true" => Ok(true),
        _ => Err(format!(
            "TORCHSPARSE_DELTA_REPLAN={raw:?} is not one of on/off/1/0/true/false; \
             falling back to the engine configuration's delta_replan flag"
        )),
    }
}

/// Resolves the tuning-database location: `TORCHSPARSE_TUNE_DB` (a
/// non-empty path) wins over `config.tune_db`, which wins over the default
/// cache directory (`$XDG_CACHE_HOME/torchsparse/tune-v1.json`, else
/// `$HOME/.cache/torchsparse/tune-v1.json`). Returns `None` when no
/// location resolves — tuning then runs without persistence. The variable
/// is read once per process; a set-but-empty value emits a one-time
/// warning and defers to the configuration instead of being silently
/// ignored.
pub fn tune_db_path(config: &OptimizationConfig) -> Option<std::path::PathBuf> {
    static OVERRIDE: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();
    let forced = OVERRIDE.get_or_init(|| {
        let raw = std::env::var("TORCHSPARSE_TUNE_DB").ok()?;
        match parse_tune_db_override(&raw) {
            Ok(path) => Some(path),
            Err(warning) => {
                torchsparse_runtime::warn_env_once("TORCHSPARSE_TUNE_DB", &warning);
                None
            }
        }
    });
    if let Some(path) = forced {
        return Some(path.clone());
    }
    if let Some(path) = &config.tune_db {
        return Some(path.clone());
    }
    let cache_root = match std::env::var_os("XDG_CACHE_HOME") {
        Some(dir) if !dir.is_empty() => std::path::PathBuf::from(dir),
        _ => {
            let home = std::env::var_os("HOME").filter(|h| !h.is_empty())?;
            std::path::PathBuf::from(home).join(".cache")
        }
    };
    Some(cache_root.join("torchsparse").join("tune-v1.json"))
}

/// Strictly parses a `TORCHSPARSE_TUNE_DB` value; factored out of
/// [`tune_db_path`] so the policy is testable without touching process
/// state. Empty values return the warning message to emit.
fn parse_tune_db_override(raw: &str) -> Result<std::path::PathBuf, String> {
    if raw.trim().is_empty() {
        Err(format!(
            "TORCHSPARSE_TUNE_DB={raw:?} is empty; falling back to the engine \
             configuration's tune_db path (or the default cache directory)"
        ))
    } else {
        Ok(std::path::PathBuf::from(raw))
    }
}

impl OptimizationConfig {
    /// Fully optimized TorchSparse configuration.
    pub fn torchsparse() -> OptimizationConfig {
        OptimizationConfig {
            precision: Precision::Fp16,
            vectorized: true,
            fused_gather_scatter: true,
            locality_aware: true,
            grouping: GroupingStrategy::default_adaptive(),
            map_search: MapSearchStrategy::Auto,
            fused_downsample: true,
            simplified_mapping_kernels: true,
            symmetric_map_search: true,
            fetch_on_demand_below: None,
            grid_cell_limit: 1 << 28,
            skip_center_movement: true,
            validation: ValidationConfig::default(),
            threads: None,
            simd: SimdPolicy::Auto,
            fma_gemm: false,
            fused_execution: true,
            exact_accumulation: true,
            coord_index: CoordIndexChoice::Auto,
            autotune_policies: true,
            tune_db: None,
            delta_replan: true,
            delta_replan_max_churn: 0.15,
        }
    }

    /// The paper's unoptimized FP32 baseline (§5.1: "a baseline FP32 design
    /// without optimizations in Section 4").
    pub fn baseline_fp32() -> OptimizationConfig {
        OptimizationConfig {
            precision: Precision::Fp32,
            vectorized: false,
            fused_gather_scatter: false,
            locality_aware: false,
            grouping: GroupingStrategy::Separate,
            map_search: MapSearchStrategy::Hashmap,
            fused_downsample: false,
            simplified_mapping_kernels: false,
            symmetric_map_search: false,
            fetch_on_demand_below: None,
            grid_cell_limit: 1 << 28,
            skip_center_movement: false,
            validation: ValidationConfig::default(),
            threads: None,
            simd: SimdPolicy::Auto,
            fma_gemm: false,
            // Like `simd`, fused execution is a host-executor detail, not
            // one of the paper's ablated optimizations: it changes no bits,
            // so even the baseline uses it.
            fused_execution: true,
            // Same reasoning: exact accumulation is a host-executor detail
            // (a *stronger* determinism guarantee, not a looser one), so
            // even the baseline uses it.
            exact_accumulation: true,
            // The frozen-plan index changes no bits either; the baseline
            // keeps Auto so dynamic runs match the historical hashmap path.
            coord_index: CoordIndexChoice::Auto,
            // Policy autotuning is bitwise-neutral (it only reroutes the
            // host executor), so like fused execution it stays on even in
            // the baseline.
            autotune_policies: true,
            tune_db: None,
            // Delta re-planning is bitwise-neutral too (it bails to a full
            // re-plan whenever equality cannot be guaranteed), so the
            // baseline keeps it on.
            delta_replan: true,
            delta_replan_max_churn: 0.15,
        }
    }

    /// MinkowskiEngine v0.5.4-style configuration: conventional hashmap,
    /// separate FP32 matmuls, fetch-on-demand for small workloads.
    pub fn minkowski_engine() -> OptimizationConfig {
        OptimizationConfig { fetch_on_demand_below: Some(5_000), ..Self::baseline_fp32() }
    }

    /// SpConv v1.2.1-style configuration (FP32): grid map search, separate
    /// matmuls, staged downsampling.
    pub fn spconv_fp32() -> OptimizationConfig {
        OptimizationConfig { map_search: MapSearchStrategy::Grid, ..Self::baseline_fp32() }
    }

    /// SpConv's FP16 mode: quantized but *scalar* (non-vectorized) data
    /// movement and no grouping — the comparison of §5.2.
    pub fn spconv_fp16() -> OptimizationConfig {
        OptimizationConfig { precision: Precision::Fp16, ..Self::spconv_fp32() }
    }
}

/// Named engine presets for the systems the paper evaluates (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnginePreset {
    /// This paper's system, fully optimized.
    TorchSparse,
    /// Unoptimized FP32 baseline.
    BaselineFp32,
    /// MinkowskiEngine v0.5.4 (FP32 + fetch-on-demand).
    MinkowskiEngine,
    /// SpConv v1.2.1, FP32.
    SpConv,
    /// SpConv v1.2.1, FP16.
    SpConvFp16,
}

impl EnginePreset {
    /// The preset's optimization configuration.
    pub fn config(self) -> OptimizationConfig {
        match self {
            EnginePreset::TorchSparse => OptimizationConfig::torchsparse(),
            EnginePreset::BaselineFp32 => OptimizationConfig::baseline_fp32(),
            EnginePreset::MinkowskiEngine => OptimizationConfig::minkowski_engine(),
            EnginePreset::SpConv => OptimizationConfig::spconv_fp32(),
            EnginePreset::SpConvFp16 => OptimizationConfig::spconv_fp16(),
        }
    }

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            EnginePreset::TorchSparse => "TorchSparse",
            EnginePreset::BaselineFp32 => "Baseline (FP32)",
            EnginePreset::MinkowskiEngine => "MinkowskiEngine",
            EnginePreset::SpConv => "SpConv",
            EnginePreset::SpConvFp16 => "SpConv (FP16)",
        }
    }

    /// The four systems compared in Figure 11, in plot order.
    pub fn figure11_systems() -> [EnginePreset; 4] {
        [
            EnginePreset::MinkowskiEngine,
            EnginePreset::SpConvFp16,
            EnginePreset::BaselineFp32,
            EnginePreset::TorchSparse,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torchsparse_preset_enables_everything() {
        let c = EnginePreset::TorchSparse.config();
        assert_eq!(c.precision, Precision::Fp16);
        assert!(c.vectorized && c.fused_gather_scatter && c.locality_aware);
        assert!(c.fused_downsample && c.simplified_mapping_kernels && c.symmetric_map_search);
        assert!(matches!(c.grouping, GroupingStrategy::Adaptive { .. }));
        assert_eq!(c.map_search, MapSearchStrategy::Auto);
        assert!(c.fused_execution);
        assert!(c.exact_accumulation);
    }

    #[test]
    fn baseline_disables_everything() {
        let c = EnginePreset::BaselineFp32.config();
        assert_eq!(c.precision, Precision::Fp32);
        assert!(!c.vectorized && !c.fused_gather_scatter && !c.locality_aware);
        assert!(matches!(c.grouping, GroupingStrategy::Separate));
    }

    #[test]
    fn minkowski_uses_fetch_on_demand() {
        let c = EnginePreset::MinkowskiEngine.config();
        assert!(c.fetch_on_demand_below.is_some());
        assert_eq!(c.map_search, MapSearchStrategy::Hashmap);
    }

    #[test]
    fn spconv_uses_grid() {
        assert_eq!(EnginePreset::SpConv.config().map_search, MapSearchStrategy::Grid);
        assert_eq!(EnginePreset::SpConvFp16.config().precision, Precision::Fp16);
        assert!(!EnginePreset::SpConvFp16.config().vectorized, "SpConv FP16 is scalar");
    }

    #[test]
    fn no_preset_opts_into_fma() {
        for preset in [
            EnginePreset::TorchSparse,
            EnginePreset::BaselineFp32,
            EnginePreset::MinkowskiEngine,
            EnginePreset::SpConv,
            EnginePreset::SpConvFp16,
        ] {
            let c = preset.config();
            assert!(!c.fma_gemm, "{}: FMA changes rounding and must be opt-in", preset.name());
            assert_eq!(c.simd, SimdPolicy::Auto);
            assert!(
                c.fused_execution,
                "{}: fused execution is bitwise-neutral and defaults on",
                preset.name()
            );
            assert!(
                c.exact_accumulation,
                "{}: exact accumulation strengthens determinism and defaults on",
                preset.name()
            );
        }
    }

    #[test]
    fn fused_override_parses_strictly() {
        for (raw, expect) in [("off", false), ("0", false), ("FALSE", false), (" on ", true)] {
            assert_eq!(parse_fused_override(raw), Ok(expect), "{raw:?}");
        }
        for bad in ["abc", "2", "", "yes"] {
            let w = parse_fused_override(bad).expect_err("malformed value must warn");
            assert!(w.contains("TORCHSPARSE_FUSED"), "warning must name the variable: {w}");
            assert!(w.contains("fused_execution"), "warning must name the fallback: {w}");
        }
    }

    #[test]
    fn exact_accum_override_parses_strictly() {
        for (raw, expect) in [("off", false), ("0", false), ("FALSE", false), (" on ", true)] {
            assert_eq!(parse_exact_accum_override(raw), Ok(expect), "{raw:?}");
        }
        for bad in ["abc", "2", "", "yes"] {
            let w = parse_exact_accum_override(bad).expect_err("malformed value must warn");
            assert!(w.contains("TORCHSPARSE_EXACT_ACCUM"), "warning must name the variable: {w}");
            assert!(w.contains("exact_accumulation"), "warning must name the fallback: {w}");
        }
    }

    #[test]
    fn coord_index_override_parses_strictly() {
        for (raw, expect) in [
            ("hashmap", CoordIndexChoice::Hashmap),
            ("HASH", CoordIndexChoice::Hashmap),
            (" grid ", CoordIndexChoice::Grid),
            ("Mphf", CoordIndexChoice::Mphf),
        ] {
            assert_eq!(parse_coord_index_override(raw), Ok(expect), "{raw:?}");
        }
        for bad in ["abc", "auto", "", "bbhash"] {
            let w = parse_coord_index_override(bad).expect_err("malformed value must warn");
            assert!(w.contains("TORCHSPARSE_COORD_INDEX"), "warning must name the variable: {w}");
            assert!(w.contains("coord_index"), "warning must name the fallback: {w}");
        }
    }

    #[test]
    fn autotune_override_parses_strictly() {
        for (raw, expect) in [("off", false), ("0", false), ("FALSE", false), (" on ", true)] {
            assert_eq!(parse_autotune_override(raw), Ok(expect), "{raw:?}");
        }
        for bad in ["abc", "2", "", "yes"] {
            let w = parse_autotune_override(bad).expect_err("malformed value must warn");
            assert!(w.contains("TORCHSPARSE_AUTOTUNE"), "warning must name the variable: {w}");
            assert!(w.contains("autotune_policies"), "warning must name the fallback: {w}");
        }
    }

    #[test]
    fn delta_replan_override_parses_strictly() {
        for (raw, expect) in [("off", false), ("0", false), ("FALSE", false), (" on ", true)] {
            assert_eq!(parse_delta_replan_override(raw), Ok(expect), "{raw:?}");
        }
        for bad in ["abc", "2", "", "yes"] {
            let w = parse_delta_replan_override(bad).expect_err("malformed value must warn");
            assert!(w.contains("TORCHSPARSE_DELTA_REPLAN"), "warning must name the variable: {w}");
            assert!(w.contains("delta_replan"), "warning must name the fallback: {w}");
        }
    }

    #[test]
    fn presets_default_to_delta_replan_on() {
        for preset in [
            EnginePreset::TorchSparse,
            EnginePreset::BaselineFp32,
            EnginePreset::MinkowskiEngine,
            EnginePreset::SpConv,
            EnginePreset::SpConvFp16,
        ] {
            let c = preset.config();
            assert!(c.delta_replan, "{}: delta re-planning is bitwise-neutral", preset.name());
            assert_eq!(c.delta_replan_max_churn, 0.15, "{}", preset.name());
        }
    }

    #[test]
    fn tune_db_override_parses_strictly() {
        assert_eq!(
            parse_tune_db_override("/tmp/db.json"),
            Ok(std::path::PathBuf::from("/tmp/db.json"))
        );
        assert_eq!(
            parse_tune_db_override("relative/dir/tune.json"),
            Ok(std::path::PathBuf::from("relative/dir/tune.json"))
        );
        for bad in ["", "   "] {
            let w = parse_tune_db_override(bad).expect_err("empty value must warn");
            assert!(w.contains("TORCHSPARSE_TUNE_DB"), "warning must name the variable: {w}");
            assert!(w.contains("tune_db"), "warning must name the fallback: {w}");
        }
    }

    #[test]
    fn explicit_tune_db_wins_over_default_cache_dir() {
        if std::env::var_os("TORCHSPARSE_TUNE_DB").is_some() {
            return; // the env override legitimately wins; nothing to check
        }
        let mut c = OptimizationConfig::torchsparse();
        c.tune_db = Some(std::path::PathBuf::from("/tmp/torchsparse-test/db.json"));
        assert_eq!(
            tune_db_path(&c),
            Some(std::path::PathBuf::from("/tmp/torchsparse-test/db.json"))
        );
    }

    #[test]
    fn presets_default_to_autotune_on() {
        for preset in [
            EnginePreset::TorchSparse,
            EnginePreset::BaselineFp32,
            EnginePreset::MinkowskiEngine,
            EnginePreset::SpConv,
            EnginePreset::SpConvFp16,
        ] {
            let c = preset.config();
            assert!(c.autotune_policies, "{}: autotuning is bitwise-neutral", preset.name());
            assert_eq!(c.tune_db, None, "{}", preset.name());
        }
    }

    #[test]
    fn presets_default_to_auto_coord_index() {
        for preset in [
            EnginePreset::TorchSparse,
            EnginePreset::BaselineFp32,
            EnginePreset::MinkowskiEngine,
            EnginePreset::SpConv,
            EnginePreset::SpConvFp16,
        ] {
            assert_eq!(preset.config().coord_index, CoordIndexChoice::Auto, "{}", preset.name());
        }
    }

    #[test]
    fn preset_names_unique() {
        let mut names: Vec<&str> =
            EnginePreset::figure11_systems().iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
