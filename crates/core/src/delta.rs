//! Incremental delta re-planning for temporal streams.
//!
//! LiDAR streams at 10-20 Hz rarely repeat a frame's voxel grid exactly —
//! ego-motion and dynamic actors churn a few percent of the coordinates
//! while the stable majority persists. A fingerprint mismatch therefore
//! usually means *almost* the same geometry, yet the re-plan path rebuilds
//! every index, kernel map, and output coordinate list from scratch.
//!
//! This module implements the incremental alternative: diff the new
//! coordinate set against the frozen plan's ([`diff_coords`]), classify
//! voxels kept / inserted / removed, and patch only the mapping structures
//! the changed voxels touch — CSR kernel-map ranges, downsampled output
//! coordinate lists, and the per-level coordinate indexes (layered as
//! [`DeltaIndex`]: the frozen MPHF majority plus a small side-table for
//! inserted voxels). Patched maps are seeded into the context's map cache
//! ([`Context::seed_map`]) and the ordinary plan build then runs against
//! them: every `plan()` call hits the seeded cache, skips search, and makes
//! identical policy / grouping / ordering decisions — so a patched plan is
//! *bitwise identical* to a from-scratch plan at every thread count, fused
//! and unfused, with exact accumulation on or off.
//!
//! The walk is conservative: any situation where equality cannot be
//! guaranteed — churn above `delta_replan_max_churn`, duplicate
//! coordinates, geometry that passed through an untracked op — bails out
//! *before* seeding anything, and the caller falls back to a clean full
//! rebuild (counted as a delta fallback in
//! [`PlanCacheStats`](crate::PlanCacheStats)).

use crate::config::{coord_index_choice, CoordIndexChoice, OptimizationConfig};
use crate::context::{CachedMap, Context, MapKey};
use crate::mapping::{stats_latency, HASH_SERIALIZATION};
use crate::plan::{ExecutionPlan, LayerOp, StepPlan};
use crate::{CoreError, SparseTensor};
use std::collections::HashMap;
use std::sync::Arc;
use torchsparse_coords::{
    diff_coords, patch_strided_map, patch_submanifold_map, Coord, CoordDelta, CoordHashMap,
    CoordIndex, DeltaIndex, GridTable, MphfIndex, PatchStats,
};
use torchsparse_gpusim::Stage;

/// Deepest [`DeltaIndex`] layering tolerated before a level's index is
/// compacted into a fresh flat index. Each layer adds one dependent lookup
/// to every query; past this depth the compaction cost amortizes.
const MAX_DELTA_DEPTH: usize = 3;
/// Inserted-row fraction above which layering stops paying for itself and
/// the level's index is compacted instead.
const MAX_SIDE_FRACTION: f64 = 0.25;

/// The geometry cursor of the delta walk: the new coordinates at the
/// current tensor level, plus (once resolved) their classification against
/// the old plan's coordinates at the same level and an index over them.
#[derive(Clone)]
struct LevelState {
    coords: Arc<Vec<Coord>>,
    stride: i32,
    /// Classification of the old plan's rows at this level against
    /// `coords`. `None` until the first map op resolves it (level 0 diffs
    /// lazily against that op's frozen index).
    delta: Option<Arc<CoordDelta>>,
    /// Index over `coords`, built lazily on first use.
    index: Option<Arc<dyn CoordIndex>>,
    /// Geometry no longer tracked against the old plan (it passed through
    /// an op the walk does not model, e.g. global pooling). Any further
    /// map op bails.
    opaque: bool,
}

impl LevelState {
    fn root(coords: Vec<Coord>, stride: i32) -> LevelState {
        LevelState { coords: Arc::new(coords), stride, delta: None, index: None, opaque: false }
    }

    fn opaque() -> LevelState {
        LevelState {
            coords: Arc::new(Vec::new()),
            stride: 0,
            delta: None,
            index: None,
            opaque: true,
        }
    }
}

/// A conservative bail: the delta path cannot guarantee bitwise equality
/// here, so the caller runs a full rebuild instead. Never an error.
struct Bail(#[allow(dead_code)] &'static str);

/// One patched (or verified-identical) map, plus the coarse-side state a
/// strided op hands to the next level.
struct PatchedEntry {
    cached: Arc<CachedMap>,
    coarse: Option<LevelState>,
}

struct Walk<'c> {
    config: &'c OptimizationConfig,
    seeds: Vec<(MapKey, Arc<CachedMap>)>,
    patched: HashMap<MapKey, usize>,
    /// Fine-side level state per map key, for transposed convolutions that
    /// re-enter a level through the shared encoder map.
    fine_states: HashMap<MapKey, LevelState>,
    stats: PatchStats,
    churn_checked: bool,
}

impl<'c> Walk<'c> {
    /// Resolves the level's delta (level 0 diffs against the op's frozen
    /// index) and enforces the churn threshold on the first resolution.
    fn resolve_delta(
        &mut self,
        cur: &mut LevelState,
        old_cached: &CachedMap,
    ) -> Result<Arc<CoordDelta>, Bail> {
        let delta = match &cur.delta {
            Some(d) => d.clone(),
            None => {
                let d = diff_coords(
                    old_cached.index.as_ref(),
                    old_cached.fine_coords.len(),
                    &cur.coords,
                )
                .map_err(|_| Bail("duplicate coordinates"))?;
                self.stats.random.reads += d.probes;
                self.stats.random.kernel_launches += 1;
                let d = Arc::new(d);
                cur.delta = Some(d.clone());
                d
            }
        };
        if delta.remap.len() != old_cached.fine_coords.len() {
            return Err(Bail("level/plan row-count mismatch"));
        }
        if !self.churn_checked {
            self.churn_checked = true;
            if delta.churn(cur.coords.len()) > self.config.delta_replan_max_churn {
                return Err(Bail("churn above threshold"));
            }
        }
        Ok(delta)
    }

    /// Ensures `cur.index` indexes the level's new coordinates: the old
    /// frozen index when the delta is the identity, a [`DeltaIndex`] layer
    /// over it otherwise — compacted into a fresh flat index when the chain
    /// grows too deep or the side-table too large.
    fn resolve_index(
        &mut self,
        cur: &mut LevelState,
        delta: &CoordDelta,
        old_cached: &CachedMap,
    ) -> Result<Arc<dyn CoordIndex>, Bail> {
        if let Some(ix) = &cur.index {
            return Ok(ix.clone());
        }
        let ix: Arc<dyn CoordIndex> = if delta.is_identity() {
            old_cached.index.clone()
        } else {
            let side_fraction = delta.inserted.len() as f64 / (cur.coords.len().max(1)) as f64;
            if old_cached.index.delta_depth() + 1 > MAX_DELTA_DEPTH
                || side_fraction >= MAX_SIDE_FRACTION
            {
                self.compact_index(&cur.coords)?
            } else {
                let (di, probes) = DeltaIndex::build(old_cached.index.clone(), delta, &cur.coords)
                    .map_err(|_| Bail("delta/index length mismatch"))?;
                self.stats.random.writes += probes;
                self.stats.random.kernel_launches += 1;
                Arc::new(di)
            }
        };
        cur.index = Some(ix.clone());
        Ok(ix)
    }

    /// A fresh flat index over `coords`, honoring the configured
    /// [`CoordIndexChoice`] like the full mapping pipeline's cached-index
    /// compaction does.
    fn compact_index(&mut self, coords: &[Coord]) -> Result<Arc<dyn CoordIndex>, Bail> {
        let hashmap = |stats: &mut PatchStats| -> Arc<dyn CoordIndex> {
            let (t, probes) = CoordHashMap::build(coords);
            stats.random.writes += probes;
            Arc::new(t)
        };
        self.stats.random.kernel_launches += 1;
        Ok(match coord_index_choice(self.config) {
            CoordIndexChoice::Auto | CoordIndexChoice::Mphf => match MphfIndex::build(coords) {
                Ok((t, accesses)) => {
                    self.stats.random.writes += accesses;
                    Arc::new(t)
                }
                Err(_) => hashmap(&mut self.stats),
            },
            CoordIndexChoice::Grid => match GridTable::build(coords, self.config.grid_cell_limit) {
                Ok((t, accesses)) => {
                    self.stats.random.writes += accesses;
                    Arc::new(t)
                }
                Err(_) => hashmap(&mut self.stats),
            },
            CoordIndexChoice::Hashmap => hashmap(&mut self.stats),
        })
    }

    /// Patches one map-building op (convolution or pooling) at the current
    /// level. Returns the index of the resulting [`PatchedEntry`] in
    /// `self.seeds`/`entries`; the caller advances geometry from it.
    #[allow(clippy::too_many_arguments)]
    fn patch_map_op(
        &mut self,
        entries: &mut Vec<PatchedEntry>,
        cur: &mut LevelState,
        old_cached: &Arc<CachedMap>,
        kernel_size: usize,
        conv_stride: i32,
        dilation: i32,
    ) -> Result<usize, Bail> {
        if cur.opaque {
            return Err(Bail("untracked geometry (global pool upstream)"));
        }
        let key = MapKey { fine_stride: cur.stride, kernel_size, conv_stride, dilation };
        if let Some(&i) = self.patched.get(&key) {
            // A layer sharing (stride, kernel) already patched this map —
            // reuse it exactly like the plan build's map cache would.
            return Ok(i);
        }
        let delta = self.resolve_delta(cur, old_cached)?;

        let entry = if delta.is_identity() {
            // Unchanged level: the frozen map is already correct. Seed the
            // old Arc as-is — zero patch cost, shared memory.
            if cur.index.is_none() {
                cur.index = Some(old_cached.index.clone());
            }
            let coarse = (conv_stride > 1).then(|| LevelState {
                coords: Arc::new(old_cached.coarse_coords.clone()),
                stride: cur.stride * conv_stride,
                delta: Some(Arc::new(CoordDelta::identity(old_cached.coarse_coords.len()))),
                index: None,
                opaque: false,
            });
            PatchedEntry { cached: old_cached.clone(), coarse }
        } else if conv_stride == 1 {
            let index = self.resolve_index(cur, &delta, old_cached)?;
            let symmetric =
                self.config.symmetric_map_search && kernel_size % 2 == 1 && kernel_size > 1;
            let (map, pstats) = patch_submanifold_map(
                &old_cached.map,
                &delta,
                &cur.coords,
                index.as_ref(),
                kernel_size,
                dilation,
                symmetric,
            )
            .map_err(|_| Bail("submanifold patch failed"))?;
            self.stats.merge(&pstats);
            PatchedEntry {
                cached: Arc::new(CachedMap {
                    map,
                    fine_coords: cur.coords.as_ref().clone(),
                    coarse_coords: cur.coords.as_ref().clone(),
                    index,
                }),
                coarse: None,
            }
        } else {
            if dilation != 1 {
                return Err(Bail("dilated strided convolution"));
            }
            let index = self.resolve_index(cur, &delta, old_cached)?;
            let patch = patch_strided_map(
                &old_cached.map,
                &old_cached.fine_coords,
                &old_cached.coarse_coords,
                &delta,
                &cur.coords,
                index.as_ref(),
                kernel_size,
                conv_stride,
            )
            .map_err(|_| Bail("strided patch failed"))?;
            self.stats.merge(&patch.stats);
            let coarse = LevelState {
                coords: Arc::new(patch.out_coords.clone()),
                stride: cur.stride * conv_stride,
                delta: Some(Arc::new(patch.out_delta)),
                index: None,
                opaque: false,
            };
            PatchedEntry {
                cached: Arc::new(CachedMap {
                    map: patch.map,
                    fine_coords: cur.coords.as_ref().clone(),
                    coarse_coords: patch.out_coords,
                    index,
                }),
                coarse: Some(coarse),
            }
        };

        let i = entries.len();
        self.seeds.push((key, entry.cached.clone()));
        self.patched.insert(key, i);
        self.fine_states.insert(key, cur.clone());
        entries.push(entry);
        Ok(i)
    }
}

/// Attempts the incremental delta re-plan: diffs `input`'s geometry against
/// the frozen `old` plan, patches every affected kernel map / output
/// coordinate list / coordinate index, and seeds the patched maps into the
/// context's map cache so the subsequent plan build reuses them verbatim.
///
/// Returns `Ok(true)` when the cache was seeded (the caller's plan build
/// will be served by patches), `Ok(false)` on a conservative bail — in
/// which case *nothing* was seeded and a full rebuild proceeds cleanly.
/// The patch cost (streaming CSR traffic + random index probes) is charged
/// to [`Stage::Mapping`] on success, exactly where the full pipeline
/// charges its search cost.
///
/// # Errors
///
/// Only [`CoreError::DeadlineExceeded`] from the context's deadline check;
/// every geometric complication is a bail, not an error.
pub(crate) fn try_seed_delta_maps(
    ops: &[LayerOp<'_>],
    old: &ExecutionPlan,
    input: &SparseTensor,
    ctx: &mut Context,
) -> Result<bool, CoreError> {
    ctx.check_deadline("mapping")?;
    let outcome = walk(ops, old, input, &ctx.config);
    match outcome {
        Err(Bail(_)) => Ok(false),
        Ok(w) => {
            let stream = stats_latency(
                &w.stats.stream,
                &ctx.device,
                false,
                1.0,
                ctx.config.simplified_mapping_kernels,
            );
            let random = stats_latency(
                &w.stats.random,
                &ctx.device,
                true,
                HASH_SERIALIZATION,
                ctx.config.simplified_mapping_kernels,
            );
            ctx.timeline.add(Stage::Mapping, stream + random);
            for (key, cached) in w.seeds {
                ctx.seed_map(key, cached);
            }
            Ok(true)
        }
    }
}

/// The read-only lockstep walk over `(ops, old.steps)`. Mirrors the plan
/// build's geometry cursor and value stack exactly; collects seeds without
/// touching the context so a bail leaves no partial state behind.
fn walk<'c>(
    ops: &[LayerOp<'_>],
    old: &ExecutionPlan,
    input: &SparseTensor,
    config: &'c OptimizationConfig,
) -> Result<Walk<'c>, Bail> {
    if ops.len() != old.steps.len() {
        return Err(Bail("op/step count differs"));
    }
    let mut w = Walk {
        config,
        seeds: Vec::new(),
        patched: HashMap::new(),
        fine_states: HashMap::new(),
        stats: PatchStats::default(),
        churn_checked: false,
    };
    let mut entries: Vec<PatchedEntry> = Vec::new();
    let mut cur = LevelState::root(input.coords().to_vec(), input.stride());
    let mut stack: Vec<LevelState> = Vec::new();

    for (op, step) in ops.iter().zip(&old.steps) {
        match (op, step) {
            (LayerOp::Conv(conv), StepPlan::Conv(p)) => {
                if conv.transposed() {
                    if cur.opaque {
                        return Err(Bail("untracked geometry (global pool upstream)"));
                    }
                    let fine_stride = cur.stride / conv.stride();
                    let key = MapKey {
                        fine_stride,
                        kernel_size: conv.kernel_size(),
                        conv_stride: conv.stride(),
                        dilation: conv.dilation(),
                    };
                    // A transposed conv consumes the encoder's shared map:
                    // re-enter the fine level whose state was recorded when
                    // that map was patched.
                    cur = w
                        .fine_states
                        .get(&key)
                        .cloned()
                        .ok_or(Bail("transposed conv before its forward map"))?;
                } else {
                    let i = w.patch_map_op(
                        &mut entries,
                        &mut cur,
                        &p.cached,
                        conv.kernel_size(),
                        conv.stride(),
                        conv.dilation(),
                    )?;
                    if conv.stride() > 1 {
                        cur = entries[i]
                            .coarse
                            .clone()
                            .ok_or(Bail("strided op missing coarse state"))?;
                    }
                }
            }
            (LayerOp::Pool(pool), StepPlan::Pool(p)) => {
                let i = w.patch_map_op(
                    &mut entries,
                    &mut cur,
                    &p.cached,
                    pool.kernel_size(),
                    pool.stride(),
                    1,
                )?;
                if pool.stride() > 1 {
                    cur =
                        entries[i].coarse.clone().ok_or(Bail("strided op missing coarse state"))?;
                }
            }
            (LayerOp::BatchNorm(_) | LayerOp::Relu(_), StepPlan::Pointwise) => {}
            (LayerOp::GlobalPool(_), StepPlan::GlobalPool) => {
                // Geometry collapses to per-batch representatives; no map
                // op downstream can be patched against the old plan.
                cur = LevelState::opaque();
            }
            (LayerOp::Push, StepPlan::Push) => stack.push(cur.clone()),
            (LayerOp::PopConcat, StepPlan::PopConcat) => {
                stack.pop().ok_or(Bail("concat pops an empty stack"))?;
            }
            (LayerOp::ResidualAdd { projection }, StepPlan::Residual { projection: proj }) => {
                let mut saved = stack.pop().ok_or(Bail("residual pops an empty stack"))?;
                match (projection, proj) {
                    (Some(conv), Some(p)) => {
                        // The 1x1x1 shortcut projection plans on the saved
                        // geometry; its map seeds under the saved level's
                        // key. Residual output keeps `cur`'s geometry.
                        w.patch_map_op(
                            &mut entries,
                            &mut saved,
                            &p.cached,
                            conv.kernel_size(),
                            conv.stride(),
                            conv.dilation(),
                        )?;
                    }
                    (None, None) => {}
                    _ => return Err(Bail("residual projection presence differs")),
                }
            }
            _ => return Err(Bail("op/step kind differs")),
        }
    }
    Ok(w)
}
