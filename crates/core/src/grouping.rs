//! Matrix multiplication grouping (§4.2, Figure 6, Algorithm 4).
//!
//! A sparse convolution has one GEMM per kernel offset, with wildly uneven
//! row counts (Figure 12). Grouping batches several offsets into one padded
//! `bmm` to raise GPU utilization, trading redundant FLOPs (padding) for
//! regularity. This module turns a layer's per-offset map sizes into an
//! execution plan:
//!
//! - [`GroupingStrategy::Separate`]: one `mm` per offset (the baseline).
//! - [`GroupingStrategy::Symmetric`]: batch each mirror pair (`batch = 2`,
//!   zero padding, §4.2.1) — only for odd-kernel stride-1 layers.
//! - [`GroupingStrategy::Fixed`]: three handcrafted groups (§4.2.2).
//! - [`GroupingStrategy::Adaptive`]: the two-pointer scan of Algorithm 4,
//!   opening a new group whenever the redundancy ratio
//!   `1 - n_min / n_max` would exceed `epsilon`, then choosing `bmm` vs
//!   `mm` per group by the workload threshold `S`.

use crate::config::GroupingStrategy;

/// One group of kernel offsets executed together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecGroup {
    /// Kernel-offset indices in this group.
    pub offsets: Vec<usize>,
    /// Row count each member is padded to (`n_max` of the group).
    pub padded_rows: usize,
    /// Execute as one batched `bmm` (true) or as per-offset `mm`s (false).
    pub use_bmm: bool,
}

impl ExecGroup {
    /// Actual (useful) map entries in the group.
    pub fn useful_rows(&self, map_sizes: &[usize]) -> usize {
        self.offsets.iter().map(|&n| map_sizes[n]).sum()
    }

    /// Total rows including padding when batched.
    pub fn total_rows(&self) -> usize {
        self.padded_rows * self.offsets.len()
    }

    /// Redundant-computation ratio `1 - useful / total` (0 for `mm` groups).
    pub fn redundancy(&self, map_sizes: &[usize]) -> f64 {
        if !self.use_bmm || self.total_rows() == 0 {
            return 0.0;
        }
        1.0 - self.useful_rows(map_sizes) as f64 / self.total_rows() as f64
    }
}

/// A layer's grouped execution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    /// The groups, covering every offset with a nonzero map exactly once.
    pub groups: Vec<ExecGroup>,
}

impl GroupPlan {
    /// Number of GEMM kernel launches the plan implies.
    pub fn kernel_count(&self) -> usize {
        self.groups.iter().map(|g| if g.use_bmm { 1 } else { g.offsets.len() }).sum()
    }

    /// Total padded rows across batched groups plus exact rows of mm groups.
    pub fn executed_rows(&self, map_sizes: &[usize]) -> usize {
        self.groups
            .iter()
            .map(|g| if g.use_bmm { g.total_rows() } else { g.useful_rows(map_sizes) })
            .sum()
    }

    /// Checks the plan covers each nonempty offset exactly once.
    pub fn covers_exactly(&self, map_sizes: &[usize]) -> bool {
        let mut seen = vec![false; map_sizes.len()];
        for g in &self.groups {
            for &n in &g.offsets {
                if n >= seen.len() || seen[n] {
                    return false;
                }
                seen[n] = true;
            }
        }
        seen.iter().enumerate().all(|(n, &s)| s || map_sizes[n] == 0)
    }
}

/// Builds the execution plan for a layer.
///
/// `submanifold` is true for odd-kernel stride-1 layers, where the mirror
/// property guarantees `sizes[n] == sizes[V-1-n]` and the center offset is
/// the identity map (processed separately since it needs no data movement,
/// §4.2.1).
pub fn plan_groups(
    map_sizes: &[usize],
    submanifold: bool,
    strategy: GroupingStrategy,
) -> GroupPlan {
    let volume = map_sizes.len();
    match strategy {
        GroupingStrategy::Separate => separate(map_sizes),
        GroupingStrategy::Symmetric => {
            if submanifold {
                symmetric(map_sizes)
            } else {
                separate(map_sizes)
            }
        }
        GroupingStrategy::Fixed => {
            if submanifold {
                let center = (volume - 1) / 2;
                let first: Vec<usize> = (0..center).filter(|&n| map_sizes[n] > 0).collect();
                let second: Vec<usize> =
                    (center + 1..volume).filter(|&n| map_sizes[n] > 0).collect();
                let mut groups = Vec::new();
                push_bmm_group(&mut groups, first, map_sizes);
                if map_sizes[center] > 0 {
                    groups.push(ExecGroup {
                        offsets: vec![center],
                        padded_rows: map_sizes[center],
                        use_bmm: false,
                    });
                }
                push_bmm_group(&mut groups, second, map_sizes);
                GroupPlan { groups }
            } else {
                // Downsampling layers: all offsets have similar sizes; one group.
                let all: Vec<usize> = (0..volume).filter(|&n| map_sizes[n] > 0).collect();
                let mut groups = Vec::new();
                push_bmm_group(&mut groups, all, map_sizes);
                GroupPlan { groups }
            }
        }
        GroupingStrategy::Adaptive { epsilon, s_threshold } => {
            adaptive(map_sizes, submanifold, epsilon, s_threshold)
        }
    }
}

fn separate(map_sizes: &[usize]) -> GroupPlan {
    let groups = map_sizes
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > 0)
        .map(|(n, &s)| ExecGroup { offsets: vec![n], padded_rows: s, use_bmm: false })
        .collect();
    GroupPlan { groups }
}

fn symmetric(map_sizes: &[usize]) -> GroupPlan {
    let volume = map_sizes.len();
    let center = (volume - 1) / 2;
    let mut groups = Vec::new();
    for n in 0..center {
        let m = volume - 1 - n;
        let pair: Vec<usize> = [n, m].into_iter().filter(|&i| map_sizes[i] > 0).collect();
        if pair.len() == 2 {
            groups.push(ExecGroup {
                offsets: pair,
                padded_rows: map_sizes[n].max(map_sizes[m]),
                use_bmm: true,
            });
        } else if let Some(&i) = pair.first() {
            groups.push(ExecGroup { offsets: vec![i], padded_rows: map_sizes[i], use_bmm: false });
        }
    }
    if map_sizes[center] > 0 {
        groups.push(ExecGroup {
            offsets: vec![center],
            padded_rows: map_sizes[center],
            use_bmm: false,
        });
    }
    GroupPlan { groups }
}

/// Algorithm 4's two-pointer partition.
///
/// For submanifold layers the scan runs over mirror pairs (each unit brings
/// both offsets, a natural batch of 2); for downsampling layers it runs over
/// all offsets individually.
fn adaptive(map_sizes: &[usize], submanifold: bool, epsilon: f64, s_threshold: usize) -> GroupPlan {
    let volume = map_sizes.len();
    // Units: (representative size, offsets brought along).
    let units: Vec<(usize, Vec<usize>)> = if submanifold {
        let center = (volume - 1) / 2;
        (0..center)
            .map(|n| (map_sizes[n], vec![n, volume - 1 - n]))
            .filter(|(s, _)| *s > 0)
            .collect()
    } else {
        (0..volume).map(|n| (map_sizes[n], vec![n])).filter(|(s, _)| *s > 0).collect()
    };

    let mut groups = Vec::new();
    let mut i = 0;
    while i < units.len() {
        let mut n_min = units[i].0;
        let mut n_max = units[i].0;
        let mut members: Vec<usize> = units[i].1.clone();
        let mut j = i + 1;
        while j < units.len() {
            let s = units[j].0;
            let cand_min = n_min.min(s);
            let cand_max = n_max.max(s);
            // Push the unit into the group only if redundancy stays within
            // epsilon (Algorithm 4's check).
            if 1.0 - cand_min as f64 / cand_max as f64 <= epsilon {
                n_min = cand_min;
                n_max = cand_max;
                members.extend_from_slice(&units[j].1);
                j += 1;
            } else {
                break;
            }
        }
        i = j;
        // bmm below the workload threshold S, otherwise per-offset mm.
        let use_bmm = n_max < s_threshold && members.len() > 1;
        groups.push(ExecGroup { offsets: members, padded_rows: n_max, use_bmm });
    }

    // The center offset of a submanifold layer is processed separately
    // (no data movement, §4.2.1).
    if submanifold {
        let center = (volume - 1) / 2;
        if map_sizes[center] > 0 {
            groups.push(ExecGroup {
                offsets: vec![center],
                padded_rows: map_sizes[center],
                use_bmm: false,
            });
        }
    }
    GroupPlan { groups }
}

fn push_bmm_group(groups: &mut Vec<ExecGroup>, offsets: Vec<usize>, map_sizes: &[usize]) {
    if offsets.is_empty() {
        return;
    }
    let padded = offsets.iter().map(|&n| map_sizes[n]).max().unwrap_or(0);
    let use_bmm = offsets.len() > 1;
    groups.push(ExecGroup { offsets, padded_rows: padded, use_bmm });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plausible submanifold size profile: mirror-symmetric, center = N.
    fn submanifold_sizes() -> Vec<usize> {
        let mut sizes = vec![0usize; 27];
        for n in 0..13 {
            let s = 4000 + 800 * (n % 4);
            sizes[n] = s;
            sizes[26 - n] = s;
        }
        sizes[13] = 10_000;
        sizes
    }

    #[test]
    fn separate_one_group_per_offset() {
        let sizes = submanifold_sizes();
        let plan = plan_groups(&sizes, true, GroupingStrategy::Separate);
        assert_eq!(plan.groups.len(), 27);
        assert!(plan.groups.iter().all(|g| !g.use_bmm && g.offsets.len() == 1));
        assert!(plan.covers_exactly(&sizes));
        assert_eq!(plan.executed_rows(&sizes), sizes.iter().sum::<usize>());
    }

    #[test]
    fn separate_skips_empty_maps() {
        let mut sizes = vec![5usize; 27];
        sizes[3] = 0;
        let plan = plan_groups(&sizes, true, GroupingStrategy::Separate);
        assert_eq!(plan.groups.len(), 26);
        assert!(plan.covers_exactly(&sizes));
    }

    #[test]
    fn symmetric_pairs_have_no_padding() {
        let sizes = submanifold_sizes();
        let plan = plan_groups(&sizes, true, GroupingStrategy::Symmetric);
        // 13 pairs + center = 14 groups.
        assert_eq!(plan.groups.len(), 14);
        assert!(plan.covers_exactly(&sizes));
        for g in &plan.groups {
            assert!(g.redundancy(&sizes) < 1e-9, "symmetric groups are padding-free");
        }
        // The paper: symmetric grouping yields batch size 2.
        assert!(plan.groups.iter().filter(|g| g.use_bmm).all(|g| g.offsets.len() == 2));
    }

    #[test]
    fn symmetric_falls_back_for_downsample() {
        let sizes = vec![100usize; 8];
        let plan = plan_groups(&sizes, false, GroupingStrategy::Symmetric);
        assert!(plan.groups.iter().all(|g| !g.use_bmm));
    }

    #[test]
    fn fixed_three_groups_submanifold() {
        let sizes = submanifold_sizes();
        let plan = plan_groups(&sizes, true, GroupingStrategy::Fixed);
        assert_eq!(plan.groups.len(), 3);
        assert!(plan.covers_exactly(&sizes));
        assert_eq!(plan.groups[1].offsets, vec![13]);
    }

    #[test]
    fn fixed_single_group_downsample() {
        let sizes = vec![700usize; 8];
        let plan = plan_groups(&sizes, false, GroupingStrategy::Fixed);
        assert_eq!(plan.groups.len(), 1);
        assert!(plan.groups[0].use_bmm);
        assert_eq!(plan.groups[0].redundancy(&sizes), 0.0, "equal sizes need no padding");
    }

    #[test]
    fn adaptive_respects_epsilon() {
        let sizes = submanifold_sizes();
        for epsilon in [0.0, 0.1, 0.3, 0.7] {
            let plan = plan_groups(
                &sizes,
                true,
                GroupingStrategy::Adaptive { epsilon, s_threshold: usize::MAX },
            );
            assert!(plan.covers_exactly(&sizes), "epsilon {epsilon}");
            for g in &plan.groups {
                assert!(
                    g.redundancy(&sizes) <= epsilon + 1e-9,
                    "group {g:?} exceeds epsilon {epsilon}"
                );
            }
        }
    }

    #[test]
    fn adaptive_epsilon_zero_equals_symmetric() {
        // §4.2.3: (epsilon=0, S=inf) degenerates to symmetric grouping for
        // submanifold layers with distinct pair sizes.
        let mut sizes = vec![0usize; 27];
        for n in 0..13 {
            let s = 1000 + 137 * n; // all pairs distinct
            sizes[n] = s;
            sizes[26 - n] = s;
        }
        sizes[13] = 9999;
        let plan = plan_groups(
            &sizes,
            true,
            GroupingStrategy::Adaptive { epsilon: 0.0, s_threshold: usize::MAX },
        );
        let sym = plan_groups(&sizes, true, GroupingStrategy::Symmetric);
        assert_eq!(plan.kernel_count(), sym.kernel_count());
        assert_eq!(plan.executed_rows(&sizes), sym.executed_rows(&sizes));
    }

    #[test]
    fn adaptive_s_zero_equals_separate() {
        // (S=0) degenerates to separate computation: every group runs mm.
        let sizes = submanifold_sizes();
        let plan =
            plan_groups(&sizes, true, GroupingStrategy::Adaptive { epsilon: 1.0, s_threshold: 0 });
        assert!(plan.groups.iter().all(|g| !g.use_bmm));
        assert_eq!(plan.executed_rows(&sizes), sizes.iter().sum::<usize>());
    }

    #[test]
    fn adaptive_epsilon_one_groups_everything() {
        // (epsilon=1, S=inf) approaches dense batching: a single group for
        // all non-center offsets.
        let sizes = submanifold_sizes();
        let plan = plan_groups(
            &sizes,
            true,
            GroupingStrategy::Adaptive { epsilon: 1.0, s_threshold: usize::MAX },
        );
        // One merged group + the center.
        assert_eq!(plan.groups.len(), 2);
        assert!(plan.groups[0].use_bmm);
        assert!(plan.covers_exactly(&sizes));
    }

    #[test]
    fn adaptive_downsample_units_are_single_offsets() {
        let sizes = vec![500, 520, 480, 510, 505, 495, 515, 490];
        let plan = plan_groups(
            &sizes,
            false,
            GroupingStrategy::Adaptive { epsilon: 0.2, s_threshold: usize::MAX },
        );
        assert_eq!(plan.groups.len(), 1, "similar sizes merge into one group");
        assert!(plan.covers_exactly(&sizes));
    }

    #[test]
    fn adaptive_heterogeneous_splits() {
        // A sharp size cliff must split groups at epsilon = 0.2.
        let sizes = vec![1000, 1000, 1000, 100, 100, 100, 100, 100];
        let plan = plan_groups(
            &sizes,
            false,
            GroupingStrategy::Adaptive { epsilon: 0.2, s_threshold: usize::MAX },
        );
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.groups[0].offsets, vec![0, 1, 2]);
    }

    #[test]
    fn kernel_count_reflects_batching() {
        let sizes = submanifold_sizes();
        let sep = plan_groups(&sizes, true, GroupingStrategy::Separate);
        let adp = plan_groups(
            &sizes,
            true,
            GroupingStrategy::Adaptive { epsilon: 0.3, s_threshold: usize::MAX },
        );
        assert!(adp.kernel_count() < sep.kernel_count());
    }
}
