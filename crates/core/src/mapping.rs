//! Mapping pipeline: output coordinate construction + map search, with the
//! paper's §4.4 optimizations and a calibrated latency model.
//!
//! The paper accelerates mapping 4.6x end-to-end on detectors through four
//! stacked optimizations (Figure 13):
//!
//! 1. **grid-based map search** (collision-free, 1 access/entry) instead of
//!    a conventional hashmap — chosen per layer from `[grid, hashmap]`;
//! 2. **kernel fusion** of the four output-coordinate stages (Figure 10);
//! 3. **simplified control logic + loop unrolling** in the search kernels;
//! 4. **symmetric map reuse** for submanifold layers.
//!
//! All four are implemented functionally (they produce identical maps) and
//! differ in their [`MappingStats`], which [`mapping_latency`] converts to
//! microseconds with a small set of calibrated constants.

use crate::config::{coord_index_choice, CoordIndexChoice, MapSearchStrategy, OptimizationConfig};
use crate::faults::{DegradationReport, FaultInjector, FaultSite};
use crate::runtime::ThreadPool;
use crate::CoreError;
use torchsparse_coords::downsample::{fused_output_coords, staged_output_coords, Boundary};
use torchsparse_coords::kernel_map::{search_dilated_on, search_submanifold_symmetric_dilated_on};
use torchsparse_coords::{
    Coord, CoordHashMap, CoordIndex, CoordsError, GridTable, KernelMap, MappingStats, MphfIndex,
};
use torchsparse_gpusim::{DeviceProfile, Micros};

/// Which coordinate index a layer's map search used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Conventional open-addressing hashmap.
    Hashmap,
    /// Collision-free grid.
    Grid,
    /// Succinct minimal-perfect-hash index (frozen coordinate sets).
    Mphf,
}

impl TableKind {
    /// Probe-serialization factor of the index's query chain: hashmap probe
    /// chains and the MPHF's level cascade are dependent loads, the grid's
    /// single accesses pipeline freely.
    fn serialization(self) -> f64 {
        match self {
            TableKind::Grid => 1.0,
            TableKind::Hashmap | TableKind::Mphf => HASH_SERIALIZATION,
        }
    }
}

/// The result of building one layer's mapping.
#[derive(Debug)]
pub struct LayerMapping {
    /// The kernel map.
    pub map: KernelMap,
    /// Output coordinates (equal to the input for stride-1 layers).
    pub out_coords: Vec<Coord>,
    /// Simulated mapping latency.
    pub latency: Micros,
    /// Table used for the search.
    pub table: TableKind,
    /// The coordinate index the search probed. Frozen plans retain it so
    /// [`crate::ExecutionPlan::memory_bytes`] reflects the configured
    /// [`CoordIndexChoice`] and future incremental re-plans can re-query
    /// without a rebuild.
    pub index: Box<dyn CoordIndex>,
}

/// Bytes charged per *random* table access (hash probe / grid cell): one
/// 32-byte DRAM sector, the minimum granularity of an uncoalesced access.
const RANDOM_ACCESS_BYTES: f64 = 32.0;
/// Bytes charged per *streaming* coordinate element in the downsample
/// pipeline (a packed 16-byte coordinate, fully coalesced).
const STREAM_ACCESS_BYTES: f64 = 16.0;
/// Probe chains in the conventional hashmap are serialized dependent loads
/// (each probe must complete before the next address is known), while the
/// grid's single accesses pipeline freely. With ~1.5 average probes at load
/// factor 0.5, this factor puts grid search near the paper's 2.7x advantage
/// (§6.3) on large scenes.
pub(crate) const HASH_SERIALIZATION: f64 = 1.8;
/// Penalty of un-simplified control logic (branchy, un-unrolled mapping
/// kernels); its removal is the 1.8x "control logic" bar of Figure 13.
const UNSIMPLIFIED_FACTOR: f64 = 1.8;
/// ALU time of one fused-kernel sliding-window candidate, expressed in
/// DRAM-byte-equivalents. Calibrated once so the fused output-coordinate
/// kernel lands near the paper's measured 2.1x over the staged baseline
/// (§6.3) instead of the ~20x a pure traffic count would predict.
const CANDIDATE_OP_BYTES: f64 = 72.0;

/// Converts mapping memory statistics to latency on a device.
///
/// `random` selects the 32-byte-sector random-access cost (table
/// construction and probing) versus the coalesced streaming cost
/// (coordinate pipelines).
pub fn stats_latency(
    stats: &MappingStats,
    device: &DeviceProfile,
    random: bool,
    serialization: f64,
    simplified: bool,
) -> Micros {
    let bytes_per = if random { RANDOM_ACCESS_BYTES } else { STREAM_ACCESS_BYTES };
    let bytes = (stats.reads + stats.writes) as f64 * bytes_per * serialization
        + stats.candidate_ops as f64 * CANDIDATE_OP_BYTES;
    let mut us = bytes / (device.dram_gbs * 1e3);
    if !simplified {
        us *= UNSIMPLIFIED_FACTOR;
    }
    Micros(us) + Micros(stats.kernel_launches as f64 * device.launch_overhead_us)
}

/// Builds the complete mapping for one convolution layer: output
/// coordinates (for strided layers), table construction, and map search.
///
/// # Errors
///
/// Propagates coordinate errors ([`CoreError::Coords`]); an empty input
/// yields [`CoreError::EmptyInput`].
pub fn build_layer_mapping(
    in_coords: &[Coord],
    kernel_size: usize,
    conv_stride: i32,
    config: &OptimizationConfig,
    device: &DeviceProfile,
) -> Result<LayerMapping, CoreError> {
    build_layer_mapping_dilated(in_coords, kernel_size, conv_stride, 1, config, device)
}

/// [`build_layer_mapping`] with a dilation factor (stride-1 layers only;
/// strided dilated convolution is rejected as in real engines' common
/// configurations).
///
/// # Errors
///
/// As [`build_layer_mapping`]; additionally rejects `dilation > 1` combined
/// with `conv_stride > 1`.
pub fn build_layer_mapping_dilated(
    in_coords: &[Coord],
    kernel_size: usize,
    conv_stride: i32,
    dilation: i32,
    config: &OptimizationConfig,
    device: &DeviceProfile,
) -> Result<LayerMapping, CoreError> {
    let mut faults = FaultInjector::disarmed();
    let mut degradation = DegradationReport::new();
    build_layer_mapping_observed(
        in_coords,
        kernel_size,
        conv_stride,
        dilation,
        config,
        device,
        &mut faults,
        &mut degradation,
    )
}

/// [`build_layer_mapping_dilated`] threaded through the engine's fault
/// injector and degradation report: a grid-table failure — organic
/// `GridTooLarge` or injected at [`FaultSite::GridTableBuild`] — degrades
/// to the hashmap table and is recorded instead of being swallowed
/// silently.
///
/// # Errors
///
/// As [`build_layer_mapping_dilated`].
#[allow(clippy::too_many_arguments)] // mirrors the engine's disjoint Context borrows
pub fn build_layer_mapping_observed(
    in_coords: &[Coord],
    kernel_size: usize,
    conv_stride: i32,
    dilation: i32,
    config: &OptimizationConfig,
    device: &DeviceProfile,
    faults: &mut FaultInjector,
    degradation: &mut DegradationReport,
) -> Result<LayerMapping, CoreError> {
    build_layer_mapping_observed_on(
        ThreadPool::global(),
        in_coords,
        kernel_size,
        conv_stride,
        dilation,
        config,
        device,
        faults,
        degradation,
    )
}

/// [`build_layer_mapping_observed`] on an explicit runtime pool: the map
/// search fans out across kernel offsets on the engine's shared workers
/// (the engine passes its context pool so `config.threads` governs mapping
/// too). Table construction stays serial — insertion order defines the
/// stored indices.
///
/// # Errors
///
/// As [`build_layer_mapping_observed`].
#[allow(clippy::too_many_arguments)] // mirrors the engine's disjoint Context borrows
pub fn build_layer_mapping_observed_on(
    pool: &ThreadPool,
    in_coords: &[Coord],
    kernel_size: usize,
    conv_stride: i32,
    dilation: i32,
    config: &OptimizationConfig,
    device: &DeviceProfile,
    faults: &mut FaultInjector,
    degradation: &mut DegradationReport,
) -> Result<LayerMapping, CoreError> {
    if in_coords.is_empty() {
        return Err(CoreError::EmptyInput);
    }
    if dilation < 1 || (dilation > 1 && conv_stride > 1) {
        return Err(CoreError::Coords(CoordsError::ZeroStride));
    }
    let mut latency = Micros::ZERO;

    // 1. Output coordinates.
    let out_coords = if conv_stride == 1 {
        in_coords.to_vec()
    } else {
        let result = if config.fused_downsample {
            fused_output_coords(in_coords, kernel_size, conv_stride, Boundary::unbounded())?
        } else {
            staged_output_coords(in_coords, kernel_size, conv_stride, Boundary::unbounded())?
        };
        latency +=
            stats_latency(&result.stats, device, false, 1.0, config.simplified_mapping_kernels);
        result.coords
    };

    // 2. Index construction over the input coordinates.
    let (index, build_stats, kind): (Box<dyn CoordIndex>, MappingStats, TableKind) =
        build_table(in_coords, config, faults, degradation)?;
    latency += stats_latency(
        &build_stats,
        device,
        true,
        kind.serialization(),
        true, // construction is a simple streaming-insert kernel in all systems
    );

    // 3. Map search.
    let symmetric =
        config.symmetric_map_search && conv_stride == 1 && kernel_size % 2 == 1 && kernel_size > 1;
    let map = if symmetric {
        search_submanifold_symmetric_dilated_on(
            pool,
            in_coords,
            index.as_ref(),
            kernel_size,
            dilation,
        )?
    } else {
        search_dilated_on(pool, &out_coords, index.as_ref(), kernel_size, conv_stride, dilation)?
    };
    latency += stats_latency(
        &map.stats,
        device,
        true,
        kind.serialization(),
        config.simplified_mapping_kernels,
    );

    Ok(LayerMapping { map, out_coords, latency, table: kind, index })
}

/// Compacts a freshly built search index into the succinct MPHF
/// representation before it enters the repeated-geometry cache
/// ([`crate::context::CachedMap`]).
///
/// Dynamic map search probes the grid/hashmap machinery for build speed, but
/// the *cached* copy is retained read-only for the rest of the run (and for
/// the lifetime of any frozen plan built from it), where the minimal perfect
/// hash answers the same queries in a fraction of the memory. Only the
/// default [`CoordIndexChoice::Auto`] compacts — an explicitly pinned
/// hashmap/grid choice is preserved so the legacy representations stay
/// exercisable — and coordinate sets without a perfect hash (duplicates)
/// keep the original index. Lookup results are identical either way.
pub(crate) fn compact_cached_index(
    index: Box<dyn CoordIndex>,
    coords: &[Coord],
    config: &OptimizationConfig,
) -> std::sync::Arc<dyn CoordIndex> {
    if coord_index_choice(config) != CoordIndexChoice::Auto {
        return std::sync::Arc::from(index);
    }
    match MphfIndex::build(coords) {
        Ok((mphf, _accesses)) => std::sync::Arc::new(mphf),
        Err(_) => std::sync::Arc::from(index),
    }
}

fn build_table(
    coords: &[Coord],
    config: &OptimizationConfig,
    faults: &mut FaultInjector,
    degradation: &mut DegradationReport,
) -> Result<(Box<dyn CoordIndex>, MappingStats, TableKind), CoreError> {
    let hash = |coords: &[Coord]| {
        let (t, probes) = CoordHashMap::build(coords);
        let stats = MappingStats { reads: 0, writes: probes, kernel_launches: 1, candidate_ops: 0 };
        (Box::new(t) as Box<dyn CoordIndex>, stats, TableKind::Hashmap)
    };
    match coord_index_choice(config) {
        CoordIndexChoice::Hashmap => return Ok(hash(coords)),
        CoordIndexChoice::Mphf => {
            return match MphfIndex::build(coords) {
                Ok((t, accesses)) => {
                    let stats = MappingStats {
                        reads: 0,
                        writes: accesses,
                        kernel_launches: 1,
                        candidate_ops: 0,
                    };
                    Ok((Box::new(t) as Box<dyn CoordIndex>, stats, TableKind::Mphf))
                }
                // Duplicate coordinates have no perfect hash; keep the
                // hashmap's keep-first semantics so lookups are unchanged.
                Err(CoordsError::DuplicateCoordinate(_)) => Ok(hash(coords)),
                Err(e) => Err(e.into()),
            };
        }
        // Auto with a hashmap search strategy: the legacy dynamic path.
        CoordIndexChoice::Auto if config.map_search == MapSearchStrategy::Hashmap => {
            return Ok(hash(coords));
        }
        // Grid (forced) or Auto with grid/auto search: try the dense grid
        // below.
        CoordIndexChoice::Grid | CoordIndexChoice::Auto => {}
    }
    // Try the dense grid, degrade to the hashmap when construction fails
    // (SpConv-style engines do the same silently; here the fallback is
    // recorded so operators can see it happened).
    let forced = faults.should_fail(FaultSite::GridTableBuild);
    let attempt = if forced {
        Err(CoordsError::GridTooLarge { cells: u64::MAX, limit: config.grid_cell_limit })
    } else {
        GridTable::build(coords, config.grid_cell_limit).map(|(t, accesses)| {
            let stats =
                MappingStats { reads: 0, writes: accesses, kernel_launches: 1, candidate_ops: 0 };
            (Box::new(t) as Box<dyn CoordIndex>, stats, TableKind::Grid)
        })
    };
    match attempt {
        Ok(t) => Ok(t),
        Err(CoordsError::GridTooLarge { .. }) => {
            degradation.record(
                FaultSite::GridTableBuild,
                if forced {
                    "injected grid-table failure; hashmap fallback"
                } else {
                    "grid table over cell budget; hashmap fallback"
                },
            );
            Ok(hash(coords))
        }
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizationConfig;

    fn coords_blob(n: i32) -> Vec<Coord> {
        let mut v = Vec::new();
        for x in 0..n {
            for y in 0..n {
                v.push(Coord::new(0, x, y, (x * y) % n));
            }
        }
        v
    }

    fn device() -> DeviceProfile {
        DeviceProfile::rtx_2080ti()
    }

    /// The process-wide `TORCHSPARSE_COORD_INDEX` override wins over the
    /// `map_search`/`coord_index` fields some tests below pin; any forced
    /// value invalidates their table-kind premises, so they skip.
    fn coord_index_forced() -> bool {
        std::env::var("TORCHSPARSE_COORD_INDEX").is_ok()
    }

    #[test]
    fn empty_input_rejected() {
        let cfg = OptimizationConfig::torchsparse();
        assert_eq!(
            build_layer_mapping(&[], 3, 1, &cfg, &device()).unwrap_err(),
            CoreError::EmptyInput
        );
    }

    #[test]
    fn submanifold_map_has_identity_center() {
        let coords = coords_blob(8);
        let cfg = OptimizationConfig::torchsparse();
        let m = build_layer_mapping(&coords, 3, 1, &cfg, &device()).unwrap();
        assert_eq!(m.out_coords, coords);
        assert_eq!(m.map.entries(13).len(), coords.len());
    }

    #[test]
    fn all_configs_produce_same_map() {
        // Whatever tables, fusion, or symmetry a config picks, the *map*
        // must be identical — optimizations never change semantics.
        let coords = coords_blob(7);
        let reference =
            build_layer_mapping(&coords, 3, 1, &OptimizationConfig::baseline_fp32(), &device())
                .unwrap();
        for cfg in [
            OptimizationConfig::torchsparse(),
            OptimizationConfig::minkowski_engine(),
            OptimizationConfig::spconv_fp32(),
        ] {
            let m = build_layer_mapping(&coords, 3, 1, &cfg, &device()).unwrap();
            for n in 0..27 {
                let mut a: Vec<_> = reference.map.entries(n).to_vec();
                let mut b: Vec<_> = m.map.entries(n).to_vec();
                a.sort_by_key(|e| (e.output, e.input));
                b.sort_by_key(|e| (e.output, e.input));
                assert_eq!(a, b, "config {cfg:?} offset {n}");
            }
        }
    }

    #[test]
    fn strided_mapping_agrees_across_fusion() {
        let coords = coords_blob(9);
        let mut fused_cfg = OptimizationConfig::torchsparse();
        fused_cfg.symmetric_map_search = false;
        let mut staged_cfg = OptimizationConfig::baseline_fp32();
        staged_cfg.map_search = MapSearchStrategy::Grid;
        let a = build_layer_mapping(&coords, 2, 2, &fused_cfg, &device()).unwrap();
        let b = build_layer_mapping(&coords, 2, 2, &staged_cfg, &device()).unwrap();
        assert_eq!(a.out_coords, b.out_coords);
        assert_eq!(a.map.total_entries(), b.map.total_entries());
    }

    #[test]
    fn grid_faster_than_hashmap() {
        if coord_index_forced() {
            return;
        }
        // §6.3: grid-based search beats the conventional hashmap (2.7x on
        // large scenes; launch overhead shrinks the gap at this test size).
        let coords = coords_blob(96);
        let mut hash_cfg = OptimizationConfig::baseline_fp32();
        hash_cfg.map_search = MapSearchStrategy::Hashmap;
        let mut grid_cfg = hash_cfg.clone();
        grid_cfg.map_search = MapSearchStrategy::Grid;
        let h = build_layer_mapping(&coords, 3, 1, &hash_cfg, &device()).unwrap();
        let g = build_layer_mapping(&coords, 3, 1, &grid_cfg, &device()).unwrap();
        assert_eq!(h.table, TableKind::Hashmap);
        assert_eq!(g.table, TableKind::Grid);
        let ratio = h.latency.as_f64() / g.latency.as_f64();
        assert!(ratio > 1.3, "grid should be clearly faster, ratio {ratio}");
    }

    #[test]
    fn fused_downsample_faster() {
        let coords = coords_blob(24);
        let mut fused = OptimizationConfig::torchsparse();
        fused.symmetric_map_search = false;
        let mut staged = fused.clone();
        staged.fused_downsample = false;
        let f = build_layer_mapping(&coords, 2, 2, &fused, &device()).unwrap();
        let s = build_layer_mapping(&coords, 2, 2, &staged, &device()).unwrap();
        assert!(s.latency > f.latency);
    }

    #[test]
    fn symmetry_reduces_latency() {
        let coords = coords_blob(24);
        let mut sym = OptimizationConfig::torchsparse();
        let mut nosym = sym.clone();
        sym.symmetric_map_search = true;
        nosym.symmetric_map_search = false;
        let a = build_layer_mapping(&coords, 3, 1, &sym, &device()).unwrap();
        let b = build_layer_mapping(&coords, 3, 1, &nosym, &device()).unwrap();
        assert!(b.latency > a.latency);
    }

    #[test]
    fn simplified_kernels_reduce_latency() {
        let coords = coords_blob(24);
        let mut simp = OptimizationConfig::baseline_fp32();
        simp.simplified_mapping_kernels = true;
        let base = OptimizationConfig::baseline_fp32();
        let a = build_layer_mapping(&coords, 3, 1, &simp, &device()).unwrap();
        let b = build_layer_mapping(&coords, 3, 1, &base, &device()).unwrap();
        assert!(b.latency > a.latency);
    }

    #[test]
    fn auto_falls_back_to_hashmap_for_huge_boxes() {
        if coord_index_forced() {
            return;
        }
        let mut coords = coords_blob(4);
        coords.push(Coord::new(0, 100_000, 100_000, 100_000));
        let mut cfg = OptimizationConfig::torchsparse();
        cfg.grid_cell_limit = 1 << 20;
        let m = build_layer_mapping(&coords, 3, 1, &cfg, &device()).unwrap();
        assert_eq!(m.table, TableKind::Hashmap);
    }

    #[test]
    fn organic_grid_fallback_is_recorded() {
        if coord_index_forced() {
            return;
        }
        let mut coords = coords_blob(4);
        coords.push(Coord::new(0, 100_000, 100_000, 100_000));
        let mut cfg = OptimizationConfig::torchsparse();
        cfg.grid_cell_limit = 1 << 20;
        let mut faults = FaultInjector::disarmed();
        let mut report = DegradationReport::new();
        let m = build_layer_mapping_observed(
            &coords,
            3,
            1,
            1,
            &cfg,
            &device(),
            &mut faults,
            &mut report,
        )
        .unwrap();
        assert_eq!(m.table, TableKind::Hashmap);
        assert_eq!(report.count(FaultSite::GridTableBuild), 1);
        assert!(report.events()[0].cause.contains("over cell budget"));
    }

    #[test]
    fn injected_grid_fault_degrades_and_produces_same_map() {
        if coord_index_forced() {
            return;
        }
        let coords = coords_blob(8);
        let cfg = OptimizationConfig::torchsparse();
        let healthy = build_layer_mapping(&coords, 3, 1, &cfg, &device()).unwrap();
        assert_eq!(healthy.table, TableKind::Grid);

        let mut faults = FaultInjector::disarmed();
        faults.arm(FaultSite::GridTableBuild);
        let mut report = DegradationReport::new();
        let degraded = build_layer_mapping_observed(
            &coords,
            3,
            1,
            1,
            &cfg,
            &device(),
            &mut faults,
            &mut report,
        )
        .unwrap();
        assert_eq!(degraded.table, TableKind::Hashmap);
        assert_eq!(report.count(FaultSite::GridTableBuild), 1);
        // The fallback table yields the identical kernel map.
        assert_eq!(healthy.map.total_entries(), degraded.map.total_entries());
        for n in 0..27 {
            let mut a: Vec<_> = healthy.map.entries(n).to_vec();
            let mut b: Vec<_> = degraded.map.entries(n).to_vec();
            a.sort_by_key(|e| (e.output, e.input));
            b.sort_by_key(|e| (e.output, e.input));
            assert_eq!(a, b, "offset {n}");
        }
    }

    #[test]
    fn hashmap_strategy_never_probes_grid_fault() {
        if coord_index_forced() {
            return;
        }
        let coords = coords_blob(6);
        let mut cfg = OptimizationConfig::baseline_fp32();
        cfg.map_search = MapSearchStrategy::Hashmap;
        let mut faults = FaultInjector::disarmed();
        faults.arm(FaultSite::GridTableBuild);
        let mut report = DegradationReport::new();
        build_layer_mapping_observed(&coords, 3, 1, 1, &cfg, &device(), &mut faults, &mut report)
            .unwrap();
        assert!(faults.is_armed(), "no grid build happens under Hashmap strategy");
        assert!(report.is_empty());
    }
}
