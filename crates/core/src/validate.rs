//! Input validation for tensors entering the engine.
//!
//! Point clouds arriving from sensors, decompression, or network transport
//! can carry NaN intensities, duplicated voxels, or coordinates so spread
//! out that a dense grid table over their bounding box would exhaust
//! memory. [`Engine::run`](crate::Engine::run) screens every input against
//! the [`ValidationConfig`] in its [`OptimizationConfig`]
//! (crate::OptimizationConfig) before any layer executes, under one of
//! three [`ValidationPolicy`] modes:
//!
//! - **Trust**: skip all checks (the seed engine's behavior, and the
//!   default — validation is opt-in so benchmark configurations measure
//!   only kernel cost).
//! - **Reject**: fail fast with a typed [`CoreError`] — never a panic —
//!   naming exactly what was wrong.
//! - **Sanitize**: repair what can be repaired (zero non-finite features,
//!   drop duplicate coordinates, shed points over budget), record every
//!   repair in the [`DegradationReport`](crate::DegradationReport), and run
//!   on the cleaned tensor.

use crate::error::CoreError;
use crate::faults::{DegradationReport, FaultInjector, FaultSite};
use crate::sparse_tensor::SparseTensor;
use std::collections::HashSet;
use torchsparse_coords::{Coord, CoordsError};

/// What the engine does with inputs that fail validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ValidationPolicy {
    /// Perform no checks; malformed input produces undefined numerics (but
    /// still no panics on the engine's own paths).
    #[default]
    Trust,
    /// Return a typed [`CoreError`] describing the first violation.
    Reject,
    /// Repair the input where possible and record the repairs as
    /// [`FaultSite::InputValidation`] degradation events.
    Sanitize,
}

/// Validation policy plus the resource budget it enforces.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationConfig {
    /// Checking mode.
    pub policy: ValidationPolicy,
    /// Maximum accepted input points; `None` = unlimited.
    pub max_points: Option<usize>,
    /// Maximum grid cells the coordinate bounding box may require. Inputs
    /// over this bound would force enormous dense tables; `Reject` refuses
    /// them, `Sanitize` lets them through but pre-records the grid→hashmap
    /// degradation they will cause.
    pub max_grid_cells: u64,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            policy: ValidationPolicy::Trust,
            max_points: None,
            max_grid_cells: u64::MAX,
        }
    }
}

impl ValidationConfig {
    /// Trust mode: no checks (the default).
    pub fn trust() -> ValidationConfig {
        ValidationConfig::default()
    }

    /// Reject mode with unlimited budgets: malformed inputs become typed
    /// errors, well-formed inputs of any size pass.
    pub fn reject() -> ValidationConfig {
        ValidationConfig { policy: ValidationPolicy::Reject, ..ValidationConfig::default() }
    }

    /// Sanitize mode with unlimited budgets.
    pub fn sanitize() -> ValidationConfig {
        ValidationConfig { policy: ValidationPolicy::Sanitize, ..ValidationConfig::default() }
    }

    /// Builder: sets the point budget.
    #[must_use]
    pub fn with_max_points(mut self, max_points: usize) -> ValidationConfig {
        self.max_points = Some(max_points);
        self
    }

    /// Builder: sets the grid-cell budget.
    #[must_use]
    pub fn with_max_grid_cells(mut self, max_grid_cells: u64) -> ValidationConfig {
        self.max_grid_cells = max_grid_cells;
        self
    }
}

/// Grid cells the bounding box of `coords` requires, saturating at
/// `u64::MAX` on 64-bit overflow. Empty input needs zero cells.
///
/// Mirrors the extent arithmetic of `GridTable::build` (batch included),
/// so a tensor passing the extent check cannot blow up table construction.
pub fn bounding_box_cells(coords: &[Coord]) -> u64 {
    let Some(first) = coords.first() else { return 0 };
    let mut lo = [first.batch, first.x, first.y, first.z];
    let mut hi = lo;
    for c in coords {
        for (i, v) in [c.batch, c.x, c.y, c.z].into_iter().enumerate() {
            lo[i] = lo[i].min(v);
            hi[i] = hi[i].max(v);
        }
    }
    let mut cells: u64 = 1;
    for i in 0..4 {
        let span = (hi[i] as i64 - lo[i] as i64 + 1) as u64;
        cells = match cells.checked_mul(span) {
            Some(c) => c,
            None => return u64::MAX,
        };
    }
    cells
}

/// Screens `input` according to `cfg`.
///
/// Returns `Ok(None)` when the tensor passes unchanged and
/// `Ok(Some(cleaned))` when sanitization rewrote it. The
/// [`FaultSite::ResourceBudget`] injector site is probed here: an injected
/// budget fault treats half the input as the available budget.
///
/// # Errors
///
/// Under [`ValidationPolicy::Reject`]: [`CoreError::BudgetExceeded`],
/// [`CoreError::ExtentOverflow`], [`CoreError::NonFiniteFeatures`], or
/// [`CoreError::Coords`] with
/// [`DuplicateCoordinate`](torchsparse_coords::CoordsError::DuplicateCoordinate),
/// in that order of precedence.
pub fn validate_input(
    input: &SparseTensor,
    cfg: &ValidationConfig,
    faults: &mut FaultInjector,
    report: &mut DegradationReport,
) -> Result<Option<SparseTensor>, CoreError> {
    if cfg.policy == ValidationPolicy::Trust || input.is_empty() {
        return Ok(None);
    }
    let sanitize = cfg.policy == ValidationPolicy::Sanitize;
    let channels = input.channels();
    // Working copy, materialized only once a repair actually happens.
    let mut cur: Option<(Vec<Coord>, Vec<f32>)> = None;

    // 1. Point budget. An injected fault simulates memory pressure by
    //    halving the available budget (always at least one point survives).
    let forced = faults.should_fail(FaultSite::ResourceBudget);
    let effective_limit = if forced {
        let pressured = (input.len() / 2).max(1);
        Some(cfg.max_points.map_or(pressured, |m| m.min(pressured)))
    } else {
        cfg.max_points
    };
    if let Some(limit) = effective_limit {
        if input.len() > limit {
            if !sanitize {
                return Err(CoreError::BudgetExceeded { points: input.len(), limit });
            }
            cur = Some((
                input.coords()[..limit].to_vec(),
                input.feats().as_slice()[..limit * channels].to_vec(),
            ));
            report.record(
                FaultSite::ResourceBudget,
                if forced {
                    "injected budget exhaustion; input shed to half"
                } else {
                    "input over point budget; excess points shed"
                },
            );
        }
    }

    // 2. Coordinate extent: a bounding box needing more cells than the
    //    budget would make the dense grid table unbuildable.
    let cells = {
        let cv = cur.as_ref().map_or(input.coords(), |(c, _)| c);
        bounding_box_cells(cv)
    };
    if cells > cfg.max_grid_cells {
        if !sanitize {
            return Err(CoreError::ExtentOverflow { cells, limit: cfg.max_grid_cells });
        }
        // Not repairable without moving points; the mapping layer will fall
        // back to the hashmap, so pre-record the cause here.
        report.record(
            FaultSite::InputValidation,
            "coordinate extent over grid budget; hashmap mapping expected",
        );
    }

    // 3. Non-finite features.
    let non_finite = {
        let fv = cur.as_ref().map_or(input.feats().as_slice(), |(_, f)| f.as_slice());
        fv.iter().filter(|v| !v.is_finite()).count()
    };
    if non_finite > 0 {
        if !sanitize {
            return Err(CoreError::NonFiniteFeatures { count: non_finite });
        }
        let (_, f) =
            cur.get_or_insert_with(|| (input.coords().to_vec(), input.feats().as_slice().to_vec()));
        for v in f.iter_mut() {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        report.record(FaultSite::InputValidation, "non-finite feature values zeroed");
    }

    // 4. Duplicate coordinates. Keep the first occurrence of each voxel so
    //    sanitized output order matches input order.
    let keep: Vec<usize> = {
        let cv = cur.as_ref().map_or(input.coords(), |(c, _)| c);
        let mut seen: HashSet<Coord> = HashSet::with_capacity(cv.len());
        (0..cv.len()).filter(|&i| seen.insert(cv[i])).collect()
    };
    let total = cur.as_ref().map_or(input.len(), |(c, _)| c.len());
    if keep.len() != total {
        if !sanitize {
            let cv = cur.as_ref().map_or(input.coords(), |(c, _)| c);
            let mut kept = keep.iter().copied().peekable();
            let mut dup = cv[0];
            for (i, &c) in cv.iter().enumerate() {
                if kept.peek() == Some(&i) {
                    kept.next();
                } else {
                    dup = c;
                    break;
                }
            }
            return Err(CoreError::Coords(CoordsError::DuplicateCoordinate(dup)));
        }
        let (src_coords, src_feats) = match cur.take() {
            Some((c, f)) => (c, f),
            None => (input.coords().to_vec(), input.feats().as_slice().to_vec()),
        };
        let coords: Vec<Coord> = keep.iter().map(|&i| src_coords[i]).collect();
        let mut feats: Vec<f32> = Vec::with_capacity(keep.len() * channels);
        for &i in &keep {
            feats.extend_from_slice(&src_feats[i * channels..(i + 1) * channels]);
        }
        cur = Some((coords, feats));
        report.record(FaultSite::InputValidation, "duplicate coordinates dropped");
    }

    match cur {
        None => Ok(None),
        Some((coords, feats)) => {
            let rows = coords.len();
            let matrix = torchsparse_tensor::Matrix::from_vec(rows, channels, feats)?;
            Ok(Some(SparseTensor::with_stride(coords, matrix, input.stride())?))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torchsparse_tensor::Matrix;

    fn tensor(coords: Vec<Coord>, feats: Vec<f32>) -> SparseTensor {
        let n = coords.len();
        let c = feats.len() / n.max(1);
        SparseTensor::new(coords, Matrix::from_vec(n, c, feats).unwrap()).unwrap()
    }

    fn clean_input() -> SparseTensor {
        tensor(
            vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0), Coord::new(0, 0, 2, 1)],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
    }

    fn check(
        input: &SparseTensor,
        cfg: &ValidationConfig,
    ) -> (Result<Option<SparseTensor>, CoreError>, DegradationReport) {
        let mut faults = FaultInjector::disarmed();
        let mut report = DegradationReport::new();
        let out = validate_input(input, cfg, &mut faults, &mut report);
        (out, report)
    }

    #[test]
    fn trust_mode_skips_everything() {
        let bad = tensor(vec![Coord::new(0, 0, 0, 0), Coord::new(0, 0, 0, 0)], vec![f32::NAN, 1.0]);
        let (out, report) = check(&bad, &ValidationConfig::trust());
        assert!(out.unwrap().is_none());
        assert!(report.is_empty());
    }

    #[test]
    fn clean_input_passes_unchanged() {
        for cfg in [ValidationConfig::reject(), ValidationConfig::sanitize()] {
            let (out, report) = check(&clean_input(), &cfg);
            assert!(out.unwrap().is_none());
            assert!(report.is_empty());
        }
    }

    #[test]
    fn reject_flags_non_finite_features() {
        let bad = tensor(
            vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)],
            vec![1.0, f32::INFINITY, f32::NAN, 4.0],
        );
        let (out, _) = check(&bad, &ValidationConfig::reject());
        assert_eq!(out.unwrap_err(), CoreError::NonFiniteFeatures { count: 2 });
    }

    #[test]
    fn sanitize_zeroes_non_finite_features() {
        let bad = tensor(
            vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)],
            vec![1.0, f32::INFINITY, f32::NAN, 4.0],
        );
        let (out, report) = check(&bad, &ValidationConfig::sanitize());
        let cleaned = out.unwrap().expect("rewritten");
        assert_eq!(cleaned.feats().as_slice(), &[1.0, 0.0, 0.0, 4.0]);
        assert_eq!(report.count(FaultSite::InputValidation), 1);
    }

    #[test]
    fn reject_flags_duplicates() {
        let bad = tensor(vec![Coord::new(0, 1, 2, 3), Coord::new(0, 1, 2, 3)], vec![1.0, 2.0]);
        let (out, _) = check(&bad, &ValidationConfig::reject());
        assert_eq!(
            out.unwrap_err(),
            CoreError::Coords(CoordsError::DuplicateCoordinate(Coord::new(0, 1, 2, 3)))
        );
    }

    #[test]
    fn sanitize_keeps_first_occurrence_of_duplicates() {
        let bad = tensor(
            vec![Coord::new(0, 1, 0, 0), Coord::new(0, 2, 0, 0), Coord::new(0, 1, 0, 0)],
            vec![10.0, 20.0, 30.0],
        );
        let (out, report) = check(&bad, &ValidationConfig::sanitize());
        let cleaned = out.unwrap().expect("rewritten");
        assert_eq!(cleaned.coords(), &[Coord::new(0, 1, 0, 0), Coord::new(0, 2, 0, 0)]);
        assert_eq!(cleaned.feats().as_slice(), &[10.0, 20.0]);
        cleaned.validate_unique().unwrap();
        assert_eq!(report.count(FaultSite::InputValidation), 1);
    }

    #[test]
    fn budget_reject_and_sanitize() {
        let input = clean_input();
        let cfg = ValidationConfig::reject().with_max_points(2);
        let (out, _) = check(&input, &cfg);
        assert_eq!(out.unwrap_err(), CoreError::BudgetExceeded { points: 3, limit: 2 });

        let cfg = ValidationConfig::sanitize().with_max_points(2);
        let (out, report) = check(&input, &cfg);
        let cleaned = out.unwrap().expect("rewritten");
        assert_eq!(cleaned.len(), 2);
        assert_eq!(cleaned.feats().as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(report.count(FaultSite::ResourceBudget), 1);
    }

    #[test]
    fn injected_budget_fault_halves_input() {
        let mut faults = FaultInjector::disarmed();
        faults.arm(FaultSite::ResourceBudget);
        let mut report = DegradationReport::new();
        let input = tensor(
            (0..8).map(|x| Coord::new(0, x, 0, 0)).collect(),
            (0..8).map(|v| v as f32).collect(),
        );
        let out = validate_input(&input, &ValidationConfig::sanitize(), &mut faults, &mut report)
            .unwrap()
            .expect("rewritten");
        assert_eq!(out.len(), 4);
        assert_eq!(report.count(FaultSite::ResourceBudget), 1);
        assert_eq!(faults.injected(), &[FaultSite::ResourceBudget]);
    }

    #[test]
    fn extent_overflow_detected() {
        let wide = tensor(
            vec![
                Coord::new(0, i32::MIN, i32::MIN, i32::MIN),
                Coord::new(0, i32::MAX, i32::MAX, i32::MAX),
            ],
            vec![1.0, 2.0],
        );
        // 2^32 cells per spatial axis overflows u64 in the product.
        assert_eq!(bounding_box_cells(wide.coords()), u64::MAX);

        let cfg = ValidationConfig::reject().with_max_grid_cells(1 << 28);
        let (out, _) = check(&wide, &cfg);
        assert_eq!(out.unwrap_err(), CoreError::ExtentOverflow { cells: u64::MAX, limit: 1 << 28 });

        let cfg = ValidationConfig::sanitize().with_max_grid_cells(1 << 28);
        let (out, report) = check(&wide, &cfg);
        assert!(out.unwrap().is_none(), "extent is recorded, not rewritten");
        assert_eq!(report.count(FaultSite::InputValidation), 1);
    }

    #[test]
    fn bounding_box_cells_counts_batch_axis() {
        let coords = vec![Coord::new(0, 0, 0, 0), Coord::new(1, 1, 2, 3)];
        // batch 2 * x 2 * y 3 * z 4
        assert_eq!(bounding_box_cells(&coords), 48);
        assert_eq!(bounding_box_cells(&[]), 0);
    }

    #[test]
    fn compound_sanitization_applies_all_repairs() {
        let bad = tensor(
            vec![
                Coord::new(0, 0, 0, 0),
                Coord::new(0, 0, 0, 0),
                Coord::new(0, 1, 0, 0),
                Coord::new(0, 2, 0, 0),
            ],
            vec![f32::NAN, 1.0, 2.0, f32::NEG_INFINITY],
        );
        let cfg = ValidationConfig::sanitize().with_max_points(3);
        let (out, report) = check(&bad, &cfg);
        let cleaned = out.unwrap().expect("rewritten");
        // Budget sheds the 4th point, dup drop removes the 2nd, NaN zeroed.
        assert_eq!(cleaned.coords(), &[Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)]);
        assert_eq!(cleaned.feats().as_slice(), &[0.0, 2.0]);
        assert_eq!(report.total(), 3);
    }
}
