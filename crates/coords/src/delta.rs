//! Incremental coordinate-set deltas for temporal re-planning.
//!
//! Successive LiDAR sweeps churn only a few percent of their voxels, yet a
//! kernel-map rebuild pays the full `n x K^3` probe bill every time the
//! coordinate set changes at all. This module provides the three primitives
//! an incremental re-planner needs:
//!
//! - [`diff_coords`]: classify a new coordinate set against a frozen old
//!   one (via its [`CoordIndex`]) into kept / inserted / removed rows,
//!   producing the old-row -> new-row remapping.
//! - [`DeltaIndex`]: a layered [`CoordIndex`] over the *new* set — the old
//!   index answers the stable majority, a small hashmap side-table answers
//!   the inserted voxels, and the remapping translates rows. Stacking one
//!   per patched frame keeps patch cost proportional to churn; the
//!   [`CoordIndex::delta_depth`] counter lets callers compact the chain
//!   back to a fresh index before queries degrade.
//! - [`patch_submanifold_map`] / [`patch_strided_map`]: rebuild only the
//!   kernel-map entries whose input or output row touches a changed voxel,
//!   reproducing — entry for entry, in emission order — the map a
//!   from-scratch search over the new set would build.
//!
//! The order-reproduction argument: per offset, a forward search emits at
//! most one entry per output row (the input coordinate `s*q + δ` is unique
//! for a fixed output and offset) in ascending output order, and the
//! mirrored offsets of a symmetric search emit at most one entry per
//! *input* row in ascending input order. A patched offset therefore only
//! has to produce the same entry *set* and sort it by the offset's emission
//! key to be indistinguishable from a fresh search.

use crate::coord::Coord;
use crate::hashmap::CoordHashMap;
use crate::kernel_map::{KernelMap, MapEntry};
use crate::offsets::{center_index, has_mirror_property, kernel_offsets, kernel_volume};
use crate::table::{CoordIndex, CoordTable, MappingStats};
use crate::CoordsError;
use std::sync::Arc;

/// Sentinel in [`CoordDelta::remap`] for an old row absent from the new set.
pub const REMOVED_ROW: u32 = u32::MAX;

/// The classified difference between an old coordinate set and a new one.
#[derive(Debug, Clone)]
pub struct CoordDelta {
    /// Old row -> new row; [`REMOVED_ROW`] for rows dropped by the delta.
    pub remap: Vec<u32>,
    /// New rows whose coordinate is absent from the old set, ascending.
    pub inserted: Vec<u32>,
    /// Number of old rows absent from the new set.
    pub removed: usize,
    /// Memory probes spent classifying (old-index queries).
    pub probes: u64,
}

impl CoordDelta {
    /// The identity delta over `len` rows: nothing inserted, nothing
    /// removed, every row keeps its position.
    pub fn identity(len: usize) -> CoordDelta {
        CoordDelta { remap: (0..len as u32).collect(), inserted: Vec::new(), removed: 0, probes: 0 }
    }

    /// Whether the delta keeps every row in place (new set == old set,
    /// order included).
    pub fn is_identity(&self) -> bool {
        self.inserted.is_empty()
            && self.removed == 0
            && self.remap.iter().enumerate().all(|(i, &r)| r == i as u32)
    }

    /// Churned fraction: `(inserted + removed) / max(|old|, |new|)`.
    pub fn churn(&self, new_len: usize) -> f64 {
        let denom = self.remap.len().max(new_len).max(1);
        (self.inserted.len() + self.removed) as f64 / denom as f64
    }
}

/// Classifies `new_coords` against the old set behind `old_index` (which
/// must index exactly `old_len` coordinates, assigning rows by position).
///
/// # Errors
///
/// [`CoordsError::DuplicateCoordinate`] when `new_coords` contains the same
/// coordinate twice — a duplicated set has no row bijection to patch
/// against, so callers fall back to a full rebuild (which applies its own
/// keep-first semantics).
pub fn diff_coords(
    old_index: &dyn CoordIndex,
    old_len: usize,
    new_coords: &[Coord],
) -> Result<CoordDelta, CoordsError> {
    let mut remap = vec![REMOVED_ROW; old_len];
    let mut inserted = Vec::new();
    let mut probes = 0u64;
    let mut seen_inserted = CoordHashMap::with_capacity(16);
    for (new_row, &c) in new_coords.iter().enumerate() {
        let (hit, p) = old_index.query(c);
        probes += p;
        match hit {
            Some(old_row) => {
                let slot = &mut remap[old_row as usize];
                if *slot != REMOVED_ROW {
                    return Err(CoordsError::DuplicateCoordinate(c));
                }
                *slot = new_row as u32;
            }
            None => {
                // Track inserted coordinates in a scratch table purely to
                // detect duplicates among them (kept rows are guarded by
                // the remap-slot check above).
                probes += seen_inserted.insert(c, inserted.len() as u32);
                if seen_inserted.len() != inserted.len() + 1 {
                    return Err(CoordsError::DuplicateCoordinate(c));
                }
                inserted.push(new_row as u32);
            }
        }
    }
    let removed = remap.iter().filter(|&&r| r == REMOVED_ROW).count();
    Ok(CoordDelta { remap, inserted, removed, probes })
}

/// A layered index over a patched coordinate set: the frozen old index
/// (shared via `Arc`, typically an MPHF) resolves the kept majority, a
/// small hashmap side-table resolves the inserted voxels, and the delta's
/// remapping translates old rows to new ones.
///
/// Queries are honest about probes: a hit in the side-table costs its
/// hashmap probes; a miss there falls through to the full base-index query.
/// Each stacked layer adds one to [`CoordIndex::delta_depth`]; callers
/// compact chains past a depth or side-fraction threshold by rebuilding a
/// fresh index over the full new set.
#[derive(Debug)]
pub struct DeltaIndex {
    base: Arc<dyn CoordIndex>,
    remap: Vec<u32>,
    side: CoordHashMap,
    /// Side-table slot -> global new row.
    side_rows: Vec<u32>,
    len: usize,
}

impl DeltaIndex {
    /// Builds the layered index for a classified delta. Returns the index
    /// and the probes spent building the side-table.
    ///
    /// # Errors
    ///
    /// [`CoordsError::EmptyCoordinates`] when `delta.remap.len()` does not
    /// match `base.len()` (the delta was computed against a different set).
    pub fn build(
        base: Arc<dyn CoordIndex>,
        delta: &CoordDelta,
        new_coords: &[Coord],
    ) -> Result<(DeltaIndex, u64), CoordsError> {
        if delta.remap.len() != base.len() {
            return Err(CoordsError::EmptyCoordinates);
        }
        let mut side = CoordHashMap::with_capacity(delta.inserted.len());
        let mut side_rows = Vec::with_capacity(delta.inserted.len());
        let mut probes = 0u64;
        for (slot, &row) in delta.inserted.iter().enumerate() {
            probes += side.insert(new_coords[row as usize], slot as u32);
            side_rows.push(row);
        }
        Ok((
            DeltaIndex { base, remap: delta.remap.clone(), side, side_rows, len: new_coords.len() },
            probes,
        ))
    }

    /// Fraction of this layer's rows answered by the side-table.
    pub fn side_fraction(&self) -> f64 {
        self.side_rows.len() as f64 / self.len.max(1) as f64
    }
}

impl CoordIndex for DeltaIndex {
    fn query(&self, coord: Coord) -> (Option<u32>, u64) {
        let (side_hit, mut probes) = self.side.query(coord);
        if let Some(slot) = side_hit {
            return (Some(self.side_rows[slot as usize]), probes);
        }
        let (base_hit, base_probes) = self.base.query(coord);
        probes += base_probes;
        match base_hit {
            Some(old_row) => match self.remap[old_row as usize] {
                REMOVED_ROW => (None, probes),
                new_row => (Some(new_row), probes),
            },
            None => (None, probes),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> u64 {
        self.base.memory_bytes()
            + (self.remap.len() * 4 + self.side_rows.len() * 4) as u64
            + self.side.memory_bytes()
    }

    fn delta_depth(&self) -> usize {
        self.base.delta_depth() + 1
    }
}

/// Cost split of one map patch, so callers can charge the streaming
/// kept-entry scan and the random membership probes at their real DRAM
/// rates (a fresh search is all-random; a patch is mostly streaming).
#[derive(Debug, Clone, Copy, Default)]
pub struct PatchStats {
    /// Sequential CSR traffic: old entries scanned and new entries written.
    pub stream: MappingStats,
    /// Random traffic: index probes for inserted/removed rows.
    pub random: MappingStats,
}

impl PatchStats {
    /// Both components merged (for the patched map's embedded stats).
    pub fn merged(&self) -> MappingStats {
        let mut m = self.stream;
        m.merge(self.random);
        m
    }

    /// Accumulates another patch's cost split into this one.
    pub fn merge(&mut self, other: &PatchStats) {
        self.stream.merge(other.stream);
        self.random.merge(other.random);
    }
}

/// A row probe used by the patch passes: resolves a changed row to its
/// partner row (if any) plus the memory probes spent doing so.
type Probe<'a> = dyn Fn(u32) -> (Option<u32>, u64) + 'a;

/// Patches one forward-searched offset. Kept entries are remapped in one
/// streaming pass over the old CSR range; then the changed rows are
/// probed: inserted output rows ask `probe_in_of_out` for their input
/// neighbor, and inserted input rows ask `probe_out_of_in` which *kept*
/// output (if any) now sees them. The result is the fresh entry set, not
/// yet sorted into emission order.
#[allow(clippy::too_many_arguments)]
fn patch_forward_offset(
    old_entries: &[MapEntry],
    in_remap: &[u32],
    in_inserted: &[u32],
    out_remap: &[u32],
    out_inserted: &[u32],
    out_is_inserted: &[bool],
    probe_in_of_out: &Probe<'_>,
    probe_out_of_in: &Probe<'_>,
    stats: &mut PatchStats,
) -> Vec<MapEntry> {
    let mut entries = Vec::with_capacity(old_entries.len());
    // Kept pass: one streaming scan of the old CSR range.
    for e in old_entries {
        let i = in_remap[e.input as usize];
        let o = out_remap[e.output as usize];
        if i != REMOVED_ROW && o != REMOVED_ROW {
            entries.push(MapEntry { input: i, output: o });
        }
    }
    stats.stream.reads += old_entries.len() as u64;
    // Inserted outputs: probe for their input neighbor.
    for &k in out_inserted {
        let (hit, p) = probe_in_of_out(k);
        stats.random.reads += p;
        if let Some(j) = hit {
            entries.push(MapEntry { input: j, output: k });
        }
    }
    // Inserted inputs feeding *kept* outputs (inserted outputs already got
    // their entry above).
    for &j in in_inserted {
        let (hit, p) = probe_out_of_in(j);
        stats.random.reads += p;
        if let Some(k) = hit {
            if !out_is_inserted[k as usize] {
                entries.push(MapEntry { input: j, output: k });
            }
        }
    }
    stats.stream.writes += entries.len() as u64;
    entries
}

/// Patches a stride-1 (submanifold) kernel map against a coordinate delta:
/// produces the map a fresh search over `new_coords` would build, entry
/// order included.
///
/// `new_index` must index `new_coords` (typically the [`DeltaIndex`] built
/// from the same `delta`). `symmetric` selects the symmetric-search
/// emission order (identity center, mirrored upper offsets); pass exactly
/// what the fresh search would have used.
///
/// # Errors
///
/// [`CoordsError::ZeroKernelSize`] on a zero kernel size, and
/// [`CoordsError::ZeroStride`] when `dilation == 0` or `symmetric` is
/// requested for an even kernel — the same conditions under which the
/// corresponding fresh searches fail.
pub fn patch_submanifold_map(
    old: &KernelMap,
    delta: &CoordDelta,
    new_coords: &[Coord],
    new_index: &dyn CoordIndex,
    kernel_size: usize,
    dilation: i32,
    symmetric: bool,
) -> Result<(KernelMap, PatchStats), CoordsError> {
    if dilation == 0 || (symmetric && !has_mirror_property(kernel_size)) {
        return Err(CoordsError::ZeroStride);
    }
    let offs = kernel_offsets(kernel_size)?;
    let volume = kernel_volume(kernel_size);
    let mut is_inserted = vec![false; new_coords.len()];
    for &r in &delta.inserted {
        is_inserted[r as usize] = true;
    }
    let mut stats = PatchStats::default();
    let mut per_offset: Vec<Vec<MapEntry>> = vec![Vec::new(); volume];
    let identity = || -> Vec<MapEntry> {
        (0..new_coords.len() as u32).map(|i| MapEntry { input: i, output: i }).collect()
    };
    let patch_one = |n: usize, stats: &mut PatchStats| -> Vec<MapEntry> {
        let o = offs[n];
        let d = [o[0] * dilation, o[1] * dilation, o[2] * dilation];
        let mut entries = patch_forward_offset(
            old.entries(n),
            &delta.remap,
            &delta.inserted,
            &delta.remap,
            &delta.inserted,
            &is_inserted,
            &|k| new_index.query(new_coords[k as usize].offset(d)),
            &|j| new_index.query(new_coords[j as usize].offset_neg(d)),
            stats,
        );
        // Forward emission order: ascending output rows (a total order —
        // at most one entry per output per offset).
        entries.sort_unstable_by_key(|e| e.output);
        entries
    };
    if symmetric {
        // Mirror of the symmetric search: lower offsets are patched
        // forward, the center regenerates as the identity, and each upper
        // offset reuses its lower pair's entries with roles swapped. The
        // fresh symmetric search pushes the mirrored entry in the same
        // forward scan, so the mirrored list in forward-emission order
        // (ascending input after the swap) is exactly its fresh order —
        // no re-sort needed.
        let center = center_index(kernel_size).unwrap_or((volume - 1) / 2);
        for n in 0..center {
            let fwd = patch_one(n, &mut stats);
            per_offset[volume - 1 - n] =
                fwd.iter().map(|e| MapEntry { input: e.output, output: e.input }).collect();
            stats.stream.writes += fwd.len() as u64;
            per_offset[n] = fwd;
        }
        per_offset[center] = identity();
        stats.stream.writes += new_coords.len() as u64;
    } else {
        for (n, slot) in per_offset.iter_mut().enumerate() {
            *slot = if offs[n] == [0, 0, 0] {
                // The center probe of a stride-1 search finds every row at
                // itself: regenerate the identity directly.
                stats.stream.writes += new_coords.len() as u64;
                identity()
            } else {
                patch_one(n, &mut stats)
            };
        }
    }
    stats.stream.kernel_launches += 1;
    let map = KernelMap::from_parts(kernel_size, 1, per_offset, stats.merged())?;
    Ok((map, stats))
}

/// Everything [`patch_strided_map`] produces: the patched map, the new
/// (canonically sorted) output coordinates, and the delta classifying the
/// old output rows against the new ones — the next level's input delta.
#[derive(Debug)]
pub struct StridedPatch {
    /// The patched kernel map, entry order identical to a fresh search.
    pub map: KernelMap,
    /// New downsampled output coordinates, sorted-deduplicated exactly like
    /// a fresh Algorithm-3 derivation.
    pub out_coords: Vec<Coord>,
    /// Old output rows classified against the new output set.
    pub out_delta: CoordDelta,
    /// Cost split of the patch.
    pub stats: PatchStats,
}

/// Patches a strided (downsampling) kernel map and its output coordinate
/// set against a fine-level coordinate delta. Requires `stride >= 1` and
/// dilation 1 (the engine rejects dilated strided convolutions).
///
/// The output set is patched first: an inserted fine voxel proposes the
/// coarse cells it supports (the candidates of Algorithm 3); a removed fine
/// voxel's cells stay only if another fine voxel still supports them
/// (checked by probing the new fine index over the kernel window). The
/// surviving + inserted cells merge into the old sorted output list,
/// reproducing the fresh sorted-dedup order. Map entries then patch per
/// offset like the submanifold case, with input rows classified by the fine
/// delta and output rows by the derived coarse delta.
///
/// # Errors
///
/// [`CoordsError::ZeroKernelSize`] / [`CoordsError::ZeroStride`] on
/// degenerate parameters.
#[allow(clippy::too_many_arguments)]
pub fn patch_strided_map(
    old: &KernelMap,
    old_fine_coords: &[Coord],
    old_out_coords: &[Coord],
    fine_delta: &CoordDelta,
    new_fine_coords: &[Coord],
    new_fine_index: &dyn CoordIndex,
    kernel_size: usize,
    stride: i32,
) -> Result<StridedPatch, CoordsError> {
    if stride <= 0 {
        return Err(CoordsError::ZeroStride);
    }
    let offs = kernel_offsets(kernel_size)?;
    let volume = kernel_volume(kernel_size);
    let mut stats = PatchStats::default();

    // --- Output-set patch -------------------------------------------------
    // Coarse cells proposed by inserted fine voxels, minus those already
    // present, are the inserted outputs; coarse cells proposed by removed
    // fine voxels that no surviving fine voxel supports are the removed
    // outputs. Everything else is untouched.
    let candidates = |p: Coord| -> Vec<Coord> {
        let mut cs = Vec::with_capacity(volume);
        for &d in &offs {
            let q = p.offset_neg(d);
            if q.divisible_by(stride) {
                cs.push(q.divided(stride));
            }
        }
        cs.sort_unstable();
        cs.dedup();
        cs
    };
    let old_has = |c: Coord| old_out_coords.binary_search(&c).is_ok();

    let mut inserted_cells: Vec<Coord> = Vec::new();
    for &j in &fine_delta.inserted {
        for c in candidates(new_fine_coords[j as usize]) {
            stats.stream.reads += 1; // binary-search traffic over the old list
            if !old_has(c) {
                inserted_cells.push(c);
            }
        }
    }
    inserted_cells.sort_unstable();
    inserted_cells.dedup();

    let mut removal_candidates: Vec<Coord> = Vec::new();
    for (old_row, &mapped) in fine_delta.remap.iter().enumerate() {
        if mapped == REMOVED_ROW {
            for c in candidates(old_fine_coords[old_row]) {
                if old_has(c) {
                    removal_candidates.push(c);
                }
            }
        }
    }
    removal_candidates.sort_unstable();
    removal_candidates.dedup();
    let mut removed_cells: Vec<Coord> = Vec::new();
    for &c in &removal_candidates {
        let base = c.scaled(stride);
        let mut supported = false;
        for &d in &offs {
            let (hit, p) = new_fine_index.query(base.offset(d));
            stats.random.reads += p;
            if hit.is_some() {
                supported = true;
                break;
            }
        }
        if !supported {
            removed_cells.push(c);
        }
    }

    // Sorted merge: old outputs minus removed cells, interleaved with the
    // inserted cells — exactly the fresh sorted-dedup derivation, plus the
    // old-row -> new-row classification for the next level.
    let mut out_coords: Vec<Coord> =
        Vec::with_capacity(old_out_coords.len() + inserted_cells.len());
    let mut out_remap = vec![REMOVED_ROW; old_out_coords.len()];
    let mut out_inserted_rows: Vec<u32> = Vec::with_capacity(inserted_cells.len());
    let mut ins_it = inserted_cells.into_iter().peekable();
    let mut rem_it = removed_cells.iter().copied().peekable();
    for (old_row, &c) in old_out_coords.iter().enumerate() {
        while ins_it.peek().is_some_and(|&i| i < c) {
            if let Some(i) = ins_it.next() {
                out_inserted_rows.push(out_coords.len() as u32);
                out_coords.push(i);
            }
        }
        if rem_it.peek() == Some(&c) {
            rem_it.next();
            continue;
        }
        out_remap[old_row] = out_coords.len() as u32;
        out_coords.push(c);
    }
    for i in ins_it {
        out_inserted_rows.push(out_coords.len() as u32);
        out_coords.push(i);
    }
    stats.stream.writes += out_coords.len() as u64;
    let out_removed = out_remap.iter().filter(|&&r| r == REMOVED_ROW).count();
    let out_delta = CoordDelta {
        remap: out_remap,
        inserted: out_inserted_rows,
        removed: out_removed,
        probes: 0,
    };

    // --- Per-offset entry patch ------------------------------------------
    let mut out_is_inserted = vec![false; out_coords.len()];
    for &r in &out_delta.inserted {
        out_is_inserted[r as usize] = true;
    }
    let mut per_offset: Vec<Vec<MapEntry>> = vec![Vec::new(); volume];
    for (n, slot) in per_offset.iter_mut().enumerate() {
        let d = offs[n];
        let mut entries = patch_forward_offset(
            old.entries(n),
            &fine_delta.remap,
            &fine_delta.inserted,
            &out_delta.remap,
            &out_delta.inserted,
            &out_is_inserted,
            &|k| new_fine_index.query(out_coords[k as usize].scaled(stride).offset(d)),
            &|j| {
                let q = new_fine_coords[j as usize].offset_neg(d);
                if !q.divisible_by(stride) {
                    return (None, 0);
                }
                // The output list is sorted: resolve by binary search, one
                // modeled memory probe per comparison level.
                let found = out_coords.binary_search(&q.divided(stride)).ok().map(|k| k as u32);
                (found, u64::from(out_coords.len().max(2).ilog2().max(1)))
            },
            &mut stats,
        );
        entries.sort_unstable_by_key(|e| e.output);
        *slot = entries;
    }
    stats.stream.kernel_launches += 1;
    let map = KernelMap::from_parts(kernel_size, stride, per_offset, stats.merged())?;
    Ok(StridedPatch { map, out_coords, out_delta, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::downsample::{fused_output_coords, Boundary};
    use crate::kernel_map::{search_dilated, search_submanifold_symmetric_dilated};

    fn coords(n: usize, seed: i32) -> Vec<Coord> {
        let mut v: Vec<Coord> = (0..n as i32)
            .map(|i| Coord::new(0, (i * 7 + seed) % 13, (i * 3) % 9, (i + seed) % 5))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        // Shuffle deterministically so row order is not sorted.
        let len = v.len();
        for i in 0..len {
            v.swap(i, ((i * 31 + seed as usize * 7) % len).max(i));
        }
        v
    }

    fn hash_index(coords: &[Coord]) -> CoordHashMap {
        CoordHashMap::build(coords).0
    }

    /// Removes every 5th row and inserts fresh coordinates, returning the
    /// new set in a mixed (non-sorted) order.
    fn churned(old: &[Coord]) -> Vec<Coord> {
        let mut new: Vec<Coord> =
            old.iter().enumerate().filter(|(i, _)| i % 5 != 0).map(|(_, &c)| c).collect();
        let existing: std::collections::BTreeSet<Coord> = old.iter().copied().collect();
        let mut added = 0;
        let mut t = 0;
        while added < old.len() / 6 + 1 {
            let c = Coord::new(0, 20 + t % 4, t % 7, t % 5);
            t += 1;
            if !existing.contains(&c) && !new.contains(&c) {
                new.insert((added * 13) % new.len().max(1), c);
                added += 1;
            }
        }
        new
    }

    #[test]
    fn diff_classifies_kept_inserted_removed() {
        let old = coords(40, 1);
        let new = churned(&old);
        let idx = hash_index(&old);
        let d = diff_coords(&idx, old.len(), &new).unwrap();
        assert_eq!(d.remap.len(), old.len());
        let kept = d.remap.iter().filter(|&&r| r != REMOVED_ROW).count();
        assert_eq!(kept + d.removed, old.len());
        assert_eq!(kept + d.inserted.len(), new.len());
        for (old_row, &new_row) in d.remap.iter().enumerate() {
            if new_row != REMOVED_ROW {
                assert_eq!(old[old_row], new[new_row as usize]);
            }
        }
        for &r in &d.inserted {
            assert!(!old.contains(&new[r as usize]));
        }
        assert!(d.probes >= new.len() as u64, "every new coord costs at least one probe");
        assert!(d.churn(new.len()) > 0.0);
    }

    #[test]
    fn diff_rejects_duplicates() {
        let old = coords(10, 2);
        let idx = hash_index(&old);
        // Duplicate of a kept coordinate.
        let mut dup_kept = old.clone();
        dup_kept.push(old[3]);
        assert!(matches!(
            diff_coords(&idx, old.len(), &dup_kept),
            Err(CoordsError::DuplicateCoordinate(_))
        ));
        // Duplicate among inserted coordinates.
        let fresh = Coord::new(0, 99, 99, 4);
        let mut dup_ins = old.clone();
        dup_ins.push(fresh);
        dup_ins.push(fresh);
        assert!(matches!(
            diff_coords(&idx, old.len(), &dup_ins),
            Err(CoordsError::DuplicateCoordinate(_))
        ));
    }

    #[test]
    fn identity_delta_roundtrips() {
        let d = CoordDelta::identity(5);
        assert!(d.is_identity());
        assert_eq!(d.churn(5), 0.0);
        let old = coords(20, 3);
        let idx = hash_index(&old);
        let same = diff_coords(&idx, old.len(), &old).unwrap();
        assert!(same.is_identity());
    }

    #[test]
    fn delta_index_answers_like_a_fresh_index() {
        let old = coords(50, 4);
        let new = churned(&old);
        let base: Arc<dyn CoordIndex> = Arc::new(hash_index(&old));
        let d = diff_coords(base.as_ref(), old.len(), &new).unwrap();
        let (delta_idx, _) = DeltaIndex::build(base, &d, &new).unwrap();
        let fresh = hash_index(&new);
        assert_eq!(delta_idx.len(), new.len());
        assert_eq!(delta_idx.delta_depth(), 1);
        for &c in new.iter().chain(old.iter()) {
            assert_eq!(delta_idx.query(c).0, fresh.query(c).0, "coord {c}");
        }
        assert_eq!(delta_idx.query(Coord::new(3, -100, 0, 0)).0, None);
        assert!(delta_idx.side_fraction() > 0.0);
        assert!(delta_idx.memory_bytes() > 0);
    }

    #[test]
    fn stacked_delta_indexes_count_depth() {
        let a = coords(30, 5);
        let b = churned(&a);
        let c = churned(&b);
        let base: Arc<dyn CoordIndex> = Arc::new(hash_index(&a));
        assert_eq!(base.delta_depth(), 0);
        let d1 = diff_coords(base.as_ref(), a.len(), &b).unwrap();
        let (i1, _) = DeltaIndex::build(base, &d1, &b).unwrap();
        let i1: Arc<dyn CoordIndex> = Arc::new(i1);
        let d2 = diff_coords(i1.as_ref(), b.len(), &c).unwrap();
        let (i2, _) = DeltaIndex::build(i1, &d2, &c).unwrap();
        assert_eq!(i2.delta_depth(), 2);
        let fresh = hash_index(&c);
        for &x in &c {
            assert_eq!(i2.query(x).0, fresh.query(x).0);
        }
    }

    fn assert_same_map(patched: &KernelMap, fresh: &KernelMap) {
        assert_eq!(patched.num_offsets(), fresh.num_offsets());
        assert_eq!(patched.stride(), fresh.stride());
        for n in 0..fresh.num_offsets() {
            assert_eq!(patched.entries(n), fresh.entries(n), "offset {n} differs");
        }
    }

    fn patched_fixture(
        seed: i32,
        kernel_size: usize,
        dilation: i32,
        symmetric: bool,
    ) -> (KernelMap, KernelMap) {
        let old = coords(60, seed);
        let new = churned(&old);
        let old_table = hash_index(&old);
        let old_map = if symmetric {
            search_submanifold_symmetric_dilated(&old, &old_table, kernel_size, dilation)
        } else {
            search_dilated(&old, &old_table, kernel_size, 1, dilation)
        }
        .unwrap();
        let base: Arc<dyn CoordIndex> = Arc::new(old_table);
        let d = diff_coords(base.as_ref(), old.len(), &new).unwrap();
        let (new_idx, _) = DeltaIndex::build(base, &d, &new).unwrap();
        let (patched, _) =
            patch_submanifold_map(&old_map, &d, &new, &new_idx, kernel_size, dilation, symmetric)
                .unwrap();
        let fresh_table = hash_index(&new);
        let fresh = if symmetric {
            search_submanifold_symmetric_dilated(&new, &fresh_table, kernel_size, dilation)
        } else {
            search_dilated(&new, &fresh_table, kernel_size, 1, dilation)
        }
        .unwrap();
        (patched, fresh)
    }

    #[test]
    fn submanifold_patch_matches_fresh_search() {
        for symmetric in [false, true] {
            for dilation in [1, 2] {
                let (patched, fresh) = patched_fixture(6, 3, dilation, symmetric);
                assert_same_map(&patched, &fresh);
            }
        }
    }

    #[test]
    fn even_kernel_patch_matches_fresh_search() {
        let (patched, fresh) = patched_fixture(7, 2, 1, false);
        assert_same_map(&patched, &fresh);
    }

    #[test]
    fn symmetric_patch_rejects_even_kernels() {
        let old = coords(10, 1);
        let map = search_dilated(&old, &hash_index(&old), 2, 1, 1).unwrap();
        let d = CoordDelta::identity(old.len());
        let idx = hash_index(&old);
        assert!(patch_submanifold_map(&map, &d, &old, &idx, 2, 1, true).is_err());
        assert!(patch_submanifold_map(&map, &d, &old, &idx, 2, 0, false).is_err());
    }

    #[test]
    fn strided_patch_matches_fresh_derivation() {
        for (kernel_size, stride) in [(2usize, 2i32), (3, 2), (2, 4)] {
            let old = coords(70, 8);
            let new = churned(&old);
            let old_out =
                fused_output_coords(&old, kernel_size, stride, Boundary::unbounded()).unwrap();
            let old_table = hash_index(&old);
            let old_map =
                search_dilated(&old_out.coords, &old_table, kernel_size, stride, 1).unwrap();
            let base: Arc<dyn CoordIndex> = Arc::new(old_table);
            let d = diff_coords(base.as_ref(), old.len(), &new).unwrap();
            let (new_idx, _) = DeltaIndex::build(base, &d, &new).unwrap();
            let patch = patch_strided_map(
                &old_map,
                &old,
                &old_out.coords,
                &d,
                &new,
                &new_idx,
                kernel_size,
                stride,
            )
            .unwrap();
            let fresh_out =
                fused_output_coords(&new, kernel_size, stride, Boundary::unbounded()).unwrap();
            assert_eq!(patch.out_coords, fresh_out.coords, "k={kernel_size} s={stride}");
            let fresh_table = hash_index(&new);
            let fresh_map =
                search_dilated(&fresh_out.coords, &fresh_table, kernel_size, stride, 1).unwrap();
            assert_same_map(&patch.map, &fresh_map);
            // The out-delta classifies old rows consistently.
            for (old_row, &new_row) in patch.out_delta.remap.iter().enumerate() {
                if new_row != REMOVED_ROW {
                    assert_eq!(old_out.coords[old_row], patch.out_coords[new_row as usize]);
                }
            }
            assert_eq!(
                patch.out_delta.remap.iter().filter(|&&r| r != REMOVED_ROW).count()
                    + patch.out_delta.inserted.len(),
                patch.out_coords.len()
            );
        }
    }

    #[test]
    fn insert_only_and_remove_only_patches_match() {
        let old = coords(50, 9);
        // Remove-only.
        let shrunk: Vec<Coord> =
            old.iter().enumerate().filter(|(i, _)| i % 4 != 0).map(|(_, &c)| c).collect();
        // Insert-only.
        let mut grown = old.clone();
        for t in 0..8 {
            let c = Coord::new(0, 30 + t, t % 3, t % 5);
            if !grown.contains(&c) {
                grown.push(c);
            }
        }
        for new in [shrunk, grown] {
            let old_table = hash_index(&old);
            let old_map = search_submanifold_symmetric_dilated(&old, &old_table, 3, 1).unwrap();
            let base: Arc<dyn CoordIndex> = Arc::new(old_table);
            let d = diff_coords(base.as_ref(), old.len(), &new).unwrap();
            let (new_idx, _) = DeltaIndex::build(base, &d, &new).unwrap();
            let (patched, stats) =
                patch_submanifold_map(&old_map, &d, &new, &new_idx, 3, 1, true).unwrap();
            let fresh_table = hash_index(&new);
            let fresh = search_submanifold_symmetric_dilated(&new, &fresh_table, 3, 1).unwrap();
            assert_same_map(&patched, &fresh);
            assert!(stats.merged().total_accesses() > 0);
        }
    }

    #[test]
    fn patch_cost_is_mostly_streaming_at_low_churn() {
        // 1 voxel churned out of ~600: random probe traffic must be far
        // below the all-random fresh-search bill.
        let old: Vec<Coord> = (0..600)
            .map(|i| Coord::new(0, i % 20, (i / 20) % 10, i % 3))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut new = old.clone();
        new.remove(7);
        new.push(Coord::new(0, 50, 50, 1));
        let old_table = hash_index(&old);
        let old_map = search_submanifold_symmetric_dilated(&old, &old_table, 3, 1).unwrap();
        let fresh_cost = old_map.stats.total_accesses();
        let base: Arc<dyn CoordIndex> = Arc::new(old_table);
        let d = diff_coords(base.as_ref(), old.len(), &new).unwrap();
        let (new_idx, _) = DeltaIndex::build(base, &d, &new).unwrap();
        let (_, stats) = patch_submanifold_map(&old_map, &d, &new, &new_idx, 3, 1, true).unwrap();
        assert!(
            stats.random.total_accesses() * 4 < fresh_cost,
            "patch random traffic {} should be well under fresh search {}",
            stats.random.total_accesses(),
            fresh_cost
        );
    }
}
