//! Minimal-perfect-hash coordinate index for frozen coordinate sets.
//!
//! Compiled sessions freeze geometry at plan time, so the coordinate set is
//! static — exactly the regime where a minimal perfect hash function (MPHF)
//! beats a general hashmap. This module implements a BBHash-style
//! fingerprint cascade: each level hashes the keys still unplaced into a
//! bitmap of `γ ×` their count; keys that land in a slot alone are assigned
//! there, colliding keys retry on the next level with a fresh seed. The
//! per-level bitmaps double as the membership rank/select structure — the
//! final index of a key is the rank of its bit among all assigned bits —
//! and a per-slot key record makes queries exact (the stored coordinate is
//! the full fingerprint, so a probe can never yield a false positive).
//!
//! Memory: roughly `γ / (1 - e^{-1/γ}) ≈ 3.3` bits of bitmap per key at the
//! default `γ = 2`, plus a 4-byte rank directory word per 64 bitmap bits and
//! one 20-byte `(Coord, row)` verification slot per key — ~21 bytes/key
//! total, versus the ≥48 bytes/key of the load-factor-0.5 open-addressing
//! hashmap (whose slot count also rounds up to a power of two).

use crate::table::CoordIndex;
use crate::{Coord, CoordsError};

/// Bitmap slots per unplaced key at each cascade level (the BBHash γ).
/// 2.0 places ~61% of the remaining keys per level; the series converges
/// after a handful of levels.
const GAMMA: usize = 2;

/// Hard cap on cascade depth. With distinct keys and per-level seeds the
/// expected depth is O(log n) with tiny constants; the cap only triggers on
/// duplicate coordinates, which can never be separated by re-hashing.
const MAX_LEVELS: usize = 64;

/// One cascade level: the assigned-slot bitmap plus its rank directory.
#[derive(Debug, Clone)]
struct Level {
    /// Hash seed for this level.
    seed: u64,
    /// Number of slots (a multiple of 64).
    slots: u64,
    /// Assigned-slot bitmap: bit set ⇔ exactly one key hashed here.
    bits: Vec<u64>,
    /// Rank directory: `rank[w]` = number of set bits in words `[0, w)`.
    rank: Vec<u32>,
    /// Number of keys assigned by earlier levels (rank offset).
    base: u32,
}

impl Level {
    /// Rank of slot `h` among this level's assigned bits (valid only when
    /// the bit at `h` is set).
    fn rank_of(&self, h: u64) -> u32 {
        let word = (h / 64) as usize;
        let bit = h % 64;
        self.rank[word] + (self.bits[word] & ((1u64 << bit) - 1)).count_ones()
    }

    fn is_set(&self, h: u64) -> bool {
        self.bits[(h / 64) as usize] >> (h % 64) & 1 == 1
    }
}

/// Mixes a coordinate and a level seed into a well-distributed 64-bit hash:
/// FNV-1a over the coordinate bytes, xor-folded with the seed, then a
/// splitmix64 finalizer (FNV alone has poor avalanche in the low bits, which
/// the modulo-slot mapping is most sensitive to).
fn level_hash(c: Coord, seed: u64) -> u64 {
    let mut h = c.fnv1a() ^ seed;
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// A minimal-perfect-hash coordinate index over a frozen coordinate set.
///
/// Built once from the full coordinate list (no incremental insertion —
/// this intentionally does *not* implement [`crate::CoordTable`], only the
/// read-only [`CoordIndex`] seam). Queries are exact: member coordinates
/// recover their position in the build list, non-members return `None`.
///
/// # Example
///
/// ```
/// use torchsparse_coords::{Coord, CoordIndex, MphfIndex};
///
/// let coords = [Coord::new(0, 5, -3, 2), Coord::new(0, 6, -3, 2)];
/// let (index, _accesses) = MphfIndex::build(&coords)?;
/// assert_eq!(index.query(Coord::new(0, 6, -3, 2)).0, Some(1));
/// assert_eq!(index.query(Coord::new(0, 9, 9, 9)).0, None);
/// # Ok::<(), torchsparse_coords::CoordsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MphfIndex {
    levels: Vec<Level>,
    /// Per-assigned-slot verification record `(key, row)`, indexed by the
    /// MPHF value (level base + in-level rank). Comparing the stored key is
    /// the exact fingerprint check that rules out false positives.
    slots: Vec<(Coord, u32)>,
}

impl MphfIndex {
    /// Builds the index over `coords`, assigning each coordinate its list
    /// position as the index. Returns the index and the number of memory
    /// accesses construction performed (bitmap writes during the cascade
    /// plus one verification-slot write per key).
    ///
    /// # Errors
    ///
    /// - [`CoordsError::EmptyCoordinates`] if `coords` is empty.
    /// - [`CoordsError::DuplicateCoordinate`] if two coordinates are equal —
    ///   duplicates collide at every level, so a minimal perfect hash over
    ///   them does not exist.
    pub fn build(coords: &[Coord]) -> Result<(Self, u64), CoordsError> {
        if coords.is_empty() {
            return Err(CoordsError::EmptyCoordinates);
        }
        let mut remaining: Vec<(Coord, u32)> =
            coords.iter().enumerate().map(|(i, &c)| (c, i as u32)).collect();
        let mut levels = Vec::new();
        let mut slots = vec![(Coord::default(), 0u32); coords.len()];
        let mut base = 0u32;
        let mut accesses = 0u64;

        for depth in 0..MAX_LEVELS {
            if remaining.is_empty() {
                break;
            }
            let seed = (depth as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let slot_count = ((remaining.len() * GAMMA).max(64).next_multiple_of(64)) as u64;
            let words = (slot_count / 64) as usize;
            let mut seen = vec![0u64; words];
            let mut collided = vec![0u64; words];
            for &(c, _) in &remaining {
                let h = level_hash(c, seed) % slot_count;
                let (w, b) = ((h / 64) as usize, h % 64);
                if seen[w] >> b & 1 == 1 {
                    collided[w] |= 1 << b;
                } else {
                    seen[w] |= 1 << b;
                }
                accesses += 1;
            }
            // Assigned = hashed here by exactly one key.
            let bits: Vec<u64> = seen.iter().zip(&collided).map(|(&s, &c)| s & !c).collect();
            let mut rank = Vec::with_capacity(words);
            let mut running = 0u32;
            for &word in &bits {
                rank.push(running);
                running += word.count_ones();
            }
            let level = Level { seed, slots: slot_count, bits, rank, base };
            let mut carry = Vec::new();
            for (c, row) in remaining {
                let h = level_hash(c, seed) % slot_count;
                if level.is_set(h) {
                    slots[(base + level.rank_of(h)) as usize] = (c, row);
                    accesses += 1;
                } else {
                    carry.push((c, row));
                }
            }
            base += running;
            levels.push(level);
            remaining = carry;
        }

        if let Some(&(dup, _)) = remaining.first() {
            // Only equal keys can survive MAX_LEVELS of re-seeded hashing.
            return Err(CoordsError::DuplicateCoordinate(dup));
        }
        Ok((MphfIndex { levels, slots }, accesses))
    }

    /// Number of cascade levels (diagnostics; small — typically < 10).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}

impl CoordIndex for MphfIndex {
    fn query(&self, coord: Coord) -> (Option<u32>, u64) {
        let mut probes = 0;
        for level in &self.levels {
            let h = level_hash(coord, level.seed) % level.slots;
            probes += 1; // bitmap + rank-directory word (one cache line)
            if level.is_set(h) {
                // The bit identifies exactly one key; verify it is ours.
                // For members this always matches (a member that collided
                // at this level left its slot unassigned); for non-members
                // the comparison is the exact fingerprint check.
                let (key, row) = self.slots[(level.base + level.rank_of(h)) as usize];
                probes += 1;
                return (if key == coord { Some(row) } else { None }, probes);
            }
        }
        (None, probes)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn memory_bytes(&self) -> u64 {
        let bitmap: u64 =
            self.levels.iter().map(|l| (l.bits.len() * 8 + l.rank.len() * 4) as u64).sum();
        bitmap + (self.slots.len() * std::mem::size_of::<(Coord, u32)>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoordHashMap;

    fn blob(n: i32) -> Vec<Coord> {
        let mut v = Vec::new();
        for x in 0..n {
            for y in 0..n {
                v.push(Coord::new(0, x, y, (x * 7 + y * 3) % (n + 1)));
            }
        }
        v
    }

    #[test]
    fn members_recover_exact_indices() {
        let coords = blob(40);
        let (index, _) = MphfIndex::build(&coords).unwrap();
        assert_eq!(index.len(), coords.len());
        for (i, &c) in coords.iter().enumerate() {
            let (found, probes) = index.query(c);
            assert_eq!(found, Some(i as u32), "coord {c}");
            assert!(probes >= 2, "member query probes bitmap + slot");
        }
    }

    #[test]
    fn non_members_return_none() {
        let coords = blob(20);
        let (index, _) = MphfIndex::build(&coords).unwrap();
        for x in -10..30 {
            for z in 25..40 {
                assert_eq!(index.query(Coord::new(0, x, x, z)).0, None);
                assert_eq!(index.query(Coord::new(1, x, 0, z % 21)).0, None);
            }
        }
    }

    #[test]
    fn agrees_with_hashmap_over_a_window() {
        let coords = blob(12);
        let (index, _) = MphfIndex::build(&coords).unwrap();
        let (hash, _) = CoordHashMap::build(&coords);
        for x in -2..14 {
            for y in -2..14 {
                for z in -2..15 {
                    let c = Coord::new(0, x, y, z);
                    assert_eq!(index.query(c).0, hash.query(c).0, "disagree on {c}");
                }
            }
        }
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(MphfIndex::build(&[]).unwrap_err(), CoordsError::EmptyCoordinates);
    }

    #[test]
    fn duplicates_rejected() {
        let coords = [Coord::new(0, 1, 2, 3), Coord::new(0, 4, 5, 6), Coord::new(0, 1, 2, 3)];
        assert_eq!(
            MphfIndex::build(&coords).unwrap_err(),
            CoordsError::DuplicateCoordinate(Coord::new(0, 1, 2, 3))
        );
    }

    #[test]
    fn single_coordinate() {
        let (index, _) = MphfIndex::build(&[Coord::new(3, -7, 11, 0)]).unwrap();
        assert_eq!(index.query(Coord::new(3, -7, 11, 0)).0, Some(0));
        assert_eq!(index.query(Coord::new(3, -7, 11, 1)).0, None);
    }

    #[test]
    fn smaller_than_hashmap() {
        let coords = blob(100); // 10k coords
        let (index, _) = MphfIndex::build(&coords).unwrap();
        let (hash, _) = CoordHashMap::build(&coords);
        assert!(
            index.memory_bytes() * 2 <= hash.memory_bytes(),
            "mphf {} vs hashmap {}",
            index.memory_bytes(),
            hash.memory_bytes()
        );
    }

    #[test]
    fn cascade_stays_shallow() {
        let coords = blob(70);
        let (index, _) = MphfIndex::build(&coords).unwrap();
        assert!(index.level_count() <= 16, "levels {}", index.level_count());
    }

    // Random-coordinate-set properties: every member recovers its exact
    // build-list position, and probing nearby non-members never yields a
    // false positive (the stored-key comparison is an exact fingerprint).
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(48))]

        #[test]
        fn random_sets_are_exact(
            raw in proptest::collection::vec(
                (0i32..3, -40i32..40, -40i32..40, -40i32..40),
                1..400,
            ),
        ) {
            let mut coords: Vec<Coord> =
                raw.iter().map(|&(b, x, y, z)| Coord::new(b, x, y, z)).collect();
            coords.sort_unstable();
            coords.dedup();
            let (index, _) = MphfIndex::build(&coords).map_err(|e| e.to_string())?;
            proptest::prop_assert_eq!(index.len(), coords.len());
            // Exact index recovery on members.
            for (i, &c) in coords.iter().enumerate() {
                proptest::prop_assert_eq!(index.query(c).0, Some(i as u32));
            }
            // No false positives on perturbed neighbors.
            for &c in &coords {
                for probe in [
                    c.offset([1, 0, 0]),
                    c.offset([0, -1, 0]),
                    c.offset([0, 0, 41]),
                    Coord::new(c.batch + 3, c.x, c.y, c.z),
                ] {
                    let expect = coords.binary_search(&probe).ok().map(|i| i as u32);
                    proptest::prop_assert_eq!(index.query(probe).0, expect);
                }
            }
        }
    }

    #[test]
    fn build_reports_accesses() {
        let coords = blob(10);
        let (_, accesses) = MphfIndex::build(&coords).unwrap();
        // At least one bitmap write and one slot write per key.
        assert!(accesses >= 2 * coords.len() as u64);
    }
}
