//! Kernel offset enumeration `Δ^D(K)` (paper §2).
//!
//! Offsets are enumerated lexicographically over each axis range. For odd
//! kernel sizes the range is symmetric (`{-(K-1)/2 ..= (K-1)/2}`), which
//! gives the enumeration the *mirror property* the paper's symmetric
//! grouping and symmetric map search rely on (§4.2.1):
//! `offset[i] == -offset[volume - 1 - i]`, with the zero offset exactly in
//! the middle. For even kernel sizes the range is `{-(K-1)/2 ..= K/2}`
//! (floor-centered, matching MinkowskiEngine's convention for K=2
//! downsampling layers), and no mirror property holds.

use crate::CoordsError;

/// Enumerates the kernel offsets for a cubic 3D kernel of size `k`.
///
/// # Errors
///
/// Returns [`CoordsError::ZeroKernelSize`] if `k == 0`.
///
/// # Example
///
/// ```
/// use torchsparse_coords::offsets::kernel_offsets;
///
/// let d3 = kernel_offsets(3)?;
/// assert_eq!(d3.len(), 27);
/// assert_eq!(d3[0], [-1, -1, -1]);
/// assert_eq!(d3[13], [0, 0, 0]); // center is the middle index
/// assert_eq!(d3[26], [1, 1, 1]);
/// # Ok::<(), torchsparse_coords::CoordsError>(())
/// ```
pub fn kernel_offsets(k: usize) -> Result<Vec<[i32; 3]>, CoordsError> {
    if k == 0 {
        return Err(CoordsError::ZeroKernelSize);
    }
    let (lo, hi) = axis_range(k);
    let mut out = Vec::with_capacity(k * k * k);
    for x in lo..=hi {
        for y in lo..=hi {
            for z in lo..=hi {
                out.push([x, y, z]);
            }
        }
    }
    Ok(out)
}

/// The inclusive per-axis offset range for kernel size `k`.
///
/// Odd `k` gives a symmetric range; even `k` is floor-centered.
pub fn axis_range(k: usize) -> (i32, i32) {
    let k = k as i32;
    (-(k - 1) / 2, k / 2)
}

/// Kernel volume `K^3`.
pub fn kernel_volume(k: usize) -> usize {
    k * k * k
}

/// Index of the zero offset within [`kernel_offsets`], if present.
///
/// Present exactly when `k` is odd, at the middle index `(K^3 - 1) / 2`.
pub fn center_index(k: usize) -> Option<usize> {
    if k % 2 == 1 {
        Some((kernel_volume(k) - 1) / 2)
    } else {
        None
    }
}

/// Whether the enumeration has the mirror property
/// `offset[i] == -offset[volume - 1 - i]` (true exactly for odd `k`).
pub fn has_mirror_property(k: usize) -> bool {
    k % 2 == 1
}

/// The index paired with `i` under the mirror property.
///
/// Only meaningful for odd kernel sizes; the center index maps to itself.
pub fn mirror_index(k: usize, i: usize) -> usize {
    kernel_volume(k) - 1 - i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_kernel_rejected() {
        assert_eq!(kernel_offsets(0).unwrap_err(), CoordsError::ZeroKernelSize);
    }

    #[test]
    fn k1_is_identity_only() {
        assert_eq!(kernel_offsets(1).unwrap(), vec![[0, 0, 0]]);
        assert_eq!(center_index(1), Some(0));
    }

    #[test]
    fn k2_is_floor_centered() {
        let offs = kernel_offsets(2).unwrap();
        assert_eq!(offs.len(), 8);
        assert_eq!(offs[0], [0, 0, 0]);
        assert_eq!(offs[7], [1, 1, 1]);
        assert_eq!(center_index(2), None);
        assert!(!has_mirror_property(2));
    }

    #[test]
    fn k3_mirror_property() {
        let offs = kernel_offsets(3).unwrap();
        for (i, off) in offs.iter().enumerate() {
            let m = offs[mirror_index(3, i)];
            assert_eq!([-off[0], -off[1], -off[2]], m, "mirror at index {i}");
        }
        assert_eq!(offs[center_index(3).unwrap()], [0, 0, 0]);
    }

    #[test]
    fn k5_mirror_property_and_volume() {
        let offs = kernel_offsets(5).unwrap();
        assert_eq!(offs.len(), 125);
        assert_eq!(offs[center_index(5).unwrap()], [0, 0, 0]);
        for (i, off) in offs.iter().enumerate() {
            let m = offs[mirror_index(5, i)];
            assert_eq!([-off[0], -off[1], -off[2]], m);
        }
    }

    #[test]
    fn offsets_unique() {
        for k in 1..=5 {
            let offs = kernel_offsets(k).unwrap();
            let mut sorted = offs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), offs.len(), "k={k} offsets must be unique");
        }
    }

    #[test]
    fn axis_ranges() {
        assert_eq!(axis_range(1), (0, 0));
        assert_eq!(axis_range(2), (0, 1));
        assert_eq!(axis_range(3), (-1, 1));
        assert_eq!(axis_range(4), (-1, 2));
        assert_eq!(axis_range(5), (-2, 2));
    }
}
