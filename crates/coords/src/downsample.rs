//! Output coordinate calculation for strided sparse convolution
//! (Algorithm 3 / Appendix A, optimized in §4.4 and Figure 10).
//!
//! Downsampling applies a sliding window around each input point, keeps the
//! candidates that pass the *modular check* (`u % s == 0`) and the
//! *boundary check*, divides by the stride, and deduplicates. The paper
//! observes that a naive implementation runs this as **five separate GPU
//! kernels** with DRAM-materialized intermediates (broadcast_add → modular
//! check → boundary check → flatten to 1D → unique), making downsampling
//! memory-bound; TorchSparse fuses stages 1–4 into one kernel that keeps
//! intermediates in registers.
//!
//! Both variants here compute identical outputs; they differ only in the
//! [`MappingStats`] they report, which is what the mapping-latency model
//! consumes (Figure 13's "fused kernel" bar).

use crate::offsets::kernel_offsets;
use crate::table::MappingStats;
use crate::{Coord, CoordsError};

/// Optional inclusive-min / exclusive-max bounds on *output* coordinates.
///
/// CenterPoint-style detectors convolve over a fixed scene grid; MinkUNet
/// uses unbounded coordinates (`None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Boundary {
    /// Inclusive minimum output coordinate per axis, if bounded below.
    pub min: Option<[i32; 3]>,
    /// Exclusive maximum output coordinate per axis, if bounded above.
    pub max: Option<[i32; 3]>,
}

impl Boundary {
    /// An unbounded domain.
    pub fn unbounded() -> Boundary {
        Boundary::default()
    }

    /// Whether an output coordinate passes the boundary check.
    pub fn contains(&self, c: Coord) -> bool {
        if let Some(min) = self.min {
            if c.x < min[0] || c.y < min[1] || c.z < min[2] {
                return false;
            }
        }
        if let Some(max) = self.max {
            if c.x >= max[0] || c.y >= max[1] || c.z >= max[2] {
                return false;
            }
        }
        true
    }
}

/// Result of output-coordinate calculation.
#[derive(Debug, Clone, PartialEq)]
pub struct DownsampleOutput {
    /// Deduplicated output coordinates, sorted lexicographically.
    pub coords: Vec<Coord>,
    /// Memory traffic of the chosen implementation.
    pub stats: MappingStats,
}

/// The naive **staged** implementation: five kernels, all intermediates
/// round-trip through DRAM (the baseline of Figure 10a).
///
/// # Errors
///
/// Returns [`CoordsError::ZeroKernelSize`] / [`CoordsError::ZeroStride`] on
/// degenerate parameters.
pub fn staged_output_coords(
    in_coords: &[Coord],
    kernel_size: usize,
    stride: i32,
    boundary: Boundary,
) -> Result<DownsampleOutput, CoordsError> {
    if stride <= 0 {
        return Err(CoordsError::ZeroStride);
    }
    let offs = kernel_offsets(kernel_size)?;
    let n = in_coords.len() as u64;
    let v = offs.len() as u64;
    let mut stats = MappingStats { kernel_launches: 5, ..MappingStats::default() };

    // Stage 1: broadcast_add — write all N*V candidates to DRAM.
    let mut candidates: Vec<Coord> = Vec::with_capacity((n * v) as usize);
    for p in in_coords {
        for &d in &offs {
            candidates.push(p.offset_neg(d));
        }
    }
    stats.reads += n; // read each input coordinate once
    stats.writes += n * v; // materialize candidates

    // Stage 2: modular check — read candidates, write mask.
    let modular: Vec<bool> = candidates.iter().map(|c| c.divisible_by(stride)).collect();
    stats.reads += n * v;
    stats.writes += n * v;

    // Stage 3: boundary check — read candidates + mask, write mask.
    let kept: Vec<bool> = candidates
        .iter()
        .zip(&modular)
        .map(|(c, &m)| m && boundary.contains(c.divided_or_self(stride)))
        .collect();
    stats.reads += 2 * n * v;
    stats.writes += n * v;

    // Stage 4: flatten surviving candidates to 1D keys (here: divided coords).
    let mut survivors: Vec<Coord> =
        candidates.iter().zip(&kept).filter(|(_, &k)| k).map(|(c, _)| c.divided(stride)).collect();
    stats.reads += 2 * n * v;
    stats.writes += n * v; // the flattened key buffer is N*V wide (masked)

    // Stage 5: unique — sort + dedup.
    stats.reads += n * v;
    survivors.sort_unstable();
    survivors.dedup();
    stats.writes += survivors.len() as u64;

    Ok(DownsampleOutput { coords: survivors, stats })
}

/// The **fused** implementation (§4.4): stages 1–4 execute in a single
/// kernel with register-resident intermediates; only survivors are written
/// to DRAM, followed by the unique kernel.
///
/// Computes exactly the same coordinates as [`staged_output_coords`].
///
/// # Errors
///
/// Returns [`CoordsError::ZeroKernelSize`] / [`CoordsError::ZeroStride`] on
/// degenerate parameters.
pub fn fused_output_coords(
    in_coords: &[Coord],
    kernel_size: usize,
    stride: i32,
    boundary: Boundary,
) -> Result<DownsampleOutput, CoordsError> {
    if stride <= 0 {
        return Err(CoordsError::ZeroStride);
    }
    let offs = kernel_offsets(kernel_size)?;
    let n = in_coords.len() as u64;
    let v = offs.len() as u64;
    let mut stats = MappingStats { kernel_launches: 2, ..MappingStats::default() };

    let mut survivors: Vec<Coord> = Vec::new();
    for p in in_coords {
        for &d in &offs {
            // All of this stays in registers on the GPU.
            let u = p.offset_neg(d);
            if !u.divisible_by(stride) {
                continue;
            }
            let q = u.divided(stride);
            if !boundary.contains(q) {
                continue;
            }
            survivors.push(q);
        }
    }
    stats.reads += n; // each input coordinate read once
    stats.writes += survivors.len() as u64; // only survivors touch DRAM

    // Unique kernel: read survivors, write deduplicated outputs.
    stats.reads += survivors.len() as u64;
    survivors.sort_unstable();
    survivors.dedup();
    stats.writes += survivors.len() as u64;

    // The fused variant never materializes the N*V candidate buffer; what
    // remains is the per-candidate register/ALU work of the fused kernel,
    // which the latency model costs separately.
    stats.candidate_ops = n * v;
    Ok(DownsampleOutput { coords: survivors, stats })
}

impl Coord {
    /// `divided(stride)` when divisible, otherwise `self` — a helper for the
    /// staged pipeline, where the boundary stage runs on *all* candidates
    /// (the mask keeps non-divisible ones from surviving anyway).
    fn divided_or_self(&self, s: i32) -> Coord {
        if self.divisible_by(s) {
            self.divided(s)
        } else {
            *self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line_scene() -> Vec<Coord> {
        (0..8).map(|i| Coord::new(0, i, 0, 0)).collect()
    }

    #[test]
    fn stride1_with_k1_is_identity_set() {
        let coords = line_scene();
        let out = fused_output_coords(&coords, 1, 1, Boundary::unbounded()).unwrap();
        assert_eq!(out.coords, coords);
    }

    #[test]
    fn stride2_k2_halves_line() {
        // K=2 offsets {0,1}: candidate u = p - δ; survivors are even sites.
        let coords = line_scene();
        let out = fused_output_coords(&coords, 2, 2, Boundary::unbounded()).unwrap();
        let expect: Vec<Coord> = (0..4).map(|i| Coord::new(0, i, 0, 0)).collect();
        assert_eq!(out.coords, expect);
    }

    #[test]
    fn paper_worked_example() {
        // §2.1.1: input (3, 5) with stride 2. For δ=(1,1): ((3,5)-(1,1))/2 = (1,2).
        // For δ=(0,0): (3,5) is not a multiple of 2 → no output. (Embedded in 3D, z=0.)
        let coords = vec![Coord::new(0, 3, 5, 0)];
        let out = fused_output_coords(&coords, 3, 2, Boundary::unbounded()).unwrap();
        assert!(out.coords.contains(&Coord::new(0, 1, 2, 0)));
        assert!(!out.coords.contains(&Coord::new(0, 3, 5, 0)));
        // Every output must be reachable: s*q + δ = p for some valid δ.
        for q in &out.coords {
            let s = q.scaled(2);
            let d = [3 - s.x, 5 - s.y, 0 - s.z];
            assert!(d.iter().all(|&v| (-1..=1).contains(&v)), "offset {d:?} out of kernel");
        }
    }

    #[test]
    fn staged_and_fused_agree() {
        let coords: Vec<Coord> = (0..40)
            .map(|i| Coord::new(i % 2, (i * 7) % 13 - 6, (i * 3) % 11 - 5, (i * 5) % 9 - 4))
            .collect();
        for k in [2usize, 3] {
            for s in [2i32, 3] {
                let a = staged_output_coords(&coords, k, s, Boundary::unbounded()).unwrap();
                let b = fused_output_coords(&coords, k, s, Boundary::unbounded()).unwrap();
                assert_eq!(a.coords, b.coords, "k={k} s={s}");
            }
        }
    }

    #[test]
    fn fused_moves_far_less_memory() {
        let coords: Vec<Coord> = (0..500).map(|i| Coord::new(0, i, i % 17, i % 5)).collect();
        let staged = staged_output_coords(&coords, 3, 2, Boundary::unbounded()).unwrap();
        let fused = fused_output_coords(&coords, 3, 2, Boundary::unbounded()).unwrap();
        assert!(
            staged.stats.total_accesses() > 4 * fused.stats.total_accesses(),
            "staged {} vs fused {}",
            staged.stats.total_accesses(),
            fused.stats.total_accesses()
        );
        assert_eq!(staged.stats.kernel_launches, 5);
        assert_eq!(fused.stats.kernel_launches, 2);
    }

    #[test]
    fn boundary_clips_outputs() {
        let coords = line_scene();
        let boundary = Boundary { min: Some([0, 0, 0]), max: Some([2, 1, 1]) };
        let out = fused_output_coords(&coords, 2, 2, boundary).unwrap();
        assert_eq!(out.coords, vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)]);
    }

    #[test]
    fn boundary_contains_semantics() {
        let b = Boundary { min: Some([0, 0, 0]), max: Some([2, 2, 2]) };
        assert!(b.contains(Coord::new(0, 0, 0, 0)));
        assert!(b.contains(Coord::new(0, 1, 1, 1)));
        assert!(!b.contains(Coord::new(0, 2, 0, 0)));
        assert!(!b.contains(Coord::new(0, -1, 0, 0)));
        assert!(Boundary::unbounded().contains(Coord::new(0, 9999, -9999, 0)));
    }

    #[test]
    fn outputs_unique_and_sorted() {
        let coords: Vec<Coord> = (0..100).map(|i| Coord::new(0, i % 10, i % 7, i % 3)).collect();
        let out = fused_output_coords(&coords, 3, 2, Boundary::unbounded()).unwrap();
        let mut sorted = out.coords.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(out.coords, sorted);
    }

    #[test]
    fn zero_stride_rejected() {
        assert!(fused_output_coords(&line_scene(), 3, 0, Boundary::unbounded()).is_err());
        assert!(staged_output_coords(&line_scene(), 3, 0, Boundary::unbounded()).is_err());
    }

    #[test]
    fn negative_coordinates_downsample_with_floor() {
        // -4..4 at stride 2: sites at even coordinates, including negatives.
        let coords: Vec<Coord> = (-4..4).map(|i| Coord::new(0, i, 0, 0)).collect();
        let out = fused_output_coords(&coords, 2, 2, Boundary::unbounded()).unwrap();
        assert!(out.coords.contains(&Coord::new(0, -2, 0, 0)));
        assert!(out.coords.contains(&Coord::new(0, -1, 0, 0)));
    }

    proptest! {
        #[test]
        fn prop_staged_fused_equal(
            seed_coords in proptest::collection::vec((0i32..2, -8i32..8, -8i32..8, -8i32..8), 1..60),
            k in 1usize..4,
            s in 1i32..4,
        ) {
            let coords: Vec<Coord> =
                seed_coords.iter().map(|&(b, x, y, z)| Coord::new(b, x, y, z)).collect();
            let a = staged_output_coords(&coords, k, s, Boundary::unbounded()).unwrap();
            let b = fused_output_coords(&coords, k, s, Boundary::unbounded()).unwrap();
            prop_assert_eq!(a.coords, b.coords);
        }

        #[test]
        fn prop_every_output_reachable(
            seed_coords in proptest::collection::vec((-8i32..8, -8i32..8, -8i32..8), 1..40),
            s in 2i32..4,
        ) {
            let coords: Vec<Coord> =
                seed_coords.iter().map(|&(x, y, z)| Coord::new(0, x, y, z)).collect();
            let out = fused_output_coords(&coords, 3, s, Boundary::unbounded()).unwrap();
            // Every output q must satisfy s*q + δ ∈ P_in for some kernel offset δ.
            for q in &out.coords {
                let base = q.scaled(s);
                let reachable = kernel_offsets(3).unwrap().iter().any(|&d| {
                    coords.contains(&base.offset(d))
                });
                prop_assert!(reachable, "output {} unreachable", q);
            }
        }
    }
}
