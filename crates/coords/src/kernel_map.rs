//! Map search (Algorithm 1 of the paper).
//!
//! A *kernel map* records, for every kernel offset `δ_n`, the list of
//! `(input index, output index)` pairs whose coordinates satisfy
//! `p_j = s * q_k + δ_n`. The gather–matmul–scatter dataflow is driven
//! entirely by this structure; its per-offset sizes are the workload
//! statistics behind the paper's grouping study (Figure 12).

use crate::offsets::{self, kernel_offsets};
use crate::table::{CoordIndex, MappingStats};
use crate::{Coord, CoordsError};
use torchsparse_runtime::{Task, ThreadPool};

/// One input→output pair of a kernel map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MapEntry {
    /// Index into the input coordinate/feature list.
    pub input: u32,
    /// Index into the output coordinate/feature list.
    pub output: u32,
}

/// The kernel map `M` for one sparse convolution layer, stored in CSR form:
/// one flat entry array plus `K^3 + 1` range bounds, one range per kernel
/// offset (TorchSparse++-style kernel-map compression). [`KernelMap::entries`]
/// returns the offset's range as a slice into the flat array, so consumers
/// are layout-agnostic; the CSR form removes the per-offset `Vec` headers
/// and allocator slack of the former ragged `Vec<Vec<MapEntry>>` and makes
/// the frozen-plan memory accounting exact.
///
/// Forward searches append entries in output-index-ascending order within
/// each offset, so for forward maps every CSR range is already sorted by
/// output row — the property `core`'s fused-execution ordering exploits to
/// chunk ranges as slice views instead of re-sorting.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMap {
    kernel_size: usize,
    stride: i32,
    /// All entries, offset-major (offset `n`'s entries are contiguous).
    entries: Vec<MapEntry>,
    /// CSR bounds: offset `n` owns `entries[bounds[n]..bounds[n + 1]]`.
    bounds: Vec<u32>,
    /// Memory accesses spent building this map.
    pub stats: MappingStats,
}

impl KernelMap {
    /// Creates a kernel map from raw per-offset entry lists (flattened into
    /// the CSR layout).
    ///
    /// # Errors
    ///
    /// Returns [`CoordsError::ZeroKernelSize`] / [`CoordsError::ZeroStride`]
    /// on degenerate parameters, and [`CoordsError::EmptyCoordinates`] if the
    /// number of entry lists is not `kernel_size^3`.
    pub fn from_parts(
        kernel_size: usize,
        stride: i32,
        per_offset: Vec<Vec<MapEntry>>,
        stats: MappingStats,
    ) -> Result<Self, CoordsError> {
        if kernel_size == 0 {
            return Err(CoordsError::ZeroKernelSize);
        }
        if stride == 0 {
            return Err(CoordsError::ZeroStride);
        }
        if per_offset.len() != offsets::kernel_volume(kernel_size) {
            return Err(CoordsError::EmptyCoordinates);
        }
        let total: usize = per_offset.iter().map(Vec::len).sum();
        let mut entries = Vec::with_capacity(total);
        let mut bounds = Vec::with_capacity(per_offset.len() + 1);
        bounds.push(0);
        for list in &per_offset {
            entries.extend_from_slice(list);
            bounds.push(entries.len() as u32);
        }
        Ok(KernelMap { kernel_size, stride, entries, bounds, stats })
    }

    /// Kernel size `K`.
    pub fn kernel_size(&self) -> usize {
        self.kernel_size
    }

    /// Convolution stride.
    pub fn stride(&self) -> i32 {
        self.stride
    }

    /// The entries for kernel offset index `n` — a slice of the flat CSR
    /// entry array.
    ///
    /// # Panics
    ///
    /// Panics if `n >= K^3`.
    pub fn entries(&self, n: usize) -> &[MapEntry] {
        &self.entries[self.bounds[n] as usize..self.bounds[n + 1] as usize]
    }

    /// The flat CSR entry array (offset-major).
    pub fn flat_entries(&self) -> &[MapEntry] {
        &self.entries
    }

    /// The CSR range of offset `n` within [`KernelMap::flat_entries`].
    ///
    /// # Panics
    ///
    /// Panics if `n >= K^3`.
    pub fn entry_range(&self, n: usize) -> std::ops::Range<usize> {
        self.bounds[n] as usize..self.bounds[n + 1] as usize
    }

    /// Number of kernel offsets (`K^3`).
    pub fn num_offsets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Map size per offset — the paper's workload statistic (Figure 12).
    pub fn sizes(&self) -> Vec<usize> {
        self.bounds.windows(2).map(|w| (w[1] - w[0]) as usize).collect()
    }

    /// Total number of map entries `|M|`.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Bytes the CSR representation occupies (flat entries + range bounds),
    /// for the frozen-plan memory accounting.
    pub fn memory_bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<MapEntry>()
            + self.bounds.len() * std::mem::size_of::<u32>()) as u64
    }

    /// Returns the transposed map (inputs and outputs swapped, offsets
    /// mirrored), used by inverse/transposed convolution in UNet decoders.
    ///
    /// For odd kernels the mirrored offset of `n` is `K^3 - 1 - n`; for even
    /// kernels there is no mirror, so entries stay at their offset (the
    /// decoder consumes them with swapped roles only).
    pub fn transposed(&self) -> KernelMap {
        let volume = self.num_offsets();
        let mut per_offset = vec![Vec::new(); volume];
        for n in 0..volume {
            let target = if offsets::has_mirror_property(self.kernel_size) {
                offsets::mirror_index(self.kernel_size, n)
            } else {
                n
            };
            per_offset[target] = self
                .entries(n)
                .iter()
                .map(|e| MapEntry { input: e.output, output: e.input })
                .collect();
        }
        let mut entries = Vec::with_capacity(self.entries.len());
        let mut bounds = Vec::with_capacity(volume + 1);
        bounds.push(0);
        for list in &per_offset {
            entries.extend_from_slice(list);
            bounds.push(entries.len() as u32);
        }
        KernelMap {
            kernel_size: self.kernel_size,
            stride: self.stride,
            entries,
            bounds,
            stats: MappingStats::default(),
        }
    }
}

/// Searches the kernel map by querying every output neighborhood
/// (Algorithm 1): for each output `q_k` and offset `δ_n`, probe the input
/// table for `s * q_k + δ_n`.
///
/// `table` must have been built over `in_coords` (indices = positions).
///
/// # Errors
///
/// Returns [`CoordsError::ZeroKernelSize`] or [`CoordsError::ZeroStride`] on
/// degenerate parameters.
pub fn search(
    out_coords: &[Coord],
    table: &dyn CoordIndex,
    kernel_size: usize,
    stride: i32,
) -> Result<KernelMap, CoordsError> {
    search_dilated(out_coords, table, kernel_size, stride, 1)
}

/// [`search`] with a dilation factor: probes `s * q_k + d * δ_n`, the
/// dilated (à-trous) sparse convolution supported by SpConv-style engines.
///
/// # Errors
///
/// Returns [`CoordsError::ZeroStride`] if `stride == 0` or `dilation == 0`,
/// and [`CoordsError::ZeroKernelSize`] if `kernel_size == 0`.
pub fn search_dilated(
    out_coords: &[Coord],
    table: &dyn CoordIndex,
    kernel_size: usize,
    stride: i32,
    dilation: i32,
) -> Result<KernelMap, CoordsError> {
    search_dilated_on(ThreadPool::global(), out_coords, table, kernel_size, stride, dilation)
}

/// [`search_dilated`] on an explicit runtime pool.
///
/// Parallelism is per kernel offset: each of the `K^3` offsets scans every
/// output coordinate and probes the (shared, read-only) table, writing its
/// own entry list. Within an offset the scan order is output-index
/// ascending — identical to the serial engine — so entry lists, their
/// ordering, and the access statistics are bitwise independent of the pool
/// width.
///
/// # Errors
///
/// As [`search_dilated`].
pub fn search_dilated_on(
    pool: &ThreadPool,
    out_coords: &[Coord],
    table: &dyn CoordIndex,
    kernel_size: usize,
    stride: i32,
    dilation: i32,
) -> Result<KernelMap, CoordsError> {
    if stride == 0 || dilation == 0 {
        return Err(CoordsError::ZeroStride);
    }
    let offs = kernel_offsets(kernel_size)?;
    let mut per_offset = vec![Vec::new(); offs.len()];
    // Per-offset (reads, writes) counters, folded after the batch so the
    // totals do not depend on task completion order.
    let mut access = vec![(0u64, 0u64); offs.len()];
    let tasks: Vec<Task<'_>> = per_offset
        .iter_mut()
        .zip(access.iter_mut())
        .zip(offs.iter())
        .map(|((entries, acc), &d)| {
            Box::new(move || {
                let delta = [d[0] * dilation, d[1] * dilation, d[2] * dilation];
                for (k, q) in out_coords.iter().enumerate() {
                    let r = q.scaled(stride).offset(delta);
                    let (found, probes) = table.query(r);
                    acc.0 += probes;
                    if let Some(j) = found {
                        entries.push(MapEntry { input: j, output: k as u32 });
                        acc.1 += 1; // append the map entry
                    }
                }
            }) as Task<'_>
        })
        .collect();
    pool.run(tasks);
    let mut stats = MappingStats { kernel_launches: 1, ..MappingStats::default() };
    for (reads, writes) in access {
        stats.reads += reads;
        stats.writes += writes;
    }
    KernelMap::from_parts(kernel_size, stride, per_offset, stats)
}

/// Symmetry-exploiting map search for stride-1 submanifold layers with odd
/// kernel size (§4.2.1, §4.4 "utilize the symmetry of submanifold maps").
///
/// Only the first `(K^3 - 1) / 2` offsets are actually searched; the mirror
/// offsets reuse the same entries with input/output swapped, and the center
/// offset is the identity map. This halves the query traffic — the "symmetry"
/// bar of Figure 13.
///
/// `coords` serves as both input and output coordinates (submanifold).
///
/// # Errors
///
/// Returns [`CoordsError::ZeroKernelSize`] if `kernel_size == 0` and
/// [`CoordsError::ZeroStride`] if the kernel size is even (no mirror
/// property to exploit — callers should fall back to [`search`]).
pub fn search_submanifold_symmetric(
    coords: &[Coord],
    table: &dyn CoordIndex,
    kernel_size: usize,
) -> Result<KernelMap, CoordsError> {
    search_submanifold_symmetric_dilated(coords, table, kernel_size, 1)
}

/// [`search_submanifold_symmetric`] with a dilation factor — the mirror
/// property is preserved under offset scaling, so the half-search trick
/// applies to dilated submanifold layers too.
///
/// # Errors
///
/// Same conditions as [`search_submanifold_symmetric`], plus
/// [`CoordsError::ZeroStride`] when `dilation == 0`.
pub fn search_submanifold_symmetric_dilated(
    coords: &[Coord],
    table: &dyn CoordIndex,
    kernel_size: usize,
    dilation: i32,
) -> Result<KernelMap, CoordsError> {
    search_submanifold_symmetric_dilated_on(
        ThreadPool::global(),
        coords,
        table,
        kernel_size,
        dilation,
    )
}

/// [`search_submanifold_symmetric_dilated`] on an explicit runtime pool.
///
/// Each task owns one offset `n < center` *and* its mirror `K^3 - 1 - n`:
/// the pair shares a single coordinate scan (the symmetry trick), and the
/// two entry lists a task writes are disjoint from every other task's, so
/// per-offset output is bitwise independent of the pool width.
///
/// # Errors
///
/// As [`search_submanifold_symmetric_dilated`].
pub fn search_submanifold_symmetric_dilated_on(
    pool: &ThreadPool,
    coords: &[Coord],
    table: &dyn CoordIndex,
    kernel_size: usize,
    dilation: i32,
) -> Result<KernelMap, CoordsError> {
    if kernel_size == 0 {
        return Err(CoordsError::ZeroKernelSize);
    }
    if !offsets::has_mirror_property(kernel_size) || dilation == 0 {
        return Err(CoordsError::ZeroStride);
    }
    let offs = kernel_offsets(kernel_size)?;
    let volume = offs.len();
    // `has_mirror_property` guarantees an odd kernel, which always has a
    // center offset — this cannot be `None` here.
    #[allow(clippy::expect_used)]
    let center = offsets::center_index(kernel_size).expect("odd kernel has a center");
    let mut per_offset = vec![Vec::new(); volume];

    // Center offset: identity map, no table queries at all.
    per_offset[center] =
        (0..coords.len() as u32).map(|i| MapEntry { input: i, output: i }).collect();

    // Pair each searched offset n with its mirror volume-1-n. Splitting at
    // the center leaves the searched offsets in `low` and (after the center
    // element itself) their mirrors in `high` in reverse order:
    // low[n] ↔ high[1..][center - 1 - n].
    let (low, high) = per_offset.split_at_mut(center);
    let mut access = vec![(0u64, 0u64); center];
    let tasks: Vec<Task<'_>> = low
        .iter_mut()
        .zip(high[1..].iter_mut().rev())
        .zip(access.iter_mut())
        .enumerate()
        .map(|(n, ((forward, mirrored), acc))| {
            let d = offs[n];
            Box::new(move || {
                let delta = [d[0] * dilation, d[1] * dilation, d[2] * dilation];
                for (k, q) in coords.iter().enumerate() {
                    let r = q.offset(delta);
                    let (found, probes) = table.query(r);
                    acc.0 += probes;
                    if let Some(j) = found {
                        forward.push(MapEntry { input: j, output: k as u32 });
                        // Mirror entry: (q_k, p_j, W_{-δ}) is also a valid map entry.
                        mirrored.push(MapEntry { input: k as u32, output: j });
                        acc.1 += 2;
                    }
                }
            }) as Task<'_>
        })
        .collect();
    pool.run(tasks);
    let mut stats = MappingStats { kernel_launches: 1, ..MappingStats::default() };
    for (reads, writes) in access {
        stats.reads += reads;
        stats.writes += writes;
    }
    KernelMap::from_parts(kernel_size, 1, per_offset, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoordHashMap, GridTable};

    /// A small L-shaped scene in one plane.
    fn scene() -> Vec<Coord> {
        vec![
            Coord::new(0, 0, 0, 0),
            Coord::new(0, 1, 0, 0),
            Coord::new(0, 2, 0, 0),
            Coord::new(0, 2, 1, 0),
            Coord::new(0, 2, 2, 0),
        ]
    }

    #[test]
    fn submanifold_search_finds_neighbors() {
        let coords = scene();
        let (table, _) = CoordHashMap::build(&coords);
        let map = search(&coords, &table, 3, 1).unwrap();
        // Center offset must be the identity map.
        let center = offsets::center_index(3).unwrap();
        assert_eq!(map.entries(center).len(), coords.len());
        for e in map.entries(center) {
            assert_eq!(e.input, e.output);
        }
        // Offset (+1, 0, 0) (index of [1,0,0] in lexicographic order).
        let offs = kernel_offsets(3).unwrap();
        let plus_x = offs.iter().position(|&d| d == [1, 0, 0]).unwrap();
        // q + (1,0,0) = p means p is the +x neighbor of q.
        // Neighbor pairs along x: (0,0,0)->(1,0,0), (1,0,0)->(2,0,0).
        assert_eq!(map.entries(plus_x).len(), 2);
    }

    #[test]
    fn symmetric_search_matches_full_search() {
        let coords = scene();
        let (table, _) = CoordHashMap::build(&coords);
        let full = search(&coords, &table, 3, 1).unwrap();
        let sym = search_submanifold_symmetric(&coords, &table, 3).unwrap();
        for n in 0..27 {
            let mut a: Vec<_> = full.entries(n).to_vec();
            let mut b: Vec<_> = sym.entries(n).to_vec();
            a.sort_by_key(|e| (e.output, e.input));
            b.sort_by_key(|e| (e.output, e.input));
            assert_eq!(a, b, "offset {n} differs");
        }
    }

    #[test]
    fn symmetric_search_halves_queries() {
        let coords = scene();
        let (table, _) = CoordHashMap::build(&coords);
        let full = search(&coords, &table, 3, 1).unwrap();
        let sym = search_submanifold_symmetric(&coords, &table, 3).unwrap();
        assert!(
            sym.stats.reads * 2 <= full.stats.reads,
            "symmetric reads {} should be at most half of {}",
            sym.stats.reads,
            full.stats.reads
        );
    }

    #[test]
    fn symmetric_rejects_even_kernels() {
        let coords = scene();
        let (table, _) = CoordHashMap::build(&coords);
        assert!(search_submanifold_symmetric(&coords, &table, 2).is_err());
    }

    #[test]
    fn map_sizes_mirror_for_submanifold() {
        // §4.2.1: maps for ±δ always have the same size.
        let coords = scene();
        let (table, _) = CoordHashMap::build(&coords);
        let map = search(&coords, &table, 3, 1).unwrap();
        let sizes = map.sizes();
        for n in 0..27 {
            assert_eq!(sizes[n], sizes[26 - n], "offset {n} vs mirror");
        }
    }

    #[test]
    fn grid_and_hashmap_produce_identical_maps() {
        let coords = scene();
        let (hash, _) = CoordHashMap::build(&coords);
        let (grid, _) = GridTable::build(&coords, u64::MAX).unwrap();
        let a = search(&coords, &hash, 3, 1).unwrap();
        let b = search(&coords, &grid, 3, 1).unwrap();
        for n in 0..27 {
            assert_eq!(a.entries(n), b.entries(n));
        }
    }

    #[test]
    fn strided_search_uses_scaled_outputs() {
        // Inputs on a line; stride-2 output at (0,0,0) should see inputs
        // within the kernel window around (0,0,0)*2.
        let inputs = vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0), Coord::new(0, 3, 0, 0)];
        let (table, _) = CoordHashMap::build(&inputs);
        let outputs = vec![Coord::new(0, 0, 0, 0), Coord::new(0, 1, 0, 0)];
        let map = search(&outputs, &table, 3, 2).unwrap();
        // Output 0 (site 0): offsets -1..1 around x=0 catch inputs x=0 (δ=0), x=1 (δ=1).
        // Output 1 (site 2): catches x=1 (δ=-1), x=3 (δ=1).
        assert_eq!(map.total_entries(), 4);
    }

    #[test]
    fn transposed_swaps_roles() {
        let coords = scene();
        let (table, _) = CoordHashMap::build(&coords);
        let map = search(&coords, &table, 3, 1).unwrap();
        let t = map.transposed();
        assert_eq!(t.total_entries(), map.total_entries());
        // An entry (j -> k) at offset n becomes (k -> j) at the mirror offset,
        // which for submanifold maps reproduces the original map exactly.
        for n in 0..27 {
            let mut orig: Vec<_> = map.entries(n).to_vec();
            let mut tr: Vec<_> = t.entries(n).to_vec();
            orig.sort_by_key(|e| (e.output, e.input));
            tr.sort_by_key(|e| (e.output, e.input));
            assert_eq!(orig, tr);
        }
    }

    #[test]
    fn from_parts_validates() {
        assert!(KernelMap::from_parts(0, 1, vec![], MappingStats::default()).is_err());
        assert!(KernelMap::from_parts(3, 0, vec![Vec::new(); 27], MappingStats::default()).is_err());
        assert!(KernelMap::from_parts(3, 1, vec![Vec::new(); 26], MappingStats::default()).is_err());
        assert!(KernelMap::from_parts(3, 1, vec![Vec::new(); 27], MappingStats::default()).is_ok());
    }

    #[test]
    fn dilated_search_reaches_farther() {
        // Points two apart: dilation 2 links them through the unit offsets.
        let coords = vec![Coord::new(0, 0, 0, 0), Coord::new(0, 2, 0, 0)];
        let (table, _) = CoordHashMap::build(&coords);
        let plain = search(&coords, &table, 3, 1).unwrap();
        let dilated = search_dilated(&coords, &table, 3, 1, 2).unwrap();
        // Without dilation only the identity offset matches.
        assert_eq!(plain.total_entries(), 2);
        // With dilation 2, offsets (+-1,0,0) land on the neighbor too.
        assert_eq!(dilated.total_entries(), 4);
    }

    #[test]
    fn dilated_symmetric_matches_dilated_full() {
        let coords = scene();
        let (table, _) = CoordHashMap::build(&coords);
        let full = search_dilated(&coords, &table, 3, 1, 2).unwrap();
        let sym = search_submanifold_symmetric_dilated(&coords, &table, 3, 2).unwrap();
        for n in 0..27 {
            let mut a: Vec<_> = full.entries(n).to_vec();
            let mut b: Vec<_> = sym.entries(n).to_vec();
            a.sort_by_key(|e| (e.output, e.input));
            b.sort_by_key(|e| (e.output, e.input));
            assert_eq!(a, b, "offset {n} differs under dilation");
        }
    }

    #[test]
    fn zero_dilation_rejected() {
        let coords = scene();
        let (table, _) = CoordHashMap::build(&coords);
        assert!(search_dilated(&coords, &table, 3, 1, 0).is_err());
        assert!(search_submanifold_symmetric_dilated(&coords, &table, 3, 0).is_err());
    }

    #[test]
    fn parallel_search_identical_to_serial() {
        // Entry lists, their order, and the access statistics must not
        // depend on the pool width.
        let coords = scene();
        let (table, _) = CoordHashMap::build(&coords);
        let serial_pool = ThreadPool::new(1);
        let serial = search_dilated_on(&serial_pool, &coords, &table, 3, 1, 1).unwrap();
        let serial_sym =
            search_submanifold_symmetric_dilated_on(&serial_pool, &coords, &table, 3, 1).unwrap();
        for threads in [2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let parallel = search_dilated_on(&pool, &coords, &table, 3, 1, 1).unwrap();
            assert_eq!(serial, parallel, "full search differs at {threads} threads");
            let parallel_sym =
                search_submanifold_symmetric_dilated_on(&pool, &coords, &table, 3, 1).unwrap();
            assert_eq!(serial_sym, parallel_sym, "symmetric search differs at {threads} threads");
        }
    }

    // CSR↔legacy equivalence on random ragged per-offset lists: the
    // flattened layout must reproduce every legacy list, size, and total
    // exactly, and survive a transpose round-trip.
    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        #[test]
        fn csr_roundtrip_preserves_ragged_lists(
            raw in proptest::collection::vec(
                proptest::collection::vec((0u32..500, 0u32..500), 0..12),
                27..28,
            ),
        ) {
            let per_offset: Vec<Vec<MapEntry>> = raw
                .iter()
                .map(|list| {
                    let mut l: Vec<MapEntry> = list
                        .iter()
                        .map(|&(input, output)| MapEntry { input, output })
                        .collect();
                    // Forward searches emit output-ascending entries.
                    l.sort_by_key(|e| (e.output, e.input));
                    l
                })
                .collect();
            let map = KernelMap::from_parts(3, 1, per_offset.clone(), MappingStats::default())
                .map_err(|e| e.to_string())?;
            proptest::prop_assert_eq!(map.num_offsets(), 27);
            let total: usize = per_offset.iter().map(Vec::len).sum();
            proptest::prop_assert_eq!(map.total_entries(), total);
            proptest::prop_assert_eq!(map.flat_entries().len(), total);
            for (n, legacy) in per_offset.iter().enumerate() {
                proptest::prop_assert_eq!(map.entries(n), legacy.as_slice());
                proptest::prop_assert_eq!(map.entry_range(n).len(), legacy.len());
                proptest::prop_assert_eq!(map.sizes()[n], legacy.len());
            }
            // Transposing twice restores the original map exactly
            // (mirror of mirror is the identity offset permutation).
            let double = map.transposed().transposed();
            for n in 0..27 {
                proptest::prop_assert_eq!(double.entries(n), map.entries(n));
            }
        }
    }

    #[test]
    fn multi_batch_isolation() {
        // Identical geometry in two batches must not cross-link.
        let coords = vec![
            Coord::new(0, 0, 0, 0),
            Coord::new(0, 1, 0, 0),
            Coord::new(1, 0, 0, 0),
            Coord::new(1, 1, 0, 0),
        ];
        let (table, _) = CoordHashMap::build(&coords);
        let map = search(&coords, &table, 3, 1).unwrap();
        for n in 0..27 {
            for e in map.entries(n) {
                assert_eq!(
                    coords[e.input as usize].batch, coords[e.output as usize].batch,
                    "map entry crosses batches"
                );
            }
        }
    }
}
