use crate::table::{CoordIndex, CoordTable};
use crate::Coord;

/// The "conventional hashmap" of the paper (§2.1.2): open addressing with
/// linear probing over FNV-hashed coordinates.
///
/// Construction and queries may take multiple probes when hash slots
/// collide; the probe counts returned by [`CoordTable::insert`] /
/// [`CoordTable::query`] capture exactly the extra DRAM accesses the paper's
/// grid-based alternative avoids (§4.4: "grid ... construction/query requires
/// exactly one DRAM access per entry").
///
/// # Example
///
/// ```
/// use torchsparse_coords::{Coord, CoordHashMap, CoordIndex, CoordTable};
///
/// let mut table = CoordHashMap::with_capacity(16);
/// table.insert(Coord::new(0, 1, 2, 3), 7);
/// let (found, _probes) = table.query(Coord::new(0, 1, 2, 3));
/// assert_eq!(found, Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct CoordHashMap {
    slots: Vec<Option<(Coord, u32)>>,
    mask: usize,
    len: usize,
    growths: u64,
}

impl CoordHashMap {
    /// Default load factor target: slots = 2 * expected entries.
    const LOAD_FACTOR_INV: usize = 2;

    /// Creates a table sized for `expected` entries.
    ///
    /// The slot count is the next power of two of `2 * expected` (minimum 8),
    /// giving a worst-case load factor of 0.5 — the configuration real
    /// engines use to bound probe chains.
    pub fn with_capacity(expected: usize) -> Self {
        let slots = (expected * Self::LOAD_FACTOR_INV).next_power_of_two().max(8);
        CoordHashMap { slots: vec![None; slots], mask: slots - 1, len: 0, growths: 0 }
    }

    /// Builds a table from a coordinate list, assigning each coordinate its
    /// position as the index. Returns the table and total construction probes.
    ///
    /// The table is pre-sized from `coords.len()`, so construction never
    /// rehashes ([`CoordHashMap::growth_count`] stays 0) — every mapping-path
    /// build pays exactly one allocation.
    pub fn build(coords: &[Coord]) -> (Self, u64) {
        let mut table = CoordHashMap::with_capacity(coords.len());
        let mut probes = 0;
        for (i, &c) in coords.iter().enumerate() {
            probes += table.insert(c, i as u32);
        }
        debug_assert_eq!(table.growth_count(), 0, "pre-sized build must not rehash");
        (table, probes)
    }

    /// Number of hash slots (for load-factor diagnostics).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// How many times the table grew (rehashed) since construction. A
    /// correctly pre-sized table reports 0; incremental callers that outgrow
    /// the 0.5 load factor pay a doubling rehash each growth.
    pub fn growth_count(&self) -> u64 {
        self.growths
    }

    /// Doubles the slot array and reinserts every entry.
    fn grow(&mut self) {
        let new_slots = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![None; new_slots]);
        self.mask = new_slots - 1;
        self.len = 0;
        self.growths += 1;
        for entry in old.into_iter().flatten() {
            let (coord, index) = entry;
            self.insert_inner(coord, index);
        }
    }

    fn insert_inner(&mut self, coord: Coord, index: u32) -> u64 {
        let mut slot = (coord.fnv1a() as usize) & self.mask;
        let mut probes = 0;
        loop {
            probes += 1;
            match &self.slots[slot] {
                None => {
                    self.slots[slot] = Some((coord, index));
                    self.len += 1;
                    return probes;
                }
                Some((existing, _)) if *existing == coord => {
                    // Duplicate insert keeps the first index.
                    return probes;
                }
                Some(_) => {
                    slot = (slot + 1) & self.mask;
                }
            }
        }
    }
}

impl CoordTable for CoordHashMap {
    fn insert(&mut self, coord: Coord, index: u32) -> u64 {
        // Keep the load factor at or below 0.5: grow before the insert that
        // would exceed it, so probe chains stay short and insertion can
        // never cycle on a full table.
        if (self.len + 1) * Self::LOAD_FACTOR_INV > self.slots.len() {
            self.grow();
        }
        self.insert_inner(coord, index)
    }
}

impl CoordIndex for CoordHashMap {
    fn query(&self, coord: Coord) -> (Option<u32>, u64) {
        let mut slot = (coord.fnv1a() as usize) & self.mask;
        let mut probes = 0;
        loop {
            probes += 1;
            match &self.slots[slot] {
                None => return (None, probes),
                Some((existing, idx)) if *existing == coord => return (Some(*idx), probes),
                Some(_) => {
                    slot = (slot + 1) & self.mask;
                    if probes as usize > self.slots.len() {
                        return (None, probes); // table full of other keys
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> u64 {
        // Each slot stores a 16-byte coordinate, a 4-byte index and a tag;
        // model as 24 bytes like a packed GPU hash table entry.
        (self.slots.len() * 24) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_roundtrip() {
        let coords: Vec<Coord> = (0..100).map(|i| Coord::new(0, i, i * 3 - 7, -i)).collect();
        let (table, _) = CoordHashMap::build(&coords);
        assert_eq!(table.len(), 100);
        for (i, &c) in coords.iter().enumerate() {
            assert_eq!(table.query(c).0, Some(i as u32), "coord {c}");
        }
    }

    #[test]
    fn query_missing_returns_none() {
        let (table, _) = CoordHashMap::build(&[Coord::new(0, 1, 1, 1)]);
        assert_eq!(table.query(Coord::new(0, 2, 2, 2)).0, None);
    }

    #[test]
    fn duplicate_insert_keeps_first_index() {
        let mut t = CoordHashMap::with_capacity(4);
        t.insert(Coord::new(0, 1, 2, 3), 0);
        t.insert(Coord::new(0, 1, 2, 3), 9);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query(Coord::new(0, 1, 2, 3)).0, Some(0));
    }

    #[test]
    fn probe_counts_at_least_one() {
        let mut t = CoordHashMap::with_capacity(4);
        assert!(t.insert(Coord::new(0, 0, 0, 0), 0) >= 1);
        let (_, probes) = t.query(Coord::new(0, 0, 0, 0));
        assert!(probes >= 1);
    }

    #[test]
    fn collisions_increase_probes() {
        // With many entries, total probes must exceed entry count (some
        // collisions are statistically certain at load factor 0.5).
        let coords: Vec<Coord> =
            (0..10_000).map(|i| Coord::new(0, i % 100, i / 100, i % 7)).collect();
        let (_, probes) = CoordHashMap::build(&coords);
        assert!(probes > 10_000, "expected some collision probes, got {probes}");
    }

    #[test]
    fn load_factor_bounded() {
        let (table, _) =
            CoordHashMap::build(&(0..1000).map(|i| Coord::new(0, i, 0, 0)).collect::<Vec<_>>());
        assert!(table.slot_count() >= 2000);
    }

    #[test]
    fn batch_separates_scenes() {
        let (table, _) = CoordHashMap::build(&[Coord::new(0, 1, 1, 1), Coord::new(1, 1, 1, 1)]);
        assert_eq!(table.len(), 2);
        assert_eq!(table.query(Coord::new(0, 1, 1, 1)).0, Some(0));
        assert_eq!(table.query(Coord::new(1, 1, 1, 1)).0, Some(1));
    }

    #[test]
    fn presized_build_never_rehashes() {
        // The mapping path builds tables via `build`, which pre-sizes from
        // the input coordinate count — no rehash is ever needed.
        for count in [0, 1, 7, 100, 5000] {
            let coords: Vec<Coord> = (0..count).map(|i| Coord::new(0, i, -i, i * 2)).collect();
            let (table, _) = CoordHashMap::build(&coords);
            assert_eq!(table.growth_count(), 0, "build({count}) rehashed");
            assert_eq!(table.len(), count as usize);
        }
    }

    #[test]
    fn incremental_overfill_grows_and_stays_correct() {
        let mut table = CoordHashMap::with_capacity(2);
        let initial_slots = table.slot_count();
        for i in 0..100 {
            table.insert(Coord::new(0, i, 0, 0), i as u32);
        }
        assert!(table.growth_count() > 0, "overfilled table must rehash");
        assert!(table.slot_count() > initial_slots);
        // Load factor invariant holds after growth.
        assert!(table.len() * 2 <= table.slot_count());
        for i in 0..100 {
            assert_eq!(table.query(Coord::new(0, i, 0, 0)).0, Some(i as u32));
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let (table, _) = CoordHashMap::build(&[Coord::new(0, 0, 0, 0)]);
        assert!(table.memory_bytes() > 0);
    }
}
