use crate::table::{CoordIndex, CoordTable};
use crate::{Coord, CoordsError};

/// The collision-free grid table (§4.4): a dense array over the coordinate
/// bounding box, one cell per possible voxel.
///
/// "grid corresponds to a naive collision-free grid-based hashmap: it takes
/// larger memory space, but hashmap construction/query requires exactly one
/// DRAM access per entry" — this is the data structure SpConv uses for map
/// search, and the one TorchSparse's adaptive strategy picks when the scene
/// bounding box is affordable.
///
/// # Example
///
/// ```
/// use torchsparse_coords::{Coord, CoordIndex, GridTable};
///
/// let coords = [Coord::new(0, 5, -3, 2), Coord::new(0, 6, -3, 2)];
/// let (grid, _probes) = GridTable::build(&coords, u64::MAX)?;
/// assert_eq!(grid.query(Coord::new(0, 6, -3, 2)).0, Some(1));
/// assert_eq!(grid.query(Coord::new(0, 9, 9, 9)).0, None);
/// # Ok::<(), torchsparse_coords::CoordsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridTable {
    /// Inclusive minimum corner of the bounding box (batch, x, y, z).
    min: [i64; 4],
    /// Extent along each of (batch, x, y, z).
    extent: [i64; 4],
    /// Dense cells storing `index + 1`; `0` marks empty. The +1 encoding
    /// lets the table allocate with `vec![0; n]`, which the allocator
    /// serves from fresh zero pages — the dense array can reach hundreds
    /// of megabytes, and a sentinel memset over it would cost more than
    /// the map search it supports.
    cells: Vec<u32>,
    len: usize,
}

/// Sentinel for an empty cell (occupied cells store `index + 1`).
const EMPTY: u32 = 0;

impl GridTable {
    /// Builds a grid table over the bounding box of `coords`, assigning each
    /// coordinate its list position as the index. Returns the table and the
    /// number of memory accesses (exactly one write per coordinate).
    ///
    /// # Errors
    ///
    /// - [`CoordsError::EmptyCoordinates`] if `coords` is empty.
    /// - [`CoordsError::GridTooLarge`] if the bounding box needs more than
    ///   `cell_limit` cells (callers fall back to the hashmap in that case,
    ///   mirroring the paper's per-layer `[grid, hashmap]` choice).
    pub fn build(coords: &[Coord], cell_limit: u64) -> Result<(Self, u64), CoordsError> {
        if coords.is_empty() {
            return Err(CoordsError::EmptyCoordinates);
        }
        let mut min = [i64::MAX; 4];
        let mut max = [i64::MIN; 4];
        for c in coords {
            let v = [c.batch as i64, c.x as i64, c.y as i64, c.z as i64];
            for d in 0..4 {
                min[d] = min[d].min(v[d]);
                max[d] = max[d].max(v[d]);
            }
        }
        let extent =
            [max[0] - min[0] + 1, max[1] - min[1] + 1, max[2] - min[2] + 1, max[3] - min[3] + 1];
        let cells_needed = extent.iter().try_fold(1u64, |acc, &e| acc.checked_mul(e as u64));
        let cells_needed = match cells_needed {
            Some(n) if n <= cell_limit => n,
            Some(n) => return Err(CoordsError::GridTooLarge { cells: n, limit: cell_limit }),
            None => return Err(CoordsError::GridTooLarge { cells: u64::MAX, limit: cell_limit }),
        };

        let mut table =
            GridTable { min, extent, cells: vec![EMPTY; cells_needed as usize], len: 0 };
        let mut accesses = 0;
        for (i, &c) in coords.iter().enumerate() {
            accesses += table.insert(c, i as u32);
        }
        Ok((table, accesses))
    }

    /// Flat cell index for an in-bounds coordinate; `None` if outside the box.
    fn cell_of(&self, c: Coord) -> Option<usize> {
        let v = [c.batch as i64, c.x as i64, c.y as i64, c.z as i64];
        let mut idx = 0i64;
        for ((&value, &min), &extent) in v.iter().zip(&self.min).zip(&self.extent) {
            let off = value - min;
            if off < 0 || off >= extent {
                return None;
            }
            idx = idx * extent + off;
        }
        Some(idx as usize)
    }
}

impl CoordTable for GridTable {
    fn insert(&mut self, coord: Coord, index: u32) -> u64 {
        let Some(cell) = self.cell_of(coord) else {
            // Outside the bounding box the table was built for; treat as a
            // single failed access (callers construct over the full set, so
            // this only happens through misuse).
            return 1;
        };
        if self.cells[cell] == EMPTY {
            self.cells[cell] = index + 1;
            self.len += 1;
        }
        1 // exactly one DRAM access: the collision-free property
    }
}

impl CoordIndex for GridTable {
    fn query(&self, coord: Coord) -> (Option<u32>, u64) {
        match self.cell_of(coord) {
            Some(cell) => {
                let v = self.cells[cell];
                (if v == EMPTY { None } else { Some(v - 1) }, 1)
            }
            // Out-of-box coordinates are rejected by the bounds check alone,
            // before touching memory.
            None => (None, 0),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> u64 {
        (self.cells.len() * std::mem::size_of::<u32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoordHashMap;

    fn sample_coords() -> Vec<Coord> {
        let mut v = Vec::new();
        for x in -3..3 {
            for y in 0..4 {
                v.push(Coord::new(0, x, y, x + y));
            }
        }
        v
    }

    #[test]
    fn build_and_query_roundtrip() {
        let coords = sample_coords();
        let (grid, accesses) = GridTable::build(&coords, u64::MAX).unwrap();
        assert_eq!(grid.len(), coords.len());
        assert_eq!(accesses, coords.len() as u64, "one access per insert");
        for (i, &c) in coords.iter().enumerate() {
            let (found, probes) = grid.query(c);
            assert_eq!(found, Some(i as u32));
            assert_eq!(probes, 1, "collision-free query is one access");
        }
    }

    #[test]
    fn missing_inside_box() {
        let coords = [Coord::new(0, 0, 0, 0), Coord::new(0, 2, 2, 2)];
        let (grid, _) = GridTable::build(&coords, u64::MAX).unwrap();
        assert_eq!(grid.query(Coord::new(0, 1, 1, 1)).0, None);
    }

    #[test]
    fn out_of_box_is_free() {
        let (grid, _) = GridTable::build(&[Coord::new(0, 0, 0, 0)], u64::MAX).unwrap();
        let (found, probes) = grid.query(Coord::new(0, 100, 100, 100));
        assert_eq!(found, None);
        assert_eq!(probes, 0);
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(GridTable::build(&[], u64::MAX).unwrap_err(), CoordsError::EmptyCoordinates);
    }

    #[test]
    fn cell_limit_enforced() {
        let coords = [Coord::new(0, 0, 0, 0), Coord::new(0, 1000, 1000, 1000)];
        let err = GridTable::build(&coords, 1_000_000).unwrap_err();
        assert!(matches!(err, CoordsError::GridTooLarge { .. }));
    }

    #[test]
    fn agrees_with_hashmap() {
        let coords = sample_coords();
        let (grid, _) = GridTable::build(&coords, u64::MAX).unwrap();
        let (hash, _) = CoordHashMap::build(&coords);
        for x in -5..5 {
            for y in -2..6 {
                for z in -8..8 {
                    let c = Coord::new(0, x, y, z);
                    assert_eq!(grid.query(c).0, hash.query(c).0, "disagree on {c}");
                }
            }
        }
    }

    #[test]
    fn grid_memory_exceeds_hashmap_on_sparse_scenes() {
        // The paper's tradeoff: grid takes more memory for scattered scenes.
        let coords: Vec<Coord> = (0..10).map(|i| Coord::new(0, i * 37, i * 11, i * 5)).collect();
        let (grid, _) = GridTable::build(&coords, u64::MAX).unwrap();
        let (hash, _) = CoordHashMap::build(&coords);
        assert!(grid.memory_bytes() > hash.memory_bytes());
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let coords = [Coord::new(0, 1, 1, 1), Coord::new(0, 1, 1, 1)];
        let (grid, _) = GridTable::build(&coords, u64::MAX).unwrap();
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.query(coords[0]).0, Some(0));
    }
}
