use crate::Coord;

/// Memory-access statistics of a mapping operation.
///
/// The paper's mapping analysis (§3, §4.4) is memory-bound: "hashmap
/// construction and output coordinate calculation both require multiple DRAM
/// accesses". Every table and mapping routine in this crate therefore
/// reports how many random DRAM accesses it performed, and the GPU cost
/// simulator turns these counts into latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MappingStats {
    /// Random-access reads of table/intermediate storage.
    pub reads: u64,
    /// Random-access writes of table/intermediate storage.
    pub writes: u64,
    /// Number of distinct GPU kernels this operation would launch.
    pub kernel_launches: u64,
    /// Sliding-window candidates evaluated in registers by a fused kernel
    /// (costed as ALU time by the latency model; zero for memory-bound
    /// staged pipelines).
    pub candidate_ops: u64,
}

impl MappingStats {
    /// Sum of reads and writes.
    pub fn total_accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: MappingStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.kernel_launches += other.kernel_launches;
        self.candidate_ops += other.candidate_ops;
    }
}

/// A read-only coordinate-to-index lookup: the seam behind map search.
///
/// Three implementations exist — the paper's `[grid, hashmap]` strategy
/// space (§4.4) plus the succinct frozen-set index used by compiled
/// sessions:
///
/// - [`crate::CoordHashMap`]: open addressing, compact but with collision
///   probes;
/// - [`crate::GridTable`]: collision-free dense grid, exactly one access per
///   operation but with bounding-box storage;
/// - [`crate::MphfIndex`]: a minimal perfect hash built from a frozen
///   coordinate set (rank/select bitmaps over the BBHash-style fingerprint
///   cascade), smaller than both and collision-free by construction.
///
/// Queries return the index assigned at construction (the position of the
/// coordinate in the input coordinate list) together with the number of
/// memory probes performed, so callers can attribute cost precisely.
///
/// `Send + Sync` are supertraits because map search shares one immutable
/// index reference across the runtime pool's worker threads, and compiled
/// plans retain the index across streams (queries take `&self` and indices
/// are plain data, so every implementation is trivially thread-safe).
/// `Debug` makes the boxed index printable inside plan structures.
pub trait CoordIndex: std::fmt::Debug + Send + Sync {
    /// Looks up a coordinate; returns the index if present and the number of
    /// memory probes performed.
    fn query(&self, coord: Coord) -> (Option<u32>, u64);

    /// Number of coordinates stored.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of device memory the index occupies (for the cost model and
    /// the frozen-plan memory accounting).
    fn memory_bytes(&self) -> u64;

    /// How many delta layers sit between this index and a from-scratch
    /// build. Freshly constructed indexes are depth 0; every
    /// [`crate::DeltaIndex`] stacked on top by incremental re-planning adds
    /// one. Compaction policies use this to bound query-chain length.
    fn delta_depth(&self) -> usize {
        0
    }
}

/// A mutable coordinate-to-index table: a [`CoordIndex`] that also supports
/// incremental insertion.
///
/// The hashmap and grid implement this; the MPHF is built from a frozen
/// coordinate set in one shot and is query-only, which is exactly why the
/// read path lives on the [`CoordIndex`] supertrait.
pub trait CoordTable: CoordIndex {
    /// Inserts a coordinate with its index; returns the number of memory
    /// probes. Inserting a duplicate coordinate is a no-op that keeps the
    /// first index (matching engine semantics where coordinates are unique).
    fn insert(&mut self, coord: Coord, index: u32) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_accumulates() {
        let mut a = MappingStats { reads: 1, writes: 2, kernel_launches: 3, candidate_ops: 4 };
        a.merge(MappingStats { reads: 10, writes: 20, kernel_launches: 30, candidate_ops: 40 });
        assert_eq!(
            a,
            MappingStats { reads: 11, writes: 22, kernel_launches: 33, candidate_ops: 44 }
        );
        assert_eq!(a.total_accesses(), 33);
    }
}
