//! Shared FNV-1a hashing.
//!
//! Both the coordinate hashmap (spatial hashing, §2.1.2) and the engine's
//! geometry fingerprinting (compiled-session plan keys) use 64-bit FNV-1a
//! over little-endian integer bytes. This module is the single definition of
//! the constants and the byte-folding loop so the two call sites cannot
//! drift apart.

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// # Example
///
/// ```
/// use torchsparse_coords::fnv::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write_i32(42);
/// let a = h.finish();
/// let mut h2 = Fnv1a::new();
/// h2.write_i32(42);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a hash at the offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET_BASIS)
    }

    /// Folds one byte into the state.
    pub fn write_u8(&mut self, byte: u8) {
        self.0 = (self.0 ^ byte as u64).wrapping_mul(FNV_PRIME);
    }

    /// Folds a byte slice into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Folds a signed 32-bit word (little-endian bytes) into the state.
    pub fn write_i32(&mut self, word: i32) {
        self.write_bytes(&word.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), FNV_OFFSET_BASIS);
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn i32_matches_per_byte_folding() {
        let mut a = Fnv1a::new();
        a.write_i32(-12345);
        let mut b = Fnv1a::new();
        b.write_bytes(&(-12345i32).to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
