//! Coordinate management for sparse convolution.
//!
//! Sparse convolution (paper §2) is driven entirely by *maps*
//! `M = {(p_j, q_k, W_δ)}` relating nonzero input coordinates to output
//! coordinates through kernel offsets. This crate implements every mapping
//! operation the paper describes:
//!
//! - [`Coord`]: a batched integer 3D coordinate.
//! - [`offsets`]: kernel offset enumeration `Δ^D(K)` with the symmetric
//!   ordering required by the paper's symmetric grouping (§4.2.1).
//! - [`CoordHashMap`]: the "conventional hashmap" — open addressing with
//!   linear probing, counting memory probes for the cost model (§4.4).
//! - [`GridTable`]: the collision-free grid table — exactly one memory
//!   access per construction/query entry, at the price of dense storage.
//! - [`MphfIndex`]: a minimal-perfect-hash index over a frozen coordinate
//!   set (BBHash-style fingerprint cascade with rank/select bitmaps) —
//!   the succinct index compiled sessions build at plan time.
//! - [`fnv`]: the shared FNV-1a hasher behind spatial hashing and the
//!   engine's geometry fingerprints.
//! - [`downsample`]: output coordinate calculation for strided convolution
//!   (Algorithm 3), in both the 5-stage *staged* form (DRAM-visible
//!   intermediates, the baseline) and the *fused* single-kernel form
//!   (§4.4, Figure 10).
//! - [`kernel_map`]: map search (Algorithm 1) over any coordinate table,
//!   including the symmetry-exploiting fast path for odd-kernel stride-1
//!   layers.
//! - [`delta`]: incremental coordinate diffs, the layered [`DeltaIndex`],
//!   and kernel-map patching for temporal streams whose geometry churns a
//!   few percent per frame.
//!
//! All operations also report the access statistics ([`MappingStats`]) that
//! the GPU cost simulator folds into mapping latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod coord;
mod grid;
mod hashmap;
mod mphf;
mod table;

pub mod delta;
pub mod downsample;
pub mod fnv;
pub mod kernel_map;
pub mod offsets;

pub use coord::Coord;
pub use delta::{
    diff_coords, patch_strided_map, patch_submanifold_map, CoordDelta, DeltaIndex, PatchStats,
    StridedPatch, REMOVED_ROW,
};
pub use grid::GridTable;
pub use hashmap::CoordHashMap;
pub use kernel_map::{KernelMap, MapEntry};
pub use mphf::MphfIndex;
pub use table::{CoordIndex, CoordTable, MappingStats};

use std::fmt;

/// Error type for coordinate-management operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordsError {
    /// A kernel size of zero was requested.
    ZeroKernelSize,
    /// A stride of zero was requested.
    ZeroStride,
    /// The coordinate set is empty where a non-empty set is required.
    EmptyCoordinates,
    /// A grid table would exceed the configured capacity limit.
    GridTooLarge {
        /// Number of cells the bounding box requires.
        cells: u64,
        /// The configured limit.
        limit: u64,
    },
    /// Duplicate coordinates were supplied where uniqueness is required.
    DuplicateCoordinate(Coord),
}

impl fmt::Display for CoordsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordsError::ZeroKernelSize => write!(f, "kernel size must be at least 1"),
            CoordsError::ZeroStride => write!(f, "stride must be at least 1"),
            CoordsError::EmptyCoordinates => write!(f, "coordinate set is empty"),
            CoordsError::GridTooLarge { cells, limit } => {
                write!(f, "grid table needs {cells} cells, exceeding the limit of {limit}")
            }
            CoordsError::DuplicateCoordinate(c) => {
                write!(f, "duplicate coordinate {c:?}")
            }
        }
    }
}

impl std::error::Error for CoordsError {}
