use std::fmt;

/// A batched integer 3D coordinate: `(batch, x, y, z)`.
///
/// Point cloud engines process mini-batches of scenes by prepending a batch
/// index to each voxel coordinate so that points from different scenes never
/// alias. Spatial components are signed because LiDAR scenes are centered on
/// the ego vehicle.
///
/// # Example
///
/// ```
/// use torchsparse_coords::Coord;
///
/// let p = Coord::new(0, 3, 5, -2);
/// let d = p.offset([1, 1, 1]);
/// assert_eq!(d, Coord::new(0, 4, 6, -1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Coord {
    /// Batch (scene) index.
    pub batch: i32,
    /// X coordinate in voxel units.
    pub x: i32,
    /// Y coordinate in voxel units.
    pub y: i32,
    /// Z coordinate in voxel units.
    pub z: i32,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(batch: i32, x: i32, y: i32, z: i32) -> Coord {
        Coord { batch, x, y, z }
    }

    /// The spatial components as an array.
    pub fn xyz(&self) -> [i32; 3] {
        [self.x, self.y, self.z]
    }

    /// Adds a spatial offset, leaving the batch index unchanged.
    pub fn offset(&self, d: [i32; 3]) -> Coord {
        Coord { batch: self.batch, x: self.x + d[0], y: self.y + d[1], z: self.z + d[2] }
    }

    /// Subtracts a spatial offset, leaving the batch index unchanged.
    pub fn offset_neg(&self, d: [i32; 3]) -> Coord {
        Coord { batch: self.batch, x: self.x - d[0], y: self.y - d[1], z: self.z - d[2] }
    }

    /// Scales the spatial components by `s` (used when moving between tensor
    /// strides: `s * q + δ` in Algorithm 1).
    pub fn scaled(&self, s: i32) -> Coord {
        Coord { batch: self.batch, x: self.x * s, y: self.y * s, z: self.z * s }
    }

    /// Whether all spatial components are divisible by `s` (the "modular
    /// check" of Algorithm 3).
    pub fn divisible_by(&self, s: i32) -> bool {
        self.x.rem_euclid(s) == 0 && self.y.rem_euclid(s) == 0 && self.z.rem_euclid(s) == 0
    }

    /// Divides the spatial components by `s` using floor division.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any component is not divisible by `s`; use
    /// [`Coord::divisible_by`] first.
    pub fn divided(&self, s: i32) -> Coord {
        debug_assert!(self.divisible_by(s), "coordinate {self:?} not divisible by {s}");
        Coord {
            batch: self.batch,
            x: self.x.div_euclid(s),
            y: self.y.div_euclid(s),
            z: self.z.div_euclid(s),
        }
    }

    /// FNV-1a hash of the coordinate, the spatial hash function used by the
    /// conventional hashmap (§2.1.2: "the hash function can simply be
    /// flattening the coordinate of each dimension into an integer").
    pub fn fnv1a(&self) -> u64 {
        let mut h = crate::fnv::Fnv1a::new();
        for word in [self.batch, self.x, self.y, self.z] {
            h.write_i32(word);
        }
        h.finish()
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(b{}: {}, {}, {})", self.batch, self.x, self.y, self.z)
    }
}

impl From<(i32, i32, i32, i32)> for Coord {
    fn from((batch, x, y, z): (i32, i32, i32, i32)) -> Coord {
        Coord { batch, x, y, z }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_roundtrip() {
        let p = Coord::new(1, 2, 3, 4);
        assert_eq!(p.offset([5, -6, 7]).offset_neg([5, -6, 7]), p);
    }

    #[test]
    fn offset_preserves_batch() {
        let p = Coord::new(3, 0, 0, 0);
        assert_eq!(p.offset([1, 2, 3]).batch, 3);
    }

    #[test]
    fn scaled_multiplies_spatial_only() {
        let p = Coord::new(2, 1, -2, 3).scaled(2);
        assert_eq!(p, Coord::new(2, 2, -4, 6));
    }

    #[test]
    fn divisibility_with_negatives() {
        assert!(Coord::new(0, -4, 2, 0).divisible_by(2));
        assert!(!Coord::new(0, -3, 2, 0).divisible_by(2));
        // rem_euclid: -3 % 2 == 1, still not divisible.
        assert!(Coord::new(0, -6, -8, -10).divisible_by(2));
    }

    #[test]
    fn divided_floor_semantics() {
        assert_eq!(Coord::new(0, -4, 6, 0).divided(2), Coord::new(0, -2, 3, 0));
    }

    #[test]
    fn fnv_differs_on_components() {
        let a = Coord::new(0, 1, 2, 3).fnv1a();
        assert_ne!(a, Coord::new(1, 1, 2, 3).fnv1a());
        assert_ne!(a, Coord::new(0, 2, 1, 3).fnv1a());
        assert_ne!(a, Coord::new(0, 1, 2, 4).fnv1a());
    }

    #[test]
    fn fnv_deterministic() {
        assert_eq!(Coord::new(5, -7, 9, 11).fnv1a(), Coord::new(5, -7, 9, 11).fnv1a());
    }

    #[test]
    fn conversion_from_tuple() {
        let c: Coord = (1, 2, 3, 4).into();
        assert_eq!(c, Coord::new(1, 2, 3, 4));
    }
}
