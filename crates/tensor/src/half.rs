use std::cmp::Ordering;
use std::fmt;

/// Software IEEE-754 binary16 ("half precision") value.
///
/// TorchSparse quantizes features to FP16 to halve DRAM traffic (§4.3.1).
/// The allowed dependency set has no `half` crate, so we implement the format
/// ourselves: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits, with
/// round-to-nearest-even conversion from `f32` — matching CUDA `__float2half_rn`.
///
/// Arithmetic is performed by converting to `f32`, operating, and rounding
/// back, which is exactly what FP16 storage + FP32 accumulate does on GPU.
///
/// # Example
///
/// ```
/// use torchsparse_tensor::Half;
///
/// let h = Half::from_f32(1.0 / 3.0);
/// // binary16 has ~3.3 decimal digits of precision
/// assert!((h.to_f32() - 1.0 / 3.0).abs() < 1e-3);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Half(u16);

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0);
    /// One.
    pub const ONE: Half = Half(0x3C00);
    /// Positive infinity.
    pub const INFINITY: Half = Half(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Half = Half(0xFC00);
    /// Largest finite value (65504).
    pub const MAX: Half = Half(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: Half = Half(0x0400);

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values whose magnitude exceeds 65504 become infinities; subnormal
    /// results are produced for tiny magnitudes; NaN payloads are canonicalized.
    pub fn from_f32(value: f32) -> Half {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mantissa = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            return if mantissa == 0 {
                Half(sign | 0x7C00)
            } else {
                Half(sign | 0x7E00) // canonical quiet NaN
            };
        }

        // Unbiased exponent in f32; re-bias for f16 (bias 15).
        let unbiased = exp - 127;
        let f16_exp = unbiased + 15;

        if f16_exp >= 0x1F {
            // Overflow to infinity.
            return Half(sign | 0x7C00);
        }

        if f16_exp <= 0 {
            // Subnormal or zero in f16.
            if f16_exp < -10 {
                return Half(sign); // rounds to signed zero
            }
            // Add the implicit leading 1 then shift into subnormal position.
            let full = mantissa | 0x0080_0000;
            let shift = (14 - f16_exp) as u32; // 14..24
            let half_mant = full >> shift;
            // Round to nearest even on the discarded bits.
            let round_bit = 1u32 << (shift - 1);
            let remainder = full & ((1u32 << shift) - 1);
            let mut h = half_mant as u16;
            if remainder > round_bit || (remainder == round_bit && (half_mant & 1) == 1) {
                h += 1; // may carry into the exponent, which is correct
            }
            return Half(sign | h);
        }

        // Normal case: keep top 10 mantissa bits, round-to-nearest-even.
        let mut h = (f16_exp as u16) << 10 | (mantissa >> 13) as u16;
        let remainder = mantissa & 0x1FFF;
        if remainder > 0x1000 || (remainder == 0x1000 && (h & 1) == 1) {
            h += 1; // carry propagates into exponent correctly (e.g. 2047.5 -> 2048)
        }
        Half(sign | h)
    }

    /// Converts back to `f32` (exact — every binary16 is representable).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mantissa = (self.0 & 0x03FF) as u32;

        let bits = if exp == 0 {
            if mantissa == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = mantissa * 2^-24. Normalize so the
                // implicit leading 1 lands at bit 10; each shift lowers the
                // exponent by one starting from the subnormal exponent -14.
                let mut e = -14i32;
                let mut m = mantissa;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                let f32_exp = ((e + 127) as u32) & 0xFF;
                sign | (f32_exp << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            if mantissa == 0 {
                sign | 0x7F80_0000 // infinity
            } else {
                sign | 0x7FC0_0000 // NaN
            }
        } else {
            let f32_exp = exp + 127 - 15;
            sign | (f32_exp << 23) | (mantissa << 13)
        };
        f32::from_bits(bits)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Half {
        Half(bits)
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Whether the value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Whether the value is finite (neither infinite nor NaN).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Bulk conversion of an `f32` slice into binary16 storage, replacing
    /// the contents of `dst` (its allocation is reused). Delegates to the
    /// process-selected SIMD kernel (F16C hardware conversion on AVX2
    /// hosts) and is bitwise identical to per-element [`Half::from_f32`]
    /// for every input, NaN payloads included.
    pub fn convert_slice_from_f32(src: &[f32], dst: &mut Vec<Half>) {
        crate::microkernel::f16_quantize_slice(crate::microkernel::active(), src, dst);
    }

    /// Bulk expansion of binary16 storage into `f32`, replacing the
    /// contents of `dst`. Vectorized sibling of per-element
    /// [`Half::to_f32`]; bitwise identical for every input.
    pub fn convert_slice_to_f32(src: &[Half], dst: &mut Vec<f32>) {
        crate::microkernel::f16_dequantize_slice(crate::microkernel::active(), src, dst);
    }

    /// Whether every value in `values` is finite. Cheap bit test per
    /// element — the FP16 storage path uses this to detect overflow to
    /// infinity without converting back to f32.
    pub fn all_finite(values: &[Half]) -> bool {
        values.iter().all(|h| h.is_finite())
    }

    /// Number of NaN or infinite values in `values`.
    pub fn count_nonfinite(values: &[Half]) -> usize {
        values.iter().filter(|h| !h.is_finite()).count()
    }
}

impl From<f32> for Half {
    fn from(v: f32) -> Half {
        Half::from_f32(v)
    }
}

impl From<Half> for f32 {
    fn from(h: Half) -> f32 {
        h.to_f32()
    }
}

impl PartialOrd for Half {
    fn partial_cmp(&self, other: &Half) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl std::ops::Add for Half {
    type Output = Half;

    /// IEEE binary16 addition: compute in f32 (exact for two halves), round
    /// to nearest even — the semantics of CUDA `__hadd`.
    fn add(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl std::ops::Sub for Half {
    type Output = Half;

    fn sub(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl std::ops::Mul for Half {
    type Output = Half;

    /// Binary16 multiplication with a single rounding (f32 products of two
    /// halves are exact, so rounding once matches hardware `__hmul`).
    fn mul(self, rhs: Half) -> Half {
        Half::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl std::ops::Neg for Half {
    type Output = Half;

    fn neg(self) -> Half {
        Half::from_bits(self.0 ^ 0x8000)
    }
}

impl fmt::Debug for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Half({})", self.to_f32())
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_finite_scans() {
        let clean = [Half::ZERO, Half::ONE, Half::MAX];
        assert!(Half::all_finite(&clean));
        assert_eq!(Half::count_nonfinite(&clean), 0);
        let dirty = [Half::ONE, Half::INFINITY, Half::NEG_INFINITY, Half::from_f32(f32::NAN)];
        assert!(!Half::all_finite(&dirty));
        assert_eq!(Half::count_nonfinite(&dirty), 3);
        assert!(Half::all_finite(&[]), "empty slice is finite");
        // Overflow to infinity through quantization is detected.
        assert_eq!(Half::count_nonfinite(&[Half::from_f32(1e30)]), 1);
    }

    #[test]
    fn slice_conversions_match_per_element() {
        let vals: Vec<f32> =
            vec![0.0, -0.0, 1.0, -2.5, 65519.0, 65520.0, 1e-10, f32::NAN, f32::INFINITY, 0.1];
        let mut packed = Vec::new();
        Half::convert_slice_from_f32(&vals, &mut packed);
        let expect: Vec<Half> = vals.iter().map(|&v| Half::from_f32(v)).collect();
        assert_eq!(
            packed.iter().map(|h| h.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|h| h.to_bits()).collect::<Vec<_>>()
        );
        let mut back = Vec::new();
        Half::convert_slice_to_f32(&packed, &mut back);
        let expect_f32: Vec<u32> = packed.iter().map(|h| h.to_f32().to_bits()).collect();
        assert_eq!(back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), expect_f32);
    }

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let h = Half::from_f32(i as f32);
            assert_eq!(h.to_f32(), i as f32, "integer {i} should be exact in f16");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(Half::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(Half::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(Half::from_f32(1.0).to_bits(), 0x3C00);
        assert_eq!(Half::from_f32(-2.0).to_bits(), 0xC000);
        assert_eq!(Half::from_f32(65504.0).to_bits(), 0x7BFF);
        assert_eq!(Half::from_f32(0.5).to_bits(), 0x3800);
        // 2^-14: smallest normal
        assert_eq!(Half::from_f32(6.103_515_6e-5).to_bits(), 0x0400);
        // 2^-24: smallest subnormal
        assert_eq!(Half::from_f32(5.960_464_5e-8).to_bits(), 0x0001);
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(Half::from_f32(70000.0).is_infinite());
        assert!(Half::from_f32(-70000.0).is_infinite());
        assert_eq!(Half::from_f32(f32::INFINITY), Half::INFINITY);
        assert_eq!(Half::from_f32(f32::NEG_INFINITY), Half::NEG_INFINITY);
    }

    #[test]
    fn nan_propagates() {
        assert!(Half::from_f32(f32::NAN).is_nan());
        assert!(Half::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(Half::from_f32(1e-10).to_bits(), 0x0000);
        assert_eq!(Half::from_f32(-1e-10).to_bits(), 0x8000);
    }

    #[test]
    fn round_to_nearest_even() {
        // 2049 is exactly between 2048 and 2050 in f16; ties to even -> 2048.
        assert_eq!(Half::from_f32(2049.0).to_f32(), 2048.0);
        // 2051 is between 2050 and 2052; ties to even -> 2052.
        assert_eq!(Half::from_f32(2051.0).to_f32(), 2052.0);
        // Non-tie rounds to nearest.
        assert_eq!(Half::from_f32(2049.1).to_f32(), 2050.0);
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // Largest f16 below 2048 is 2047; 2047.9 must round up to 2048,
        // which requires the mantissa carry to propagate into the exponent.
        assert_eq!(Half::from_f32(2047.9).to_f32(), 2048.0);
        // Just under overflow threshold rounds to infinity.
        assert!(Half::from_f32(65520.0).is_infinite());
        assert_eq!(Half::from_f32(65519.0).to_f32(), 65504.0);
    }

    #[test]
    fn subnormal_roundtrip() {
        // All 1024 subnormal bit patterns should roundtrip through f32.
        for bits in 1u16..0x0400 {
            let h = Half::from_bits(bits);
            let back = Half::from_f32(h.to_f32());
            assert_eq!(back.to_bits(), bits, "subnormal {bits:#06x} roundtrip");
        }
    }

    #[test]
    fn all_finite_bit_patterns_roundtrip() {
        for bits in 0u16..=0xFFFF {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let rt = Half::from_f32(h.to_f32());
            assert_eq!(rt.to_bits(), bits, "bits {bits:#06x} must roundtrip exactly");
        }
    }

    #[test]
    fn relative_error_bound_for_normals() {
        // f16 has 11 bits of significand => relative error <= 2^-11.
        let mut x = 1.0f32;
        while x < 60000.0 {
            let h = Half::from_f32(x);
            let rel = ((h.to_f32() - x) / x).abs();
            assert!(rel <= 1.0 / 2048.0, "x={x} rel={rel}");
            x *= 1.37;
        }
    }

    #[test]
    fn ordering_matches_f32() {
        let a = Half::from_f32(1.5);
        let b = Half::from_f32(2.5);
        assert!(a < b);
        assert!(Half::from_f32(-1.0) < Half::ZERO);
    }

    #[test]
    fn arithmetic_exact_cases() {
        let one = Half::ONE;
        let two = Half::from_f32(2.0);
        assert_eq!(one + one, two);
        assert_eq!(two - one, one);
        assert_eq!(two * two, Half::from_f32(4.0));
        assert_eq!(-one, Half::from_f32(-1.0));
        assert_eq!(-(-one), one);
    }

    #[test]
    fn addition_rounds_to_precision() {
        // 2048 + 1 is not representable in binary16 (spacing is 2 there);
        // round-to-nearest-even keeps 2048.
        let big = Half::from_f32(2048.0);
        assert_eq!(big + Half::ONE, big);
        // 2048 + 2 is representable.
        assert_eq!(big + Half::from_f32(2.0), Half::from_f32(2050.0));
    }

    #[test]
    fn addition_overflow_saturates_to_infinity() {
        let max = Half::MAX;
        assert!((max + max).is_infinite());
    }

    #[test]
    fn neg_flips_sign_of_zero_and_infinity() {
        assert_eq!((-Half::ZERO).to_bits(), 0x8000);
        assert_eq!(-Half::INFINITY, Half::NEG_INFINITY);
    }

    #[test]
    fn commutativity_over_samples() {
        for i in 0..200u16 {
            let a = Half::from_bits(i.wrapping_mul(113));
            let b = Half::from_bits(i.wrapping_mul(331).wrapping_add(7));
            if a.is_nan() || b.is_nan() {
                continue;
            }
            assert_eq!((a + b).to_bits(), (b + a).to_bits());
            assert_eq!((a * b).to_bits(), (b * a).to_bits());
        }
    }
}
