//! Dense linear-algebra substrate for the TorchSparse reproduction.
//!
//! The TorchSparse paper (MLSys 2022) builds sparse convolution out of dense
//! primitives: matrix multiplication (`mm`), batched matrix multiplication
//! (`bmm`), and half-precision feature storage. On the authors' testbed these
//! are provided by cuBLAS/cuDNN; here we provide portable, well-tested CPU
//! implementations with identical semantics:
//!
//! - [`Matrix`]: a row-major `f32` matrix with the shape/indexing conventions
//!   of a feature buffer (`rows` = points, `cols` = channels).
//! - [`gemm`]: blocked, multi-threaded single-precision GEMM, plus a batched
//!   variant that mirrors cuBLAS `gemmStridedBatched` (used by the paper's
//!   grouped matmul, §4.2).
//! - [`Half`]: software IEEE-754 binary16 with round-to-nearest-even, used to
//!   reproduce the FP16 quantization study (§4.3.1, Table 3).
//! - [`quant`]: FP16/INT8 feature quantization helpers.
//! - [`microkernel`]: register-tiled SIMD compute kernels (AVX2/FMA with a
//!   portable fallback, selected once per process) plus the [`PackedB`]
//!   panel-major weight layout shared by the packed GEMM entry points.
//! - [`accum`]: error-free accumulation — a fixed-point superaccumulator
//!   whose sums are bitwise identical under any summation order, the
//!   arithmetic foundation of the engine's parallel deterministic scatter.
//! - [`dense`]: a dense volumetric 3D convolution used **only** as a
//!   correctness oracle for the sparse engine's property tests.
//!
//! # Example
//!
//! ```
//! use torchsparse_tensor::{Matrix, gemm};
//!
//! # fn main() -> Result<(), torchsparse_tensor::TensorError> {
//! let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
//! let b = Matrix::eye(3);
//! let c = gemm::mm(&a, &b)?;
//! assert_eq!(c, a);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `microkernel::x86` submodule opts back in
// (locally, with per-call safety comments) for `std::arch` intrinsics. All
// other modules remain unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod half;
mod matrix;

pub mod accum;
pub mod dense;
pub mod gemm;
pub mod microkernel;
pub mod quant;

pub use accum::ExactAccumulator;
pub use error::TensorError;
pub use half::Half;
pub use matrix::Matrix;
pub use microkernel::{Kernel, PackedB};
