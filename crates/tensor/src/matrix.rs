use crate::TensorError;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};
use torchsparse_runtime::{Task, ThreadPool};

/// Elements per task in the parallel element-wise sweeps
/// ([`Matrix::par_map_inplace`] and friends). Fixed so the partition never
/// depends on the worker count — every element is transformed independently,
/// so results are bitwise identical at any thread count regardless, but a
/// fixed chunk also keeps task traces comparable across runs.
const ELEMWISE_CHUNK: usize = 16 * 1024;

/// A row-major `f32` matrix.
///
/// Used throughout the engine as the feature buffer representation: `rows`
/// index points (or map entries) and `cols` index channels. The layout
/// mirrors the contiguous feature tensors that GPU sparse-conv engines gather
/// into before GEMM.
///
/// # Example
///
/// ```
/// use torchsparse_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
/// assert_eq!(m[(0, 1)], 1.0);
/// assert_eq!(m.row(1), &[1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates an `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major data buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::DataLengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Heap capacity of the underlying buffer, in elements. Workspace
    /// recycling uses this to pick a buffer that needs no reallocation.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reshapes the matrix to `rows x cols` with all elements zeroed,
    /// reusing the existing heap buffer when its capacity suffices.
    ///
    /// This is the workspace-recycling primitive: a gather/psum buffer taken
    /// from a pool is resized to the current layer's shape without touching
    /// the allocator (after warm-up).
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r` as a channel slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Checked element access.
    pub fn get(&self, r: usize, c: usize) -> Option<f32> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Returns the transpose.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Returns a new matrix with the given rows stacked vertically.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ.
    pub fn vstack(blocks: &[&Matrix]) -> Result<Matrix, TensorError> {
        if blocks.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = blocks[0].cols;
        for b in blocks {
            if b.cols != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "vstack",
                    lhs: (blocks[0].rows, cols),
                    rhs: b.shape(),
                });
            }
        }
        let rows = blocks.iter().map(|b| b.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for b in blocks {
            data.extend_from_slice(&b.data);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Zero-pads (or truncates) the matrix to `new_rows` rows.
    ///
    /// Used by fixed/adaptive grouping to pad per-weight feature buffers to a
    /// common batch row count before `bmm` (paper Figure 6c/d).
    pub fn resized_rows(&self, new_rows: usize) -> Matrix {
        let mut m = Matrix::zeros(new_rows, self.cols);
        let n = self.rows.min(new_rows);
        m.data[..n * self.cols].copy_from_slice(&self.data[..n * self.cols]);
        m
    }

    /// Maximum absolute difference against another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f32, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max))
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// [`Matrix::map_inplace`] with the sweep dispatched onto a worker
    /// pool in fixed-size element chunks. Element-wise transforms touch
    /// each element exactly once, so the result is bitwise identical to
    /// the serial sweep at every thread count.
    pub fn par_map_inplace(&mut self, pool: &ThreadPool, f: impl Fn(f32) -> f32 + Sync) {
        if (pool.threads() <= 1 && !pool.is_recording()) || self.data.len() <= ELEMWISE_CHUNK {
            self.map_inplace(f);
            return;
        }
        let f_ref = &f;
        let tasks: Vec<Task<'_>> = self
            .data
            .chunks_mut(ELEMWISE_CHUNK)
            .map(|chunk| {
                Box::new(move || {
                    for v in chunk {
                        *v = f_ref(*v);
                    }
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Applies a slice transform to the whole buffer in fixed
    /// [`ELEMWISE_CHUNK`] chunks dispatched onto a worker pool.
    ///
    /// This is the vectorization-friendly sibling of
    /// [`Matrix::par_map_inplace`]: `f` receives whole chunks, so SIMD
    /// sweeps (FP16/INT8 precision conversion) amortize their dispatch over
    /// thousands of elements instead of paying a closure call per element.
    /// `f` must transform each element independently of its neighbours —
    /// then the fixed chunk partition keeps results bitwise identical to a
    /// single full-buffer call at every thread count.
    pub fn par_map_slices_inplace(&mut self, pool: &ThreadPool, f: impl Fn(&mut [f32]) + Sync) {
        if self.data.is_empty() {
            return;
        }
        if (pool.threads() <= 1 && !pool.is_recording()) || self.data.len() <= ELEMWISE_CHUNK {
            f(&mut self.data);
            return;
        }
        let f_ref = &f;
        let tasks: Vec<Task<'_>> = self
            .data
            .chunks_mut(ELEMWISE_CHUNK)
            .map(|chunk| Box::new(move || f_ref(chunk)) as Task<'_>)
            .collect();
        pool.run(tasks);
    }

    /// Applies `f` to every row, parallelized over row blocks sized to
    /// roughly [`ELEMWISE_CHUNK`] elements. Rows are disjoint, so this too
    /// is bitwise identical to the serial row loop at any thread count.
    pub fn par_map_rows_inplace(&mut self, pool: &ThreadPool, f: impl Fn(&mut [f32]) + Sync) {
        if self.cols == 0 || self.data.is_empty() {
            return;
        }
        let cols = self.cols;
        let rows_per_task = (ELEMWISE_CHUNK / cols).max(1);
        if (pool.threads() <= 1 && !pool.is_recording()) || self.rows <= rows_per_task {
            for row in self.data.chunks_mut(cols) {
                f(row);
            }
            return;
        }
        let f_ref = &f;
        let tasks: Vec<Task<'_>> = self
            .data
            .chunks_mut(rows_per_task * cols)
            .map(|block| {
                Box::new(move || {
                    for row in block.chunks_mut(cols) {
                        f_ref(row);
                    }
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Whether every element is finite (no NaN or infinity). The engine's
    /// quantized-precision fallback scans layer outputs with this to decide
    /// whether an FP32 re-run is needed; an empty matrix is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// [`Matrix::is_finite`] with the scan fanned out over a worker pool.
    /// Each chunk reports into its own slot, so the combined answer does
    /// not depend on task completion order.
    pub fn par_is_finite(&self, pool: &ThreadPool) -> bool {
        if (pool.threads() <= 1 && !pool.is_recording()) || self.data.len() <= ELEMWISE_CHUNK {
            return self.is_finite();
        }
        let chunks: Vec<&[f32]> = self.data.chunks(ELEMWISE_CHUNK).collect();
        let mut flags = vec![true; chunks.len()];
        let tasks: Vec<Task<'_>> = chunks
            .into_iter()
            .zip(flags.iter_mut())
            .map(|(chunk, flag)| {
                Box::new(move || {
                    *flag = chunk.iter().all(|v| v.is_finite());
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        flags.into_iter().all(|b| b)
    }

    /// Number of NaN or infinite elements.
    pub fn count_nonfinite(&self) -> usize {
        self.data.iter().filter(|v| !v.is_finite()).count()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r}, {c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add requires equal shapes");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub requires equal shapes");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl AddAssign<&Matrix> for Matrix {
    /// Element-wise accumulate.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign requires equal shapes");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl Mul<f32> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * rhs).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            let cs = self.cols.min(8);
            for c in 0..cs {
                write!(f, "{:>9.4}", self[(r, c)])?;
                if c + 1 < cs {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let m = Matrix::eye(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let e = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(e, TensorError::DataLengthMismatch { expected: 4, actual: 3 });
    }

    #[test]
    fn from_fn_row_major_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.row(1), &[2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        Matrix::zeros(2, 2).row(2);
    }

    #[test]
    fn get_checked() {
        let m = Matrix::eye(2);
        assert_eq!(m.get(1, 1), Some(1.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.get(0, 2), None);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = Matrix::filled(1, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let s = Matrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(0), &[1.0, 1.0]);
        assert_eq!(s.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn vstack_rejects_mismatched_cols() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(Matrix::vstack(&[&a, &b]).is_err());
    }

    #[test]
    fn vstack_empty_is_empty() {
        assert_eq!(Matrix::vstack(&[]).unwrap().shape(), (0, 0));
    }

    #[test]
    fn resized_rows_pads_with_zeros() {
        let m = Matrix::filled(2, 3, 5.0);
        let p = m.resized_rows(4);
        assert_eq!(p.shape(), (4, 3));
        assert_eq!(p.row(1), &[5.0, 5.0, 5.0]);
        assert_eq!(p.row(3), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn resized_rows_truncates() {
        let m = Matrix::from_fn(3, 1, |r, _| r as f32);
        let t = m.resized_rows(2);
        assert_eq!(t.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::filled(2, 2, 1.0);
        assert_eq!((&a + &b).as_slice(), &[4.0; 4]);
        assert_eq!((&a - &b).as_slice(), &[2.0; 4]);
        assert_eq!((&a * 2.0).as_slice(), &[6.0; 4]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0; 4]);
    }

    #[test]
    fn max_abs_diff_and_norm() {
        let a = Matrix::filled(1, 2, 3.0);
        let b = Matrix::from_vec(1, 2, vec![3.5, 2.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        assert!((Matrix::eye(2).frobenius_norm() - 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn finite_scan() {
        let mut m = Matrix::filled(2, 3, 1.5);
        assert!(m.is_finite());
        assert_eq!(m.count_nonfinite(), 0);
        m[(0, 1)] = f32::NAN;
        m[(1, 2)] = f32::NEG_INFINITY;
        assert!(!m.is_finite());
        assert_eq!(m.count_nonfinite(), 2);
        assert!(Matrix::zeros(0, 4).is_finite(), "empty matrix is finite");
    }

    #[test]
    fn max_abs_diff_shape_checked() {
        assert!(Matrix::zeros(1, 2).max_abs_diff(&Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Matrix::eye(2)).is_empty());
    }

    #[test]
    fn map_inplace_applies() {
        let mut m = Matrix::filled(1, 3, -1.0);
        m.map_inplace(|v| v.max(0.0));
        assert_eq!(m.as_slice(), &[0.0, 0.0, 0.0]);
    }
}
